//! Crowdsourced max: single-elimination tournament.
//!
//! Finding the best item needs only `n - 1` comparisons instead of the
//! sort's `O(n²)`: pair items up, winners advance. With noisy workers the
//! tournament can eliminate the true best early — redundancy per match is
//! the knob (experiment E11 compares cost/accuracy against full sort).

use crate::join::{pair_from_object, pair_object};
use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::pipeline::{majority_answer, run_stream, StreamSpec};
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;

/// Configuration of a crowd max.
#[derive(Debug, Clone)]
pub struct CrowdMaxConfig {
    /// Experiment name prefix (each round is a sub-experiment).
    pub experiment: String,
    /// The comparison question.
    pub question: String,
    /// Redundancy per match.
    pub n_assignments: u32,
}

impl CrowdMaxConfig {
    /// 3-assignment tournament.
    pub fn new(experiment: &str, question: &str) -> Self {
        CrowdMaxConfig {
            experiment: experiment.to_string(),
            question: question.to_string(),
            n_assignments: 3,
        }
    }
}

/// Output of [`crowd_max`].
#[derive(Debug, Clone)]
pub struct CrowdMaxResult {
    /// Index of the tournament winner (None for empty input).
    pub max: Option<usize>,
    /// Total matches played.
    pub comparisons: usize,
    /// The bracket: survivors after each round (round 0 = all items).
    pub rounds: Vec<Vec<usize>>,
}

/// Finds the crowd-judged best of `items` by single elimination.
///
/// Each round's matches stream through the pipelined engine
/// ([`run_stream`]); rounds themselves are inherently sequential (a match
/// cannot be drawn before its contestants are known).
pub fn crowd_max(
    cc: &CrowdContext,
    items: &[String],
    cfg: &CrowdMaxConfig,
    decorate: impl Fn(usize, usize, &mut Value) + Sync,
) -> Result<CrowdMaxResult> {
    if items.is_empty() {
        return Ok(CrowdMaxResult { max: None, comparisons: 0, rounds: vec![] });
    }
    let space = Presenter::pair_compare(&cfg.question)
        .static_answer_space()
        .expect("pair comparison has a fixed answer space");
    let mut survivors: Vec<usize> = (0..items.len()).collect();
    let mut rounds = vec![survivors.clone()];
    let mut comparisons = 0usize;
    let mut round_no = 0usize;

    while survivors.len() > 1 {
        // Pair adjacent survivors; an odd one out gets a bye.
        let matches: Vec<(usize, usize)> =
            survivors.chunks(2).filter(|c| c.len() == 2).map(|c| (c[0], c[1])).collect();
        let bye = if survivors.len() % 2 == 1 { survivors.last().copied() } else { None };

        let mut next = Vec::with_capacity(survivors.len() / 2 + 1);
        run_stream(
            cc,
            &StreamSpec {
                experiment: format!("{}-round{}", cfg.experiment, round_no),
                presenter: Presenter::pair_compare(&cfg.question),
                n_assignments: cfg.n_assignments,
            },
            matches
                .iter()
                .map(|&(i, j)| pair_object(i, j, &items[i], &items[j], &decorate)),
            |row| {
                let (i, j) = pair_from_object(&row.object)?;
                match majority_answer(&row.result.runs, &space) {
                    Value::String(s) if s == "second" => next.push(j),
                    // "first" or unresolved: the earlier item advances
                    // (deterministic default).
                    _ => next.push(i),
                }
                Ok(())
            },
        )?;
        comparisons += matches.len();
        if let Some(b) = bye {
            next.push(b);
        }
        survivors = next;
        rounds.push(survivors.clone());
        round_no += 1;
    }
    Ok(CrowdMaxResult { max: survivors.first().copied(), comparisons, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprowd_core::val;

    fn setup(n: usize) -> (Vec<String>, impl Fn(usize, usize, &mut Value)) {
        let items: Vec<String> = (0..n).map(|i| format!("photo {i}")).collect();
        let hook = move |i: usize, j: usize, obj: &mut Value| {
            let p_first = 1.0 / (1.0 + (-((i as f64) - (j as f64)) / 0.25).exp());
            obj["_sim"] = val!({"kind": "compare", "p_first": p_first});
        };
        (items, hook)
    }

    #[test]
    fn finds_best_item_with_n_minus_1_comparisons() {
        let cc = CrowdContext::in_memory_sim(81);
        let (items, hook) = setup(8);
        let out = crowd_max(&cc, &items, &CrowdMaxConfig::new("max", "Better?"), hook).unwrap();
        assert_eq!(out.max, Some(7));
        assert_eq!(out.comparisons, 7);
        assert_eq!(out.rounds.last().unwrap().len(), 1);
    }

    #[test]
    fn odd_field_with_byes() {
        let cc = CrowdContext::in_memory_sim(82);
        let (items, hook) = setup(5);
        let out = crowd_max(&cc, &items, &CrowdMaxConfig::new("max5", "Better?"), hook).unwrap();
        assert_eq!(out.max, Some(4));
        assert_eq!(out.comparisons, 4);
    }

    #[test]
    fn trivial_inputs() {
        let cc = CrowdContext::in_memory_sim(83);
        let cfg = CrowdMaxConfig::new("max-t", "Q?");
        let out = crowd_max(&cc, &[], &cfg, crate::no_sim).unwrap();
        assert_eq!(out.max, None);
        let out = crowd_max(&cc, &["only".to_string()], &cfg, crate::no_sim).unwrap();
        assert_eq!(out.max, Some(0));
        assert_eq!(out.comparisons, 0);
    }

    #[test]
    fn comparisons_scale_linearly() {
        let cc = CrowdContext::in_memory_sim(84);
        let (items, hook) = setup(16);
        let out = crowd_max(&cc, &items, &CrowdMaxConfig::new("max16", "Q?"), hook).unwrap();
        assert_eq!(out.comparisons, 15); // n - 1
        assert_eq!(out.max, Some(15));
    }
}
