//! Crowdsourced join algorithms — the two the paper re-implemented.

pub mod crowder;
pub mod transitive;

use reprowd_core::error::{Error, Result};
use reprowd_core::value::Value;

/// Recovers the `(i, j)` indices a [`pair_object`] was built from — how
/// streaming operators map a collected row back to its pair without
/// keeping a side table of in-flight pairs.
pub(crate) fn pair_from_object(object: &Value) -> Result<(usize, usize)> {
    let at = |k: usize| {
        object["pair"][k]
            .as_u64()
            .map(|v| v as usize)
            .ok_or_else(|| Error::State("pair object lost its indices".into()))
    };
    Ok((at(0)?, at(1)?))
}

/// Builds the pair object sent to the crowd for records `i` and `j`,
/// applying the caller's `decorate` hook (the simulation seam).
pub(crate) fn pair_object(
    left_idx: usize,
    right_idx: usize,
    left: &str,
    right: &str,
    decorate: &impl Fn(usize, usize, &mut Value),
) -> Value {
    let mut obj = serde_json::json!({
        "left": left,
        "right": right,
        "pair": [left_idx, right_idx],
    });
    decorate(left_idx, right_idx, &mut obj);
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_object_carries_indices_and_decoration() {
        let obj = pair_object(3, 7, "rec a", "rec b", &|l, r, o| {
            o["_sim"] = serde_json::json!({"l": l, "r": r});
        });
        assert_eq!(obj["pair"][0], 3);
        assert_eq!(obj["pair"][1], 7);
        assert_eq!(obj["left"], "rec a");
        assert_eq!(obj["_sim"]["l"], 3);
    }
}
