//! CrowdER (Wang, Kraska, Franklin, Feng — PVLDB 2012): hybrid
//! human-machine entity resolution.
//!
//! The machine pass (a prefix-filtered similarity self-join) prunes the
//! `O(n²)` pair space down to candidates above a likelihood threshold; only
//! those are sent to the crowd as match/no-match tasks. Lowering the
//! threshold buys recall with more crowd cost — the trade-off experiment E6
//! sweeps. Pairs at or above `auto_accept` similarity can be accepted
//! without human review (CrowdER's "machine-only" fringe).
//!
//! Candidates **stream**: the machine pass yields pairs lazily
//! ([`self_join_stream`]) straight into the pipelined execution engine
//! ([`run_stream`]), so candidate generation interleaves with task
//! publishing and the peak pair memory is bounded by the in-flight window
//! (batch size × twice the in-flight depth — the scheduler's claim
//! backpressure — reported as [`CrowdErResult::peak_inflight_pairs`]) —
//! never by the candidate count, which lets the join scale past 10⁴
//! records without an `O(n²)` resident pair vector.

use crate::cluster::clusters_from_pairs;
use crate::join::{pair_from_object, pair_object};
use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::pipeline::{majority_answer, run_stream, StreamSpec};
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;
use reprowd_simjoin::{self_join_stream, JoinConfig, SetSimilarity};

/// Configuration of a CrowdER run.
#[derive(Debug, Clone)]
pub struct CrowdErConfig {
    /// Experiment name (cache namespace).
    pub experiment: String,
    /// Machine-pass similarity measure.
    pub measure: SetSimilarity,
    /// Candidate threshold: pairs below it are pruned without crowd review.
    pub threshold: f64,
    /// Pairs with similarity `>= auto_accept` are matched without the
    /// crowd; set to `> 1.0` to crowd-verify everything.
    pub auto_accept: f64,
    /// Redundancy per crowd pair.
    pub n_assignments: u32,
}

impl CrowdErConfig {
    /// CrowdER defaults: Jaccard, θ = 0.3, no auto-accept, 3 assignments.
    pub fn new(experiment: &str) -> Self {
        CrowdErConfig {
            experiment: experiment.to_string(),
            measure: SetSimilarity::Jaccard,
            threshold: 0.3,
            auto_accept: 1.1,
            n_assignments: 3,
        }
    }
}

/// Output of [`crowder_join`].
#[derive(Debug, Clone)]
pub struct CrowdErResult {
    /// Candidate pairs that survived the machine pass. Reported as a count
    /// — candidates stream through the crowd pass and are never resident
    /// as a whole, which is the operator's memory guarantee.
    pub n_candidates: usize,
    /// Pairs auto-accepted by similarity alone.
    pub auto_accepted: Vec<(usize, usize)>,
    /// Number of pairs the crowd reviewed.
    pub n_crowd_reviewed: usize,
    /// Final matched pairs (auto-accepted ∪ crowd-confirmed).
    pub matched: Vec<(usize, usize)>,
    /// Cluster label per record (connected components of `matched`).
    pub clusters: Vec<usize>,
    /// Cache-reuse statistics of the crowd phase.
    pub stats: reprowd_core::crowddata::RunStats,
    /// High-water mark of crowd-pass pairs resident in the pipeline at
    /// once — bounded by batch size × twice the in-flight depth (the
    /// scheduler's backpressure window), regardless of how many
    /// candidates the machine pass emits.
    pub peak_inflight_pairs: usize,
}

/// The question CrowdER poses for every grey-zone pair.
const MATCH_QUESTION: &str = "Do these two records refer to the same entity?";

/// Runs CrowdER over `records`. The `decorate` hook is called for every
/// constructed pair object (see the crate docs on the simulation seam).
///
/// Machine-pass candidates are generated lazily and streamed through the
/// pipelined crowd pass: at no point is the full candidate set — let alone
/// the `O(n²)` pair space — materialized.
pub fn crowder_join(
    cc: &CrowdContext,
    records: &[String],
    cfg: &CrowdErConfig,
    decorate: impl Fn(usize, usize, &mut Value) + Sync,
) -> Result<CrowdErResult> {
    let join_cfg = JoinConfig::new(cfg.measure, cfg.threshold);
    let space = Presenter::match_pair(MATCH_QUESTION)
        .static_answer_space()
        .expect("match judgment has a fixed answer space");

    // Machine pass (lazy) feeding the crowd pass (streamed): pairs at or
    // above `auto_accept` are matched without review and never become
    // crowd tasks; the grey zone flows on as pair objects.
    let mut n_candidates = 0usize;
    let mut auto_accepted: Vec<(usize, usize)> = Vec::new();
    let mut crowd_confirmed: Vec<(usize, usize)> = Vec::new();
    let mut n_crowd_reviewed = 0usize;
    let report = {
        let auto_accepted = &mut auto_accepted;
        let n_candidates = &mut n_candidates;
        let decorate = &decorate;
        let grey_zone = self_join_stream(records, &join_cfg).filter_map(move |pair| {
            *n_candidates += 1;
            if pair.similarity >= cfg.auto_accept {
                auto_accepted.push((pair.left, pair.right));
                None
            } else {
                Some(pair_object(
                    pair.left,
                    pair.right,
                    &records[pair.left],
                    &records[pair.right],
                    decorate,
                ))
            }
        });
        run_stream(
            cc,
            &StreamSpec {
                experiment: cfg.experiment.clone(),
                presenter: Presenter::match_pair(MATCH_QUESTION),
                n_assignments: cfg.n_assignments,
            },
            grey_zone,
            |row| {
                n_crowd_reviewed += 1;
                if majority_answer(&row.result.runs, &space) == Value::Bool(true) {
                    crowd_confirmed.push(pair_from_object(&row.object)?);
                }
                Ok(())
            },
        )?
    };

    let mut matched = auto_accepted.clone();
    matched.extend_from_slice(&crowd_confirmed);
    matched.sort_unstable();
    matched.dedup();
    let clusters = clusters_from_pairs(records.len(), &matched);

    Ok(CrowdErResult {
        n_candidates,
        auto_accepted,
        n_crowd_reviewed,
        matched,
        clusters,
        stats: report.stats,
        peak_inflight_pairs: report.peak_inflight_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::no_sim;
    use reprowd_core::val;

    /// A tiny corpus with an oracle decorate hook: the simulated crowd
    /// answers by ground-truth entity identity.
    fn corpus() -> (Vec<String>, Vec<usize>) {
        let records = vec![
            "golden dragon chinese restaurant vancouver".to_string(),
            "golden dragon chinese rest vancouver".to_string(),
            "golden dragon resturant vancouver chinese".to_string(),
            "blue ocean sushi bar richmond".to_string(),
            "blue ocean sushi richmond".to_string(),
            "tacofino mexican food truck".to_string(),
        ];
        let entities = vec![0, 0, 0, 1, 1, 2];
        (records, entities)
    }

    fn oracle(entities: Vec<usize>) -> impl Fn(usize, usize, &mut Value) {
        move |i, j, obj: &mut Value| {
            obj["_sim"] = val!({
                "kind": "match",
                "is_match": entities[i] == entities[j],
                "ambiguity": 0.0,
            });
        }
    }

    #[test]
    fn finds_true_matches_with_reliable_crowd() {
        let cc = CrowdContext::in_memory_sim(51);
        let (records, entities) = corpus();
        let cfg = CrowdErConfig::new("er");
        let out = crowder_join(&cc, &records, &cfg, oracle(entities.clone())).unwrap();
        // All within-entity pairs that survive the machine pass are matched.
        for &(i, j) in &out.matched {
            assert_eq!(entities[i], entities[j], "false positive ({i},{j})");
        }
        // Clusters group the duplicates.
        assert_eq!(out.clusters[0], out.clusters[1]);
        assert_eq!(out.clusters[0], out.clusters[2]);
        assert_eq!(out.clusters[3], out.clusters[4]);
        assert_ne!(out.clusters[0], out.clusters[3]);
        assert_ne!(out.clusters[5], out.clusters[0]);
    }

    #[test]
    fn threshold_controls_crowd_cost() {
        let (records, entities) = corpus();
        let mut costs = Vec::new();
        for (idx, threshold) in [0.2, 0.5, 0.8].into_iter().enumerate() {
            let cc = CrowdContext::in_memory_sim(52);
            let mut cfg = CrowdErConfig::new(&format!("er-{idx}"));
            cfg.threshold = threshold;
            let out = crowder_join(&cc, &records, &cfg, oracle(entities.clone())).unwrap();
            costs.push(out.n_crowd_reviewed);
        }
        assert!(costs[0] >= costs[1] && costs[1] >= costs[2], "costs not monotone: {costs:?}");
    }

    #[test]
    fn auto_accept_skips_crowd_for_identical() {
        let cc = CrowdContext::in_memory_sim(53);
        let records =
            vec!["identical record text".to_string(), "identical record text".to_string()];
        let mut cfg = CrowdErConfig::new("er-auto");
        cfg.auto_accept = 1.0;
        let out = crowder_join(&cc, &records, &cfg, no_sim).unwrap();
        assert_eq!(out.auto_accepted, vec![(0, 1)]);
        assert_eq!(out.n_crowd_reviewed, 0);
        assert_eq!(out.matched, vec![(0, 1)]);
        assert_eq!(out.stats.tasks_published, 0, "no crowd tasks at all");
    }

    #[test]
    fn rerun_reuses_crowd_work() {
        let cc = CrowdContext::in_memory_sim(54);
        let (records, entities) = corpus();
        let cfg = CrowdErConfig::new("er-rerun");
        let first = crowder_join(&cc, &records, &cfg, oracle(entities.clone())).unwrap();
        let second = crowder_join(&cc, &records, &cfg, oracle(entities)).unwrap();
        assert_eq!(first.matched, second.matched);
        assert_eq!(second.stats.tasks_published, 0);
        assert!(second.stats.tasks_reused > 0);
    }

    #[test]
    fn empty_corpus() {
        let cc = CrowdContext::in_memory_sim(55);
        let out = crowder_join(&cc, &[], &CrowdErConfig::new("er-e"), no_sim).unwrap();
        assert!(out.matched.is_empty());
        assert!(out.clusters.is_empty());
    }
}
