//! Transitivity-aware crowdsourced joins (Wang, Li, Kraska, Franklin, Feng
//! — SIGMOD 2013).
//!
//! Key idea: match relations are (approximately) transitive. Having learned
//! `a = b` and `b = c`, the pair `(a, c)` need not be asked — it is deduced
//! positive. Having learned `a = b` and `b ≠ d`, the pair `(a, d)` is
//! deduced negative. The crowd is consulted only when no deduction applies,
//! and the *order* in which pairs are processed changes how many questions
//! are saved — descending machine-similarity order front-loads the likely
//! positives that unlock deductions (the SIGMOD paper's observation,
//! reproduced by experiment E7).
//!
//! Each asked pair is its own CrowdData row, published and collected
//! incrementally — the operator leans on content-keyed caching, so a
//! crashed or rerun join resumes mid-sequence for free.

use crate::cluster::clusters_from_pairs;
use crate::join::pair_object;
use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::hash::fnv1a;
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;
use reprowd_simjoin::{self_join, JoinConfig, SetSimilarity, SimPair};
use std::collections::{HashMap, HashSet};

/// The order candidate pairs are processed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOrdering {
    /// Descending machine similarity — the SIGMOD'13 recommendation.
    SimilarityDesc,
    /// Ascending similarity — an adversarial baseline.
    SimilarityAsc,
    /// Deterministic pseudo-random order derived from the seed.
    Random(u64),
}

/// Configuration of a transitive join.
#[derive(Debug, Clone)]
pub struct TransitiveConfig {
    /// Experiment name (cache namespace).
    pub experiment: String,
    /// Machine-pass similarity measure.
    pub measure: SetSimilarity,
    /// Candidate threshold for the machine pass.
    pub threshold: f64,
    /// Redundancy per asked pair.
    pub n_assignments: u32,
    /// Processing order.
    pub ordering: PairOrdering,
}

impl TransitiveConfig {
    /// Defaults: Jaccard θ=0.3, 3 assignments, similarity-descending.
    pub fn new(experiment: &str) -> Self {
        TransitiveConfig {
            experiment: experiment.to_string(),
            measure: SetSimilarity::Jaccard,
            threshold: 0.3,
            n_assignments: 3,
            ordering: PairOrdering::SimilarityDesc,
        }
    }
}

/// Output of [`transitive_join`].
#[derive(Debug, Clone)]
pub struct TransitiveResult {
    /// Candidate pairs from the machine pass.
    pub candidates: Vec<SimPair>,
    /// Pairs the crowd was actually asked, in ask order.
    pub asked: Vec<(usize, usize)>,
    /// Candidate pairs resolved positive by transitivity (never asked).
    pub deduced_positive: usize,
    /// Candidate pairs resolved negative by transitivity (never asked).
    pub deduced_negative: usize,
    /// All candidate pairs ultimately labeled positive.
    pub matched: Vec<(usize, usize)>,
    /// Cluster label per record.
    pub clusters: Vec<usize>,
    /// Cache-reuse statistics aggregated over the ask sequence.
    pub stats: reprowd_core::crowddata::RunStats,
}

/// Runs the transitivity-aware join over `records`.
pub fn transitive_join(
    cc: &CrowdContext,
    records: &[String],
    cfg: &TransitiveConfig,
    decorate: impl Fn(usize, usize, &mut Value),
) -> Result<TransitiveResult> {
    let mut candidates = self_join(records, &JoinConfig::new(cfg.measure, cfg.threshold));
    order_pairs(&mut candidates, cfg.ordering);

    let mut uf = crate::cluster::UnionFind::new(records.len());
    // Negative relations between cluster representatives.
    let mut negative: HashMap<usize, HashSet<usize>> = HashMap::new();

    let mut asked = Vec::new();
    let mut deduced_positive = 0usize;
    let mut deduced_negative = 0usize;
    let mut matched = Vec::new();

    let presenter = Presenter::match_pair("Do these two records refer to the same entity?");
    let mut cd = cc.crowddata(&cfg.experiment)?.data(vec![])?.presenter(presenter)?;

    for pair in &candidates {
        let (i, j) = (pair.left, pair.right);
        let (ra, rb) = (uf.find(i), uf.find(j));
        if ra == rb {
            deduced_positive += 1;
            matched.push((i, j));
            continue;
        }
        if negative.get(&ra).is_some_and(|s| s.contains(&rb)) {
            deduced_negative += 1;
            continue;
        }
        // No deduction: ask the crowd for this one pair.
        let obj = pair_object(i, j, &records[i], &records[j], &decorate);
        cd = cd.extend_data(vec![obj])?.publish(cfg.n_assignments)?.collect()?.majority_vote()?;
        asked.push((i, j));
        let verdict = cd
            .column("mv")?
            .last()
            .cloned()
            .unwrap_or(Value::Null);
        if verdict == Value::Bool(true) {
            matched.push((i, j));
            merge_with_negatives(&mut uf, &mut negative, ra, rb);
        } else {
            negative.entry(ra).or_default().insert(rb);
            negative.entry(rb).or_default().insert(ra);
        }
    }

    matched.sort_unstable();
    matched.dedup();
    let clusters = clusters_from_pairs(records.len(), &matched);
    Ok(TransitiveResult {
        candidates,
        asked,
        deduced_positive,
        deduced_negative,
        matched,
        clusters,
        stats: cd.run_stats(),
    })
}

/// Union two clusters and rewrite negative edges to the new representative.
fn merge_with_negatives(
    uf: &mut crate::cluster::UnionFind,
    negative: &mut HashMap<usize, HashSet<usize>>,
    ra: usize,
    rb: usize,
) {
    uf.union(ra, rb);
    let root = uf.find(ra);
    let mut merged: HashSet<usize> = HashSet::new();
    for rep in [ra, rb] {
        if let Some(set) = negative.remove(&rep) {
            merged.extend(set);
        }
    }
    for other in &merged {
        if let Some(set) = negative.get_mut(other) {
            set.remove(&ra);
            set.remove(&rb);
            set.insert(root);
        }
    }
    if !merged.is_empty() {
        negative.insert(root, merged);
    }
}

fn order_pairs(pairs: &mut [SimPair], ordering: PairOrdering) {
    match ordering {
        // self_join already returns similarity-descending order.
        PairOrdering::SimilarityDesc => {}
        PairOrdering::SimilarityAsc => pairs.reverse(),
        PairOrdering::Random(seed) => {
            pairs.sort_by_key(|p| {
                fnv1a(format!("{seed}/{}/{}", p.left, p.right).as_bytes())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprowd_core::val;

    /// Three entities with 3, 3, and 2 duplicates.
    fn corpus() -> (Vec<String>, Vec<usize>) {
        let records = vec![
            "golden dragon chinese restaurant vancouver".to_string(),
            "golden dragon chinese rest vancouver".to_string(),
            "golden dragon restaurant vancouver chinese".to_string(),
            "blue ocean sushi bar richmond bc".to_string(),
            "blue ocean sushi richmond bc".to_string(),
            "blue ocean sushi bar bc richmond".to_string(),
            "tacofino mexican truck".to_string(),
            "tacofino mexican food truck".to_string(),
        ];
        let entities = vec![0, 0, 0, 1, 1, 1, 2, 2];
        (records, entities)
    }

    fn oracle(entities: Vec<usize>) -> impl Fn(usize, usize, &mut Value) {
        move |i, j, obj: &mut Value| {
            obj["_sim"] = val!({
                "kind": "match",
                "is_match": entities[i] == entities[j],
                "ambiguity": 0.0,
            });
        }
    }

    #[test]
    fn transitivity_saves_questions() {
        let cc = CrowdContext::in_memory_sim(61);
        let (records, entities) = corpus();
        let cfg = TransitiveConfig::new("tj");
        let out = transitive_join(&cc, &records, &cfg, oracle(entities.clone())).unwrap();
        assert!(
            out.asked.len() < out.candidates.len(),
            "no questions saved: asked {} of {}",
            out.asked.len(),
            out.candidates.len()
        );
        assert!(out.deduced_positive > 0);
        // Clustering equals ground truth for a perfect crowd.
        for (i, j) in
            (0..records.len()).flat_map(|i| (i + 1..records.len()).map(move |j| (i, j)))
        {
            let same_truth = entities[i] == entities[j];
            let same_pred = out.clusters[i] == out.clusters[j];
            // Only pairs that were machine candidates can be linked; the
            // corpus is built so all true pairs clear the threshold.
            if same_truth {
                assert!(same_pred, "missed true pair ({i},{j})");
            } else {
                assert!(!same_pred, "false link ({i},{j})");
            }
        }
    }

    #[test]
    fn matches_crowder_result_with_fewer_questions() {
        let (records, entities) = corpus();
        let cc = CrowdContext::in_memory_sim(62);
        let t = transitive_join(
            &cc,
            &records,
            &TransitiveConfig::new("tj2"),
            oracle(entities.clone()),
        )
        .unwrap();
        let cc2 = CrowdContext::in_memory_sim(62);
        let c = crate::join::crowder::crowder_join(
            &cc2,
            &records,
            &crate::join::crowder::CrowdErConfig::new("er2"),
            oracle(entities),
        )
        .unwrap();
        // Same final clustering…
        assert_eq!(t.clusters, c.clusters);
        // …with strictly fewer crowd questions.
        assert!(t.asked.len() < c.n_crowd_reviewed);
    }

    #[test]
    fn ordering_changes_question_count() {
        let (records, entities) = corpus();
        let ask_count = |ordering: PairOrdering, name: &str| {
            let cc = CrowdContext::in_memory_sim(63);
            let mut cfg = TransitiveConfig::new(name);
            cfg.ordering = ordering;
            transitive_join(&cc, &records, &cfg, oracle(entities.clone()))
                .unwrap()
                .asked
                .len()
        };
        let desc = ask_count(PairOrdering::SimilarityDesc, "tj-desc");
        let asc = ask_count(PairOrdering::SimilarityAsc, "tj-asc");
        // Descending order should never need more questions than ascending
        // on this corpus (positives unlock deductions early).
        assert!(desc <= asc, "desc {desc} > asc {asc}");
    }

    #[test]
    fn rerun_reuses_all_asked_pairs() {
        let cc = CrowdContext::in_memory_sim(64);
        let (records, entities) = corpus();
        let cfg = TransitiveConfig::new("tj-rerun");
        let first = transitive_join(&cc, &records, &cfg, oracle(entities.clone())).unwrap();
        let second = transitive_join(&cc, &records, &cfg, oracle(entities)).unwrap();
        assert_eq!(first.matched, second.matched);
        assert_eq!(first.asked, second.asked);
        assert_eq!(second.stats.tasks_published, 0, "rerun must be free");
    }

    #[test]
    fn negative_deduction_fires() {
        // Two tight clusters whose cross pairs survive the machine pass:
        // after one cross pair is answered "no", the rest are deduced.
        let records = vec![
            "alpha beta gamma delta shared tokens".to_string(),
            "alpha beta gamma delta shared tokens x".to_string(),
            "alpha beta gamma delta shared words".to_string(),
            "alpha beta gamma delta shared words y".to_string(),
        ];
        let entities = vec![0, 0, 1, 1];
        let cc = CrowdContext::in_memory_sim(65);
        let mut cfg = TransitiveConfig::new("tj-neg");
        cfg.threshold = 0.2;
        let out = transitive_join(&cc, &records, &cfg, oracle(entities)).unwrap();
        assert!(out.deduced_negative > 0, "expected negative deductions: {out:?}");
        assert_eq!(out.clusters[0], out.clusters[1]);
        assert_eq!(out.clusters[2], out.clusters[3]);
        assert_ne!(out.clusters[0], out.clusters[2]);
    }

    #[test]
    fn empty_records() {
        let cc = CrowdContext::in_memory_sim(66);
        let out = transitive_join(
            &cc,
            &[],
            &TransitiveConfig::new("tj-e"),
            crate::no_sim,
        )
        .unwrap();
        assert!(out.asked.is_empty());
        assert!(out.matched.is_empty());
    }
}
