//! # reprowd-operators
//!
//! Crowdsourced data processing operators on top of CrowdData.
//!
//! The paper: "Most of the crowdsourcing works in the database field are
//! centered around the implementations of crowdsourced data processing
//! operators ... how to combine computers and crowds to implement
//! traditional database operators such as join, sort, and max", and: "We
//! have implemented two crowdsourced join algorithms (Wang et al. 2012;
//! Wang et al. 2013)". This crate provides those two algorithms and the
//! standard operator set around them, all built on the public CrowdData
//! API — so every operator inherits the sharable (fault-recovery) and
//! examinable (lineage) properties *for free*, which is the paper's core
//! claim about the abstraction:
//!
//! * [`label`] — crowd labeling (the Figure 2 workload as an operator).
//! * [`filter`] — crowd selection predicate.
//! * [`join::crowder`] — CrowdER (PVLDB 2012): machine similarity pass +
//!   crowd verification of the grey zone.
//! * [`join::transitive`] — transitivity-aware joins (SIGMOD 2013): deduce
//!   labels from already-answered pairs; ask the crowd only when deduction
//!   fails.
//! * [`sort`] — pairwise-comparison sort with Copeland aggregation.
//! * [`max`] — tournament max / top-k.
//! * [`count`] — sampling-based selectivity estimation.
//! * [`categorize`] — multi-class categorization with confidence-gated
//!   escalation (the paper's "more operators" future work).
//! * [`rating`] — ordinal 1..=k rating with mean/median/trimmed reduction.
//! * [`cluster`] — union-find clustering and pairwise precision/recall/F1.
//!
//! ## Simulation seam
//!
//! Operators that build *derived* objects (pairs) accept a `decorate`
//! closure invoked for every constructed object; simulations use it to
//! embed the hidden ground truth (`"_sim"` answer model) that a human crowd
//! would perceive by looking at the task. Production use passes
//! [`no_sim`].

pub mod categorize;
pub mod cluster;
pub mod count;
pub mod filter;
pub mod join;
pub mod label;
pub mod max;
pub mod rating;
pub mod sort;

pub use cluster::{clusters_from_pairs, pairwise_prf, UnionFind};

/// The most commonly used operator items.
pub mod prelude {
    pub use crate::categorize::{crowd_categorize, CategorizeConfig, CategorizeResult};
    pub use crate::cluster::{clusters_from_pairs, pairwise_prf, UnionFind};
    pub use crate::rating::{crowd_rate, RatingAggregation, RatingConfig, RatingResult};
    pub use crate::count::{crowd_count, CrowdCountConfig, CrowdCountResult};
    pub use crate::filter::{crowd_filter, CrowdFilterConfig, CrowdFilterResult};
    pub use crate::join::crowder::{crowder_join, CrowdErConfig, CrowdErResult};
    pub use crate::join::transitive::{transitive_join, TransitiveConfig, TransitiveResult};
    pub use crate::label::{crowd_label, CrowdLabelConfig, CrowdLabelResult};
    pub use crate::max::{crowd_max, CrowdMaxConfig, CrowdMaxResult};
    pub use crate::no_sim;
    pub use crate::sort::{crowd_sort, CrowdSortConfig, CrowdSortResult};
}

use reprowd_core::value::Value;

/// The identity `decorate` hook: no simulation metadata is attached
/// (production crowds look at the task content itself).
pub fn no_sim(_left: usize, _right: usize, _object: &mut Value) {}
