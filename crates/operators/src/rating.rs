//! Numeric rating aggregation: workers score items on a 1..=k scale;
//! the operator aggregates to a number (mean / median / trimmed mean).
//!
//! Ratings are ordinal, not categorical — a 4 is *close* to a 5 — so
//! majority vote discards information; averaging over the scale is the
//! standard estimator, with trimming to blunt spammers.

use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;

/// How per-item ratings are reduced to one number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatingAggregation {
    /// Arithmetic mean of all ratings.
    Mean,
    /// Median rating (robust to a minority of outliers).
    Median,
    /// Mean after dropping the lowest and highest rating (if ≥ 3 votes).
    TrimmedMean,
}

/// Configuration of a rating run.
#[derive(Debug, Clone)]
pub struct RatingConfig {
    /// Experiment name (cache namespace).
    pub experiment: String,
    /// The prompt shown to workers.
    pub question: String,
    /// Scale size: workers answer 1..=scale.
    pub scale: u32,
    /// Redundancy per item.
    pub n_assignments: u32,
    /// Reduction method.
    pub aggregation: RatingAggregation,
}

impl RatingConfig {
    /// 1-5 stars, 5 raters, trimmed mean.
    pub fn new(experiment: &str, question: &str) -> Self {
        RatingConfig {
            experiment: experiment.to_string(),
            question: question.to_string(),
            scale: 5,
            n_assignments: 5,
            aggregation: RatingAggregation::TrimmedMean,
        }
    }
}

/// Output of [`crowd_rate`].
#[derive(Debug, Clone)]
pub struct RatingResult {
    /// Aggregated score per item (`None` for items with no ratings).
    pub scores: Vec<Option<f64>>,
    /// Raw per-item ratings, in submission order.
    pub raw: Vec<Vec<u32>>,
    /// Cache statistics.
    pub stats: reprowd_core::crowddata::RunStats,
}

/// Rates `items` on a 1..=scale and aggregates.
pub fn crowd_rate(cc: &CrowdContext, items: Vec<Value>, cfg: &RatingConfig) -> Result<RatingResult> {
    assert!(cfg.scale >= 2, "scale must have at least two points");
    let labels: Vec<String> = (1..=cfg.scale).map(|s| s.to_string()).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let cd = cc
        .crowddata(&cfg.experiment)?
        .data(items)?
        .presenter(Presenter::text_label(&cfg.question, &label_refs))?
        .publish(cfg.n_assignments)?
        .collect()?;

    let mut scores = Vec::with_capacity(cd.len());
    let mut raw = Vec::with_capacity(cd.len());
    for row in cd.rows() {
        let mut ratings: Vec<u32> = row
            .result
            .as_ref()
            .map(|r| {
                r.runs
                    .iter()
                    .filter_map(|run| run.answer.as_str().and_then(|s| s.parse::<u32>().ok()))
                    .filter(|&v| (1..=cfg.scale).contains(&v))
                    .collect()
            })
            .unwrap_or_default();
        ratings.sort_unstable();
        scores.push(aggregate(&ratings, cfg.aggregation));
        raw.push(ratings);
    }
    Ok(RatingResult { scores, raw, stats: cd.run_stats() })
}

/// Reduces sorted ratings to one number.
fn aggregate(sorted: &[u32], how: RatingAggregation) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let mean = |xs: &[u32]| xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
    Some(match how {
        RatingAggregation::Mean => mean(sorted),
        RatingAggregation::Median => {
            let n = sorted.len();
            if n % 2 == 1 {
                sorted[n / 2] as f64
            } else {
                (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
            }
        }
        RatingAggregation::TrimmedMean => {
            if sorted.len() >= 3 {
                mean(&sorted[1..sorted.len() - 1])
            } else {
                mean(sorted)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprowd_core::val;
    use reprowd_platform::{CrowdPlatform, SimPlatform};
    use std::sync::Arc;

    fn ctx(ability: f64, seed: u64) -> CrowdContext {
        let platform: Arc<dyn CrowdPlatform> = Arc::new(SimPlatform::quick(7, ability, seed));
        CrowdContext::new(platform, Arc::new(reprowd_storage::MemoryStore::new())).unwrap()
    }

    /// Items whose true star rating is `1 + i % 5`.
    fn items(n: usize, difficulty: f64) -> Vec<Value> {
        (0..n)
            .map(|i| {
                val!({
                    "photo": format!("p{i}.jpg"),
                    "_sim": {"kind": "label", "truth": (i % 5), "labels": ["1", "2", "3", "4", "5"], "difficulty": difficulty}
                })
            })
            .collect()
    }

    #[test]
    fn perfect_raters_recover_true_scores() {
        let cc = ctx(1.0, 1);
        let mut cfg = RatingConfig::new("rate", "How many stars?");
        cfg.aggregation = RatingAggregation::Mean;
        let out = crowd_rate(&cc, items(10, 0.0), &cfg).unwrap();
        for (i, s) in out.scores.iter().enumerate() {
            assert_eq!(*s, Some((1 + i % 5) as f64));
        }
    }

    #[test]
    fn aggregate_mean_median_trimmed() {
        assert_eq!(aggregate(&[1, 2, 3, 4, 5], RatingAggregation::Mean), Some(3.0));
        assert_eq!(aggregate(&[1, 2, 3, 4, 5], RatingAggregation::Median), Some(3.0));
        assert_eq!(aggregate(&[1, 2, 4, 4], RatingAggregation::Median), Some(3.0));
        // Trim drops the 1 and the 5.
        assert_eq!(aggregate(&[1, 3, 3, 3, 5], RatingAggregation::TrimmedMean), Some(3.0));
        // Too few votes to trim: falls back to the mean.
        assert_eq!(aggregate(&[2, 4], RatingAggregation::TrimmedMean), Some(3.0));
        assert_eq!(aggregate(&[], RatingAggregation::Mean), None);
    }

    #[test]
    fn trimmed_mean_blunts_outliers() {
        // Ratings [1, 4, 4, 4, 5]: one lowballer, one fan.
        let sorted = [1u32, 4, 4, 4, 5];
        let mean = aggregate(&sorted, RatingAggregation::Mean).unwrap();
        let trimmed = aggregate(&sorted, RatingAggregation::TrimmedMean).unwrap();
        assert!((trimmed - 4.0).abs() < 1e-12);
        assert!((mean - 3.6).abs() < 1e-12);
    }

    #[test]
    fn noisy_raters_stay_close_on_average() {
        let cc = ctx(0.8, 2);
        let mut cfg = RatingConfig::new("rate-n", "Stars?");
        cfg.n_assignments = 7;
        let out = crowd_rate(&cc, items(20, 0.2), &cfg).unwrap();
        let mut err = 0.0;
        for (i, s) in out.scores.iter().enumerate() {
            err += (s.unwrap() - (1 + i % 5) as f64).abs();
        }
        let mae = err / 20.0;
        assert!(mae < 1.0, "mean absolute error {mae}");
    }

    #[test]
    fn rerun_is_cached() {
        let cc = ctx(0.9, 3);
        let cfg = RatingConfig::new("rate-r", "Stars?");
        let first = crowd_rate(&cc, items(6, 0.1), &cfg).unwrap();
        let second = crowd_rate(&cc, items(6, 0.1), &cfg).unwrap();
        assert_eq!(first.scores, second.scores);
        assert_eq!(second.stats.tasks_published, 0);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn degenerate_scale_rejected() {
        let cc = ctx(0.9, 4);
        let mut cfg = RatingConfig::new("rate-bad", "Stars?");
        cfg.scale = 1;
        let _ = crowd_rate(&cc, items(1, 0.0), &cfg);
    }
}
