//! The crowd filter operator: keep the items the crowd says satisfy a
//! predicate ("is this image safe for work?", "is this review spam?").

use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;

/// Configuration of a crowd filter.
#[derive(Debug, Clone)]
pub struct CrowdFilterConfig {
    /// Experiment name (cache namespace).
    pub experiment: String,
    /// The yes/no predicate question.
    pub question: String,
    /// Redundancy per item.
    pub n_assignments: u32,
}

impl CrowdFilterConfig {
    /// 3-assignment filter.
    pub fn new(experiment: &str, question: &str) -> Self {
        CrowdFilterConfig {
            experiment: experiment.to_string(),
            question: question.to_string(),
            n_assignments: 3,
        }
    }
}

/// Output of [`crowd_filter`].
#[derive(Debug, Clone)]
pub struct CrowdFilterResult {
    /// Indices of items the crowd kept.
    pub kept: Vec<usize>,
    /// The per-item verdicts (`true` = keep; `None` = unresolved, dropped).
    pub verdicts: Vec<Option<bool>>,
    /// Cache-reuse statistics.
    pub stats: reprowd_core::crowddata::RunStats,
}

/// Filters `items` by the crowd's majority answer to a yes/no question.
pub fn crowd_filter(
    cc: &CrowdContext,
    items: Vec<Value>,
    cfg: &CrowdFilterConfig,
) -> Result<CrowdFilterResult> {
    let cd = cc
        .crowddata(&cfg.experiment)?
        .data(items)?
        .presenter(Presenter::image_label(&cfg.question, &["Yes", "No"]))?
        .publish(cfg.n_assignments)?
        .collect()?
        .majority_vote()?;
    let mv = cd.column("mv")?;
    let verdicts: Vec<Option<bool>> = mv
        .iter()
        .map(|v| match v {
            Value::String(s) if s == "Yes" => Some(true),
            Value::String(s) if s == "No" => Some(false),
            _ => None,
        })
        .collect();
    let kept = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| **v == Some(true))
        .map(|(i, _)| i)
        .collect();
    Ok(CrowdFilterResult { kept, verdicts, stats: cd.run_stats() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprowd_core::val;

    fn perfect_ctx(seed: u64) -> CrowdContext {
        use reprowd_platform::{CrowdPlatform, SimPlatform};
        use std::sync::Arc;
        let platform: Arc<dyn CrowdPlatform> = Arc::new(SimPlatform::quick(5, 1.0, seed));
        CrowdContext::new(platform, Arc::new(reprowd_storage::MemoryStore::new())).unwrap()
    }

    #[test]
    fn keeps_positive_items() {
        // Perfect workers so the expected kept-set is exact.
        let cc = perfect_ctx(41);
        let items: Vec<Value> = (0..6)
            .map(|i| {
                val!({
                    "text": format!("item {i}"),
                    "_sim": {"kind": "label", "truth": if i % 3 == 0 {0} else {1}, "labels": ["Yes", "No"], "difficulty": 0.0}
                })
            })
            .collect();
        let out =
            crowd_filter(&cc, items, &CrowdFilterConfig::new("filt", "Keep it?")).unwrap();
        assert_eq!(out.kept, vec![0, 3]);
        assert_eq!(out.verdicts.len(), 6);
        assert_eq!(out.verdicts[1], Some(false));
    }

    #[test]
    fn empty_input() {
        let cc = CrowdContext::in_memory_sim(42);
        let out =
            crowd_filter(&cc, vec![], &CrowdFilterConfig::new("filt", "Keep it?")).unwrap();
        assert!(out.kept.is_empty());
        assert!(out.verdicts.is_empty());
    }
}
