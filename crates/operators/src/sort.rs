//! Crowdsourced sort: pairwise comparisons + Copeland aggregation.
//!
//! The classic crowd-sort design (surveyed in Li et al., TKDE 2016): ask
//! workers "which is better?" for item pairs, then rank items by their
//! number of pairwise wins (Copeland score). A comparison budget trades
//! accuracy for cost — experiment E11's sweep.
//!
//! Pairs are *streamed* into the pipelined execution engine
//! ([`run_stream`]): candidate generation interleaves with publishing, and
//! the budgeted selection keeps an `O(budget)` heap instead of
//! materializing and sorting all `n·(n-1)/2` pairs up front.

use crate::join::{pair_from_object, pair_object};
use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::hash::fnv1a;
use reprowd_core::pipeline::{majority_answer, run_stream, StreamSpec};
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;
use std::collections::BinaryHeap;

/// Configuration of a crowd sort.
#[derive(Debug, Clone)]
pub struct CrowdSortConfig {
    /// Experiment name (cache namespace).
    pub experiment: String,
    /// The comparison question.
    pub question: String,
    /// Redundancy per comparison.
    pub n_assignments: u32,
    /// Maximum number of item pairs to ask (None = all `n·(n-1)/2`).
    /// When budgeted, pairs are chosen deterministically from the seed.
    pub budget: Option<usize>,
    /// Seed for budgeted pair selection.
    pub seed: u64,
}

impl CrowdSortConfig {
    /// All-pairs sort with 3 assignments.
    pub fn new(experiment: &str, question: &str) -> Self {
        CrowdSortConfig {
            experiment: experiment.to_string(),
            question: question.to_string(),
            n_assignments: 3,
            budget: None,
            seed: 17,
        }
    }
}

/// Output of [`crowd_sort`].
#[derive(Debug, Clone)]
pub struct CrowdSortResult {
    /// Item indices, best first.
    pub order: Vec<usize>,
    /// Copeland score (pairwise wins) per item.
    pub wins: Vec<f64>,
    /// Pairs actually compared.
    pub compared: Vec<(usize, usize)>,
    /// Cache-reuse statistics.
    pub stats: reprowd_core::crowddata::RunStats,
}

/// The pairs a budgeted sort asks, selected without materializing the full
/// pair space: a bounded max-heap keeps the `budget` pairs with the
/// smallest seeded hashes (identical selection — including tie-breaks — to
/// the historical sort-all-then-truncate, in `O(budget)` memory).
fn budgeted_pairs(n: usize, budget: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut heap: BinaryHeap<(u64, usize, usize)> = BinaryHeap::with_capacity(budget + 1);
    if budget == 0 {
        return Vec::new();
    }
    for i in 0..n {
        for j in i + 1..n {
            let key = fnv1a(format!("{seed}/{i}/{j}").as_bytes());
            heap.push((key, i, j));
            if heap.len() > budget {
                heap.pop();
            }
        }
    }
    let mut selected: Vec<(usize, usize)> =
        heap.into_iter().map(|(_, i, j)| (i, j)).collect();
    selected.sort_unstable();
    selected
}

/// Sorts `items` (descriptive strings) by crowd preference.
///
/// Comparison pairs stream into the pipelined engine: generation,
/// publishing, and collection overlap chunk by chunk, and nothing
/// `O(n²)`-sized is resident beyond the returned `compared` list itself.
pub fn crowd_sort(
    cc: &CrowdContext,
    items: &[String],
    cfg: &CrowdSortConfig,
    decorate: impl Fn(usize, usize, &mut Value) + Sync,
) -> Result<CrowdSortResult> {
    let n = items.len();
    let all_pairs = n * n.saturating_sub(1) / 2;
    let pairs: Box<dyn Iterator<Item = (usize, usize)> + Send> = match cfg.budget {
        Some(budget) => Box::new(budgeted_pairs(n, budget.min(all_pairs), cfg.seed).into_iter()),
        None => Box::new((0..n).flat_map(move |i| (i + 1..n).map(move |j| (i, j)))),
    };
    let n_pairs = cfg.budget.map_or(all_pairs, |b| b.min(all_pairs));

    let mut wins = vec![0.0f64; n];
    let mut compared = Vec::with_capacity(n_pairs);
    let mut stats = reprowd_core::crowddata::RunStats::default();
    if n_pairs > 0 {
        let space = Presenter::pair_compare(&cfg.question)
            .static_answer_space()
            .expect("pair comparison has a fixed answer space");
        let candidates = pairs.map(|(i, j)| pair_object(i, j, &items[i], &items[j], &decorate));
        let report = run_stream(
            cc,
            &StreamSpec {
                experiment: cfg.experiment.clone(),
                presenter: Presenter::pair_compare(&cfg.question),
                n_assignments: cfg.n_assignments,
            },
            candidates,
            |row| {
                let (i, j) = pair_from_object(&row.object)?;
                match majority_answer(&row.result.runs, &space) {
                    Value::String(s) if s == "first" => wins[i] += 1.0,
                    Value::String(s) if s == "second" => wins[j] += 1.0,
                    // Unresolved comparison: half a win each.
                    _ => {
                        wins[i] += 0.5;
                        wins[j] += 0.5;
                    }
                }
                compared.push((i, j));
                Ok(())
            },
        )?;
        stats = report.stats;
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        wins[b].partial_cmp(&wins[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    Ok(CrowdSortResult { order, wins, compared, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprowd_core::val;

    /// Items with latent scores 0..n (higher index = better), and an oracle
    /// hook embedding near-deterministic Bradley–Terry comparisons.
    fn setup(n: usize) -> (Vec<String>, impl Fn(usize, usize, &mut Value)) {
        let items: Vec<String> = (0..n).map(|i| format!("photo {i}")).collect();
        let hook = move |i: usize, j: usize, obj: &mut Value| {
            // score = index; temperature small => decisive comparisons.
            let p_first = 1.0 / (1.0 + (-((i as f64) - (j as f64)) / 0.25).exp());
            obj["_sim"] = val!({"kind": "compare", "p_first": p_first});
        };
        (items, hook)
    }

    #[test]
    fn all_pairs_sort_recovers_true_order() {
        let cc = CrowdContext::in_memory_sim(71);
        let (items, hook) = setup(6);
        let cfg = CrowdSortConfig::new("sort", "Which is better?");
        let out = crowd_sort(&cc, &items, &cfg, hook).unwrap();
        assert_eq!(out.order, vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(out.compared.len(), 15);
    }

    #[test]
    fn budget_reduces_comparisons() {
        let cc = CrowdContext::in_memory_sim(72);
        let (items, hook) = setup(8);
        let mut cfg = CrowdSortConfig::new("sort-b", "Which is better?");
        cfg.budget = Some(10);
        let out = crowd_sort(&cc, &items, &cfg, hook).unwrap();
        assert_eq!(out.compared.len(), 10);
        assert_eq!(out.order.len(), 8);
    }

    #[test]
    fn budget_selection_is_deterministic() {
        let (items, _) = setup(8);
        let select = |seed: u64| {
            let cc = CrowdContext::in_memory_sim(73);
            let (_, hook) = setup(8);
            let mut cfg = CrowdSortConfig::new("sort-d", "Q?");
            cfg.budget = Some(6);
            cfg.seed = seed;
            crowd_sort(&cc, &items, &cfg, hook).unwrap().compared
        };
        assert_eq!(select(1), select(1));
        assert_ne!(select(1), select(2));
    }

    #[test]
    fn empty_and_single_item() {
        let cc = CrowdContext::in_memory_sim(74);
        let cfg = CrowdSortConfig::new("sort-e", "Q?");
        let out = crowd_sort(&cc, &[], &cfg, crate::no_sim).unwrap();
        assert!(out.order.is_empty());
        let out = crowd_sort(&cc, &["only".to_string()], &cfg, crate::no_sim).unwrap();
        assert_eq!(out.order, vec![0]);
        assert!(out.compared.is_empty());
    }

    #[test]
    fn rerun_is_cached() {
        let cc = CrowdContext::in_memory_sim(75);
        let (items, hook) = setup(5);
        let cfg = CrowdSortConfig::new("sort-r", "Q?");
        let first = crowd_sort(&cc, &items, &cfg, &hook).unwrap();
        let second = crowd_sort(&cc, &items, &cfg, &hook).unwrap();
        assert_eq!(first.order, second.order);
        assert_eq!(second.stats.tasks_published, 0);
    }
}
