//! Multi-class categorization — the operator the paper's future-work line
//! ("we will continue to add more algorithms") points at first; the
//! original reprowd shipped it as an example application.
//!
//! Unlike binary labeling, multi-class votes spread thin: with `k` classes
//! and `r` workers a plurality can be weak, so the operator reports a
//! *confidence* (the winning label's vote share) and callers can route
//! low-confidence items to a second, higher-redundancy round.

use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;

/// Configuration of a categorization run.
#[derive(Debug, Clone)]
pub struct CategorizeConfig {
    /// Experiment name (cache namespace).
    pub experiment: String,
    /// The question shown to workers.
    pub question: String,
    /// The category labels.
    pub categories: Vec<String>,
    /// Redundancy per item.
    pub n_assignments: u32,
    /// Items whose winning vote share falls below this go to a second
    /// round with `escalated_assignments` (set equal to `n_assignments`
    /// to disable escalation).
    pub confidence_floor: f64,
    /// Redundancy of the escalation round.
    pub escalated_assignments: u32,
}

impl CategorizeConfig {
    /// 3-assignment categorization, escalating items under 2/3 agreement
    /// to 5 workers.
    pub fn new(experiment: &str, question: &str, categories: &[&str]) -> Self {
        CategorizeConfig {
            experiment: experiment.to_string(),
            question: question.to_string(),
            categories: categories.iter().map(|c| c.to_string()).collect(),
            n_assignments: 3,
            confidence_floor: 0.67,
            escalated_assignments: 5,
        }
    }
}

/// Output of [`crowd_categorize`].
#[derive(Debug, Clone)]
pub struct CategorizeResult {
    /// Winning category per item (`Null` if no votes at all).
    pub categories: Vec<Value>,
    /// Vote share of the winner per item, in `[0, 1]`.
    pub confidence: Vec<f64>,
    /// Items that went through the escalation round.
    pub escalated: Vec<usize>,
    /// Combined cache statistics (first round + escalation).
    pub stats: reprowd_core::crowddata::RunStats,
}

/// Categorizes `items`, escalating low-confidence ones to more workers.
pub fn crowd_categorize(
    cc: &CrowdContext,
    items: Vec<Value>,
    cfg: &CategorizeConfig,
) -> Result<CategorizeResult> {
    let label_refs: Vec<&str> = cfg.categories.iter().map(String::as_str).collect();
    let presenter = Presenter::text_label(&cfg.question, &label_refs);
    let cd = cc
        .crowddata(&cfg.experiment)?
        .data(items.clone())?
        .presenter(presenter.clone())?
        .publish(cfg.n_assignments)?
        .collect()?;
    let (mut winners, mut confidence) = tally(&cd)?;
    let mut stats = cd.run_stats();

    // Escalation round for weakly-decided items, as its own experiment so
    // the extra answers cache independently.
    let escalated: Vec<usize> = confidence
        .iter()
        .enumerate()
        .filter(|&(i, &c)| c < cfg.confidence_floor && !items[i].is_null())
        .map(|(i, _)| i)
        .collect();
    if !escalated.is_empty() && cfg.escalated_assignments > cfg.n_assignments {
        let escalated_items: Vec<Value> = escalated.iter().map(|&i| items[i].clone()).collect();
        let cd2 = cc
            .crowddata(&format!("{}-escalated", cfg.experiment))?
            .data(escalated_items)?
            .presenter(presenter)?
            .publish(cfg.escalated_assignments)?
            .collect()?;
        let (w2, c2) = tally(&cd2)?;
        for (slot, &item) in escalated.iter().enumerate() {
            winners[item] = w2[slot].clone();
            confidence[item] = c2[slot];
        }
        // Field-exhaustive merge: hand-summing here used to silently drop
        // counters added later (tasks_republished never made it in).
        stats += cd2.run_stats();
    }

    Ok(CategorizeResult { categories: winners, confidence, escalated, stats })
}

/// Winning label + vote share per row.
fn tally(cd: &reprowd_core::CrowdData) -> Result<(Vec<Value>, Vec<f64>)> {
    let (matrix, space) = cd.vote_matrix()?;
    let hists = matrix.histograms();
    let mut winners = Vec::with_capacity(hists.len());
    let mut confidence = Vec::with_capacity(hists.len());
    for h in hists {
        let total: usize = h.iter().sum();
        if total == 0 {
            winners.push(Value::Null);
            confidence.push(0.0);
            continue;
        }
        let (best, &votes) =
            h.iter().enumerate().max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i))).expect("nonempty");
        winners.push(space.get(best).cloned().unwrap_or(Value::Null));
        confidence.push(votes as f64 / total as f64);
    }
    Ok((winners, confidence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprowd_core::val;
    use reprowd_platform::{CrowdPlatform, SimPlatform};
    use std::sync::Arc;

    const CATS: [&str; 4] = ["electronics", "clothing", "food", "books"];

    fn ctx(ability: f64, seed: u64) -> CrowdContext {
        let platform: Arc<dyn CrowdPlatform> = Arc::new(SimPlatform::quick(7, ability, seed));
        CrowdContext::new(platform, Arc::new(reprowd_storage::MemoryStore::new())).unwrap()
    }

    fn items(n: usize, difficulty: f64) -> Vec<Value> {
        (0..n)
            .map(|i| {
                val!({
                    "text": format!("product {i}"),
                    "_sim": {"kind": "label", "truth": (i % 4), "labels": CATS, "difficulty": difficulty}
                })
            })
            .collect()
    }

    #[test]
    fn categorizes_correctly_with_good_crowd() {
        let cc = ctx(1.0, 1);
        let cfg = CategorizeConfig::new("cat", "Which category?", &CATS);
        let out = crowd_categorize(&cc, items(8, 0.0), &cfg).unwrap();
        for (i, c) in out.categories.iter().enumerate() {
            assert_eq!(c.as_str(), Some(CATS[i % 4]));
        }
        assert!(out.confidence.iter().all(|&c| c == 1.0));
        assert!(out.escalated.is_empty());
    }

    #[test]
    fn low_confidence_items_escalate() {
        // Hard items (difficulty 0.9): first-round agreement is weak, so
        // escalation fires and re-asks with more workers.
        let cc = ctx(0.9, 2);
        let mut cfg = CategorizeConfig::new("cat-esc", "Which category?", &CATS);
        cfg.confidence_floor = 0.99; // force escalation for any disagreement
        let out = crowd_categorize(&cc, items(12, 0.9), &cfg).unwrap();
        assert!(!out.escalated.is_empty(), "hard items should escalate");
        // Escalated items got 5 assignments: their confidence comes from
        // a 5-vote histogram, so it is a multiple of 1/5.
        for &i in &out.escalated {
            let c = out.confidence[i];
            assert!((c * 5.0).fract().abs() < 1e-9, "confidence {c} not out of 5 votes");
        }
    }

    #[test]
    fn rerun_is_cached_including_escalation() {
        let cc = ctx(0.85, 3);
        let mut cfg = CategorizeConfig::new("cat-rerun", "Q?", &CATS);
        cfg.confidence_floor = 0.99;
        let first = crowd_categorize(&cc, items(10, 0.8), &cfg).unwrap();
        let second = crowd_categorize(&cc, items(10, 0.8), &cfg).unwrap();
        assert_eq!(first.categories, second.categories);
        assert_eq!(second.stats.tasks_published, 0, "full rerun must be free");
    }

    #[test]
    fn empty_input() {
        let cc = ctx(0.9, 4);
        let cfg = CategorizeConfig::new("cat-e", "Q?", &CATS);
        let out = crowd_categorize(&cc, vec![], &cfg).unwrap();
        assert!(out.categories.is_empty());
        assert!(out.escalated.is_empty());
    }
}
