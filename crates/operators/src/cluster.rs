//! Union-find clustering and pairwise evaluation metrics.
//!
//! Entity resolution outputs *matched pairs*; downstream consumers want
//! *entities* (clusters = connected components of the match graph) and the
//! evaluation wants pairwise precision/recall/F1 against ground truth.

/// Classic disjoint-set with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false if already merged.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Cluster labels normalized so each cluster is named by its smallest
    /// member (deterministic across runs).
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut smallest: Vec<usize> = (0..n).collect();
        for x in 0..n {
            let r = self.find(x);
            if x < smallest[r] {
                smallest[r] = x;
            }
        }
        (0..n).map(|x| smallest[self.parent[x]]).collect()
    }
}

/// Connected-component labels from matched pairs over `n` records.
pub fn clusters_from_pairs(n: usize, pairs: &[(usize, usize)]) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    for &(a, b) in pairs {
        uf.union(a, b);
    }
    uf.labels()
}

/// Pairwise precision/recall/F1 of predicted match pairs against truth.
/// Pairs are normalized to `(min, max)`; duplicates are ignored.
pub fn pairwise_prf(predicted: &[(usize, usize)], truth: &[(usize, usize)]) -> (f64, f64, f64) {
    use std::collections::HashSet;
    let norm = |pairs: &[(usize, usize)]| -> HashSet<(usize, usize)> {
        pairs.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect()
    };
    let p = norm(predicted);
    let t = norm(truth);
    let tp = p.intersection(&t).count() as f64;
    let precision = if p.is_empty() { 1.0 } else { tp / p.len() as f64 };
    let recall = if t.is_empty() { 1.0 } else { tp / t.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already same set");
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn labels_are_min_member() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(0, 1);
        let labels = uf.labels();
        assert_eq!(labels, vec![0, 0, 2, 3, 2, 2]);
    }

    #[test]
    fn clusters_from_pairs_transitive() {
        let labels = clusters_from_pairs(4, &[(0, 1), (1, 2)]);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn prf_perfect_and_empty() {
        let truth = vec![(0, 1), (2, 3)];
        assert_eq!(pairwise_prf(&truth, &truth), (1.0, 1.0, 1.0));
        let (p, r, f1) = pairwise_prf(&[], &truth);
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.0);
        assert_eq!(f1, 0.0);
        assert_eq!(pairwise_prf(&[], &[]), (1.0, 1.0, 1.0));
    }

    #[test]
    fn prf_counts_correctly() {
        let predicted = vec![(1, 0), (2, 3), (4, 5)];
        let truth = vec![(0, 1), (2, 3), (6, 7)];
        let (p, r, f1) = pairwise_prf(&predicted, &truth);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn prf_normalizes_pair_order() {
        assert_eq!(pairwise_prf(&[(5, 2)], &[(2, 5)]), (1.0, 1.0, 1.0));
    }
}
