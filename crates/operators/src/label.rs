//! The labeling operator — Figure 2 as a reusable building block.

use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;
use reprowd_quality::{DsConfig, OneCoinConfig};

/// Which aggregator turns raw votes into labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Plain majority vote (the paper's default).
    MajorityVote,
    /// One-coin EM.
    Em,
    /// Dawid–Skene EM.
    DawidSkene,
}

/// Configuration of a crowd labeling run.
#[derive(Debug, Clone)]
pub struct CrowdLabelConfig {
    /// Experiment name (the cache namespace).
    pub experiment: String,
    /// The question shown to workers.
    pub question: String,
    /// The label choices.
    pub labels: Vec<String>,
    /// Redundancy per item.
    pub n_assignments: u32,
    /// Aggregator.
    pub aggregation: Aggregation,
}

impl CrowdLabelConfig {
    /// Sensible defaults: 3 assignments, majority vote.
    pub fn new(experiment: &str, question: &str, labels: &[&str]) -> Self {
        CrowdLabelConfig {
            experiment: experiment.to_string(),
            question: question.to_string(),
            labels: labels.iter().map(|l| l.to_string()).collect(),
            n_assignments: 3,
            aggregation: Aggregation::MajorityVote,
        }
    }
}

/// Output of [`crowd_label`].
#[derive(Debug, Clone)]
pub struct CrowdLabelResult {
    /// The aggregated label per item (`Null` if unresolved).
    pub labels: Vec<Value>,
    /// Cache-reuse statistics of the underlying CrowdData run.
    pub stats: reprowd_core::crowddata::RunStats,
}

/// Labels `items` with the crowd and aggregates.
pub fn crowd_label(
    cc: &CrowdContext,
    items: Vec<Value>,
    cfg: &CrowdLabelConfig,
) -> Result<CrowdLabelResult> {
    let label_refs: Vec<&str> = cfg.labels.iter().map(String::as_str).collect();
    let cd = cc
        .crowddata(&cfg.experiment)?
        .data(items)?
        .presenter(Presenter::image_label(&cfg.question, &label_refs))?
        .publish(cfg.n_assignments)?
        .collect()?;
    let (cd, column) = match cfg.aggregation {
        Aggregation::MajorityVote => (cd.majority_vote()?, "mv"),
        Aggregation::Em => (cd.em_vote(&OneCoinConfig::default())?, "em"),
        Aggregation::DawidSkene => (cd.dawid_skene(&DsConfig::default())?, "ds"),
    };
    Ok(CrowdLabelResult { labels: cd.column(column)?, stats: cd.run_stats() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprowd_core::val;

    fn items(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| {
                val!({
                    "url": format!("img{i}.jpg"),
                    "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.0}
                })
            })
            .collect()
    }

    #[test]
    fn labels_match_truth_with_good_crowd() {
        let cc = CrowdContext::in_memory_sim(31);
        let cfg = CrowdLabelConfig::new("lab", "Is this a cat?", &["Yes", "No"]);
        let out = crowd_label(&cc, items(6), &cfg).unwrap();
        let expect: Vec<Value> =
            (0..6).map(|i| val!(if i % 2 == 0 { "Yes" } else { "No" })).collect();
        assert_eq!(out.labels, expect);
        assert_eq!(out.stats.tasks_published, 6);
    }

    #[test]
    fn rerun_is_cached() {
        let cc = CrowdContext::in_memory_sim(32);
        let cfg = CrowdLabelConfig::new("lab", "Q?", &["Yes", "No"]);
        let first = crowd_label(&cc, items(4), &cfg).unwrap();
        let second = crowd_label(&cc, items(4), &cfg).unwrap();
        assert_eq!(first.labels, second.labels);
        assert_eq!(second.stats.tasks_published, 0);
        assert_eq!(second.stats.tasks_reused, 4);
    }

    #[test]
    fn operators_inherit_batched_round_trips() {
        // Operators drive publish/collect through the public CrowdData
        // API, so the context's batch size applies to them unmodified:
        // 30 items in batches of 10 = 3 publish + 3 fetch round-trips.
        use reprowd_core::exec::ExecutionConfig;
        use reprowd_platform::{CrowdPlatform, SimPlatform};
        use std::sync::Arc;

        let platform = Arc::new(SimPlatform::quick(7, 1.0, 33));
        let cc = CrowdContext::with_config(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            Arc::new(reprowd_storage::MemoryStore::new()),
            ExecutionConfig::with_batch_size(10),
        )
        .unwrap();
        let cfg = CrowdLabelConfig::new("lab", "Q?", &["Yes", "No"]);
        let out = crowd_label(&cc, items(30), &cfg).unwrap();
        assert_eq!(out.stats.tasks_published, 30);
        let m = cc.batch_metrics();
        assert_eq!((m.publish_calls, m.fetch_calls), (3, 3));
        assert_eq!(platform.api_calls(), 7, "create + 3 bulk publishes + 3 bulk fetches");
    }

    #[test]
    fn all_aggregations_run() {
        for (agg, seed) in
            [(Aggregation::MajorityVote, 1u64), (Aggregation::Em, 2), (Aggregation::DawidSkene, 3)]
        {
            let cc = CrowdContext::in_memory_sim(seed);
            let mut cfg = CrowdLabelConfig::new("lab", "Q?", &["Yes", "No"]);
            cfg.aggregation = agg;
            let out = crowd_label(&cc, items(4), &cfg).unwrap();
            assert_eq!(out.labels.len(), 4);
            assert!(out.labels.iter().all(|l| !l.is_null()));
        }
    }
}
