//! Crowdsourced count/selectivity estimation by sampling.
//!
//! To estimate how many of `n` items satisfy a predicate, label a random
//! sample of `k` with the crowd and extrapolate — with a normal-
//! approximation confidence interval. (Marcus et al.'s crowd counting
//! insight, in the operator form the Li et al. survey catalogues.)

use reprowd_core::context::CrowdContext;
use reprowd_core::error::Result;
use reprowd_core::hash::fnv1a;
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;

/// Configuration of a crowd count.
#[derive(Debug, Clone)]
pub struct CrowdCountConfig {
    /// Experiment name (cache namespace).
    pub experiment: String,
    /// The yes/no predicate question.
    pub question: String,
    /// Sample size (clamped to the population size).
    pub sample_size: usize,
    /// Redundancy per sampled item.
    pub n_assignments: u32,
    /// Seed for the deterministic sample.
    pub seed: u64,
}

impl CrowdCountConfig {
    /// Sample 50 items with 3 assignments.
    pub fn new(experiment: &str, question: &str) -> Self {
        CrowdCountConfig {
            experiment: experiment.to_string(),
            question: question.to_string(),
            sample_size: 50,
            n_assignments: 3,
            seed: 23,
        }
    }
}

/// Output of [`crowd_count`].
#[derive(Debug, Clone)]
pub struct CrowdCountResult {
    /// Estimated number of items satisfying the predicate.
    pub estimate: f64,
    /// Estimated fraction in `[0, 1]`.
    pub fraction: f64,
    /// 95% confidence half-width on the fraction (normal approximation).
    pub margin: f64,
    /// Indices of the sampled items.
    pub sample: Vec<usize>,
    /// Positive verdicts within the sample.
    pub positives: usize,
}

/// Estimates the predicate count over `items` from a crowd-labeled sample.
pub fn crowd_count(
    cc: &CrowdContext,
    items: &[Value],
    cfg: &CrowdCountConfig,
) -> Result<CrowdCountResult> {
    let n = items.len();
    if n == 0 {
        return Ok(CrowdCountResult {
            estimate: 0.0,
            fraction: 0.0,
            margin: 0.0,
            sample: vec![],
            positives: 0,
        });
    }
    // Deterministic sample: order indices by seeded hash, take k.
    let k = cfg.sample_size.min(n).max(1);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| fnv1a(format!("{}/{i}", cfg.seed).as_bytes()));
    let mut sample: Vec<usize> = idx.into_iter().take(k).collect();
    sample.sort_unstable();

    let objects: Vec<Value> = sample.iter().map(|&i| items[i].clone()).collect();
    let cd = cc
        .crowddata(&cfg.experiment)?
        .data(objects)?
        .presenter(Presenter::image_label(&cfg.question, &["Yes", "No"]))?
        .publish(cfg.n_assignments)?
        .collect()?
        .majority_vote()?;
    let mv = cd.column("mv")?;
    let positives = mv.iter().filter(|v| **v == Value::String("Yes".into())).count();

    let fraction = positives as f64 / k as f64;
    // 95% normal-approximation CI with finite-population correction.
    let fpc = if n > 1 { ((n - k) as f64 / (n - 1) as f64).max(0.0) } else { 0.0 };
    let se = (fraction * (1.0 - fraction) / k as f64 * fpc).sqrt();
    let margin = 1.96 * se;
    Ok(CrowdCountResult {
        estimate: fraction * n as f64,
        fraction,
        margin,
        sample,
        positives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reprowd_core::val;

    fn items(n: usize, positive_every: usize) -> Vec<Value> {
        (0..n)
            .map(|i| {
                val!({
                    "id": i,
                    "_sim": {"kind": "label", "truth": if i % positive_every == 0 {0} else {1}, "labels": ["Yes", "No"], "difficulty": 0.0}
                })
            })
            .collect()
    }

    #[test]
    fn estimates_quarter_fraction() {
        let cc = CrowdContext::in_memory_sim(91);
        let mut cfg = CrowdCountConfig::new("count", "Positive?");
        cfg.sample_size = 60;
        let out = crowd_count(&cc, &items(200, 4), &cfg).unwrap();
        // True fraction 0.25; sample estimate within a loose band.
        assert!((out.fraction - 0.25).abs() < 0.15, "fraction {}", out.fraction);
        assert_eq!(out.sample.len(), 60);
        assert!(out.margin > 0.0);
    }

    #[test]
    fn full_census_when_sample_covers_population() {
        // Perfect workers so the census is exact.
        use reprowd_platform::{CrowdPlatform, SimPlatform};
        use std::sync::Arc;
        let platform: Arc<dyn CrowdPlatform> = Arc::new(SimPlatform::quick(5, 1.0, 92));
        let cc =
            CrowdContext::new(platform, Arc::new(reprowd_storage::MemoryStore::new())).unwrap();
        let mut cfg = CrowdCountConfig::new("census", "Positive?");
        cfg.sample_size = 1000;
        let out = crowd_count(&cc, &items(20, 2), &cfg).unwrap();
        assert_eq!(out.sample.len(), 20);
        assert_eq!(out.positives, 10);
        assert_eq!(out.estimate, 10.0);
        // Census: finite-population correction zeroes the margin.
        assert_eq!(out.margin, 0.0);
    }

    #[test]
    fn empty_population() {
        let cc = CrowdContext::in_memory_sim(93);
        let out = crowd_count(&cc, &[], &CrowdCountConfig::new("c0", "Q?")).unwrap();
        assert_eq!(out.estimate, 0.0);
        assert!(out.sample.is_empty());
    }

    #[test]
    fn sample_is_deterministic() {
        let pop = items(100, 3);
        let run = |seed: u64| {
            let cc = CrowdContext::in_memory_sim(94);
            let mut cfg = CrowdCountConfig::new("cdet", "Q?");
            cfg.seed = seed;
            cfg.sample_size = 10;
            crowd_count(&cc, &pop, &cfg).unwrap().sample
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
