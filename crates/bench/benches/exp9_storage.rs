//! E9 — the storage substrate: recovery time vs log size, the cost of
//! durability (fsync policy), and compaction gains. These are the numbers
//! behind the fault-recovery guarantee the paper delegates to SQLite.

use reprowd_bench::{banner, table, timed};
use reprowd_storage::{Backend, DiskStore, SyncPolicy};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reprowd-exp9-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    // A database is a file family (base + manifest + segments); clear it
    // all so reruns measure a genuinely fresh store.
    DiskStore::destroy(&p).unwrap();
    p
}

fn main() {
    banner("E9", "storage engine: recovery, durability cost, compaction", "the 'stored persistently in a database' substrate");

    // --- recovery time vs record count
    println!("log replay (crash recovery) speed:");
    let mut rows = Vec::new();
    for n in [10_000u64, 50_000, 200_000] {
        let path = tmp(&format!("recovery-{n}.rwlog"));
        {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            for i in 0..n {
                store
                    .set(format!("task/{i:08}").as_bytes(), format!("{{\"answer\":{i}}}").as_bytes())
                    .unwrap();
            }
            store.flush().unwrap();
        }
        let ((), ms) = timed(|| {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            assert_eq!(store.stats().live_keys as u64, n);
        });
        let bytes = std::fs::metadata(&path).unwrap().len();
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", bytes as f64 / 1e6),
            format!("{ms:.1}"),
            format!("{:.0}k", n as f64 / ms),
        ]);
    }
    table(&["records", "log MB", "replay ms", "records/ms"], &rows);

    // --- durability cost
    println!("\ndurability (fsync policy) cost, 2000 single-key writes:");
    let mut rows = Vec::new();
    for (name, policy, n) in [
        ("Never", SyncPolicy::Never, 2000u64),
        ("EveryN(64)", SyncPolicy::EveryN(64), 2000),
        ("Always", SyncPolicy::Always, 200), // fsync-per-write is slow; scale down
    ] {
        let path = tmp(&format!("sync-{name}.rwlog"));
        let store = DiskStore::open(&path, policy).unwrap();
        let ((), ms) = timed(|| {
            for i in 0..n {
                store.set(format!("k{i}").as_bytes(), b"v").unwrap();
            }
        });
        rows.push(vec![
            name.to_string(),
            n.to_string(),
            format!("{ms:.1}"),
            format!("{:.0}", n as f64 / (ms / 1e3)),
        ]);
    }
    table(&["policy", "writes", "wall ms", "writes/sec"], &rows);

    // --- compaction
    println!("\ncompaction (20 overwrite rounds of 5k keys):");
    let path = tmp("compact.rwlog");
    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    for round in 0..20 {
        for i in 0..5_000 {
            store.set(format!("key/{i}").as_bytes(), format!("round-{round}").as_bytes()).unwrap();
        }
    }
    let before = store.stats();
    let (saved, ms) = timed(|| store.compact().unwrap());
    let after = store.stats();
    table(
        &["", "log MB", "garbage ratio"],
        &[
            vec![
                "before".into(),
                format!("{:.1}", before.log_bytes as f64 / 1e6),
                format!("{:.2}", before.garbage_ratio),
            ],
            vec![
                "after".into(),
                format!("{:.1}", after.log_bytes as f64 / 1e6),
                format!("{:.2}", after.garbage_ratio),
            ],
        ],
    );
    println!("compaction reclaimed {:.1} MB in {ms:.1} ms", saved as f64 / 1e6);
}
