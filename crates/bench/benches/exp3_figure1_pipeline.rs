//! E3 — paper Figure 1: the full architecture exercised end to end.
//! Throughput of publish → simulate-crowd → collect → majority-vote, with
//! the in-memory backend and the durable on-disk backend.

use reprowd_bench::{banner, label_objects, table, timed};
use reprowd_core::context::CrowdContext;
use reprowd_core::presenter::Presenter;
use reprowd_platform::{CrowdPlatform, SimPlatform};
use reprowd_storage::SyncPolicy;
use std::sync::Arc;

fn main() {
    banner("E3", "end-to-end pipeline throughput", "Figure 1 (architecture)");
    let mut rows = Vec::new();
    for n in [100usize, 1000, 5000] {
        for backend in ["memory", "disk"] {
            let platform = Arc::new(SimPlatform::quick(9, 0.9, 3));
            let cc = match backend {
                "memory" => CrowdContext::new(
                    Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
                    Arc::new(reprowd_storage::MemoryStore::new()),
                )
                .unwrap(),
                _ => {
                    let path = std::env::temp_dir()
                        .join(format!("reprowd-exp3-{n}-{}.rwlog", std::process::id()));
                    let _ = std::fs::remove_file(&path);
                    CrowdContext::on_disk(
                        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
                        path,
                        SyncPolicy::Never,
                    )
                    .unwrap()
                }
            };
            let (cd, ms) = timed(|| {
                cc.crowddata("pipeline")
                    .unwrap()
                    .data(label_objects(n, 0.1))
                    .unwrap()
                    .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
                    .unwrap()
                    .publish(3)
                    .unwrap()
                    .collect()
                    .unwrap()
                    .majority_vote()
                    .unwrap()
            });
            let acc = reprowd_bench::label_accuracy(&cd.column("mv").unwrap());
            rows.push(vec![
                n.to_string(),
                backend.to_string(),
                format!("{ms:.1}"),
                format!("{:.0}", n as f64 / (ms / 1e3)),
                format!("{acc:.3}"),
            ]);
        }
    }
    table(&["tasks", "backend", "wall ms", "tasks/sec", "mv accuracy"], &rows);
    println!("\nNote: each task = 3 simulated task runs + durable task/result cells.");
}
