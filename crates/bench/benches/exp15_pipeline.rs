//! E15 — the pipelined execution engine: in-flight depth vs wall-clock on
//! a latency-bound platform, bit-identical results at every depth, and the
//! streaming operators' bounded-memory guarantee.
//!
//! What it pins:
//!
//! * **Latency overlap** — against a [`LatencyPlatform`] charging a fixed
//!   round-trip time per call, publish+collect at n=1000 with 4 batches in
//!   flight must be ≥ 2× faster end-to-end than the sequential depth-1
//!   engine (the smoke gate is relaxed for scheduler noise on tiny CI
//!   workloads). Round-trips overlap; their effects stay ordered.
//! * **Depth is a pure performance knob** — output columns are
//!   bit-identical, and the platform's API-call count and the client's
//!   round-trip metrics are unchanged, at every depth — for the classic
//!   path *and* the streamed operator path.
//! * **Bounded streaming memory** — `crowder_join` over 10⁴ records
//!   streams its machine-pass candidates into the crowd pass: the peak
//!   number of pairs resident in the pipeline stays bounded by the
//!   in-flight window (batch × depth), never by the candidate count — no
//!   O(n²) pair vector exists at any point.
//!
//! Writes `BENCH_E15.json` at the workspace root in full mode. Smoke mode
//! (`REPROWD_E15_SMOKE=1`, used by CI) shrinks the workload and relaxes
//! only the wall-clock ratio.

use reprowd_bench::{banner, label_objects, table, timed};
use reprowd_core::exec::ExecutionConfig;
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;
use reprowd_core::{CrowdContext, CrowdData};
use reprowd_datagen::{ErConfig, ErCorpus};
use reprowd_operators::join::crowder::{crowder_join, CrowdErConfig};
use reprowd_operators::pairwise_prf;
use reprowd_platform::{CrowdPlatform, LatencyPlatform, SimPlatform};
use reprowd_storage::MemoryStore;
use std::sync::Arc;
use std::time::Duration;

struct DepthRun {
    depth: usize,
    wall_ms: f64,
    api_calls: u64,
    round_trips: u64,
    speedup: f64,
}

fn latency_ctx(
    depth: usize,
    batch: usize,
    rtt: Duration,
    seed: u64,
) -> (CrowdContext, Arc<LatencyPlatform<SimPlatform>>) {
    let platform = Arc::new(LatencyPlatform::new(
        Arc::new(SimPlatform::quick(7, 0.9, seed)),
        rtt,
    ));
    let cc = CrowdContext::with_config(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
        ExecutionConfig::with_batch_size(batch).with_inflight_batches(depth),
    )
    .expect("latency context");
    (cc, platform)
}

fn publish_collect(cc: &CrowdContext, n: usize) -> CrowdData {
    cc.crowddata("e15")
        .unwrap()
        .data(label_objects(n, 0.1))
        .unwrap()
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap()
}

fn write_json(
    path: &str,
    mode: &str,
    n: usize,
    batch: usize,
    rtt_ms: u64,
    runs: &[DepthRun],
    join: &str,
) {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"E15 pipelined execution engine\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"workload\": {{\"rows\": {n}, \"batch_size\": {batch}, \"rtt_ms\": {rtt_ms}}},\n"
    ));
    out.push_str("  \"depth_sweep\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"inflight_batches\": {}, \"wall_ms\": {:.1}, \"api_calls\": {}, \
             \"wire_round_trips\": {}, \"speedup_vs_depth1\": {:.2}}}{}\n",
            r.depth,
            r.wall_ms,
            r.api_calls,
            r.round_trips,
            r.speedup,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"streamed_join\": {join}\n"));
    out.push_str("}\n");
    std::fs::write(path, out).expect("write BENCH_E15.json");
}

fn main() {
    let smoke = std::env::var_os("REPROWD_E15_SMOKE").is_some();
    let (n, batch, rtt_ms, join_records, min_speedup) = if smoke {
        (240usize, 30usize, 4u64, 1_200usize, 1.5f64)
    } else {
        (1_000, 100, 8, 10_000, 2.0)
    };
    let rtt = Duration::from_millis(rtt_ms);
    banner(
        "E15",
        &format!(
            "Pipelined execution: depth sweep at n={n}, batch {batch}, {rtt_ms}ms RTT; \
             streamed CrowdER at {join_records} records{}",
            if smoke { " (SMOKE)" } else { "" }
        ),
        "ROADMAP 'make the pipeline async' + 'streaming operators'",
    );

    // ---- Phase A: classic publish/collect, depth sweep under latency.
    let mut runs: Vec<DepthRun> = Vec::new();
    let mut rows = Vec::new();
    let mut baseline: Option<(Vec<Value>, Vec<Value>, String)> = None;
    for depth in [1usize, 2, 4, 8] {
        let (cc, platform) = latency_ctx(depth, batch, rtt, 42);
        let (cd, wall_ms) = timed(|| publish_collect(&cc, n));
        let result = cd.column("result").unwrap();
        let mv = cd.column("mv").unwrap();
        let metrics = format!("{:?}", cc.batch_metrics());
        match &baseline {
            None => baseline = Some((result, mv, metrics)),
            Some((r1, m1, me1)) => {
                assert_eq!(&result, r1, "depth {depth}: result column diverged");
                assert_eq!(&mv, m1, "depth {depth}: mv column diverged");
                assert_eq!(&metrics, me1, "depth {depth}: batch metrics diverged");
            }
        }
        let speedup = runs.first().map_or(1.0, |d1: &DepthRun| d1.wall_ms / wall_ms);
        runs.push(DepthRun {
            depth,
            wall_ms,
            api_calls: platform.api_calls(),
            round_trips: platform.round_trips(),
            speedup,
        });
        let r = runs.last().unwrap();
        rows.push(vec![
            depth.to_string(),
            format!("{:.0}", r.wall_ms),
            r.api_calls.to_string(),
            r.round_trips.to_string(),
            format!("{:.2}x", r.speedup),
            "true".to_string(),
        ]);
    }
    table(
        &["in-flight", "wall ms", "api calls", "wire RTs", "vs depth 1", "identical"],
        &rows,
    );
    assert!(
        runs.iter().all(|r| r.api_calls == runs[0].api_calls),
        "API-call counts must not depend on depth"
    );
    assert!(
        runs.iter().all(|r| r.round_trips == runs[0].round_trips),
        "wire round-trip counts must not depend on depth"
    );
    let depth4 = runs.iter().find(|r| r.depth == 4).expect("depth 4 ran");
    assert!(
        depth4.speedup >= min_speedup,
        "depth 4 must be >= {min_speedup}x faster than sequential under {rtt_ms}ms RTT \
         (got {:.2}x: {:.0}ms vs {:.0}ms)",
        depth4.speedup,
        runs[0].wall_ms,
        depth4.wall_ms
    );

    // ---- Phase B: streamed CrowdER join — bounded pair memory at scale.
    let corpus = ErCorpus::generate(&ErConfig {
        n_entities: join_records * 10 / 22, // ~2.2 duplicates per entity
        min_dups: 1,
        max_dups: 3,
        seed: 1515,
        ..ErConfig::default()
    });
    let records = corpus.texts();
    let truth = corpus.true_pairs();
    let entities = corpus.truth_clusters();
    let all_pairs = records.len() * (records.len() - 1) / 2;
    let decorate = {
        let entities = entities.clone();
        move |a: usize, b: usize, obj: &mut Value| {
            obj["_sim"] = serde_json::json!({
                "kind": "match",
                "is_match": entities[a] == entities[b],
                "ambiguity": 0.05,
            });
        }
    };
    let platform = Arc::new(SimPlatform::quick(7, 0.95, 66));
    let join_depth = 4usize;
    let cc = CrowdContext::with_config(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
        ExecutionConfig::with_batch_size(batch).with_inflight_batches(join_depth),
    )
    .unwrap();
    let mut cfg = CrowdErConfig::new("e15-er");
    cfg.threshold = 0.3;
    let (out, join_ms) = timed(|| crowder_join(&cc, &records, &cfg, &decorate).unwrap());
    let (p, r, f1) = pairwise_prf(&out.matched, &truth);
    // Claimed-but-uncommitted chunks are bounded by the worker pool plus
    // the reorder buffer: 2·depth chunks, plus the one being claimed.
    let window_bound = (2 * join_depth + 1) * batch;
    println!(
        "\nstreamed CrowdER: {} records, {} candidate pairs ({:.3}% of {} total), \
         {} crowd-reviewed, peak {} pairs in flight (bound {}), P/R/F1 = \
         {p:.3}/{r:.3}/{f1:.3}, {join_ms:.0} ms",
        records.len(),
        out.n_candidates,
        100.0 * out.n_candidates as f64 / all_pairs as f64,
        all_pairs,
        out.n_crowd_reviewed,
        out.peak_inflight_pairs,
        window_bound,
    );
    assert!(
        out.peak_inflight_pairs <= window_bound,
        "peak resident pairs {} exceeded the in-flight window bound {} — \
         the join is materializing candidates again",
        out.peak_inflight_pairs,
        window_bound
    );
    assert!(
        out.n_candidates < all_pairs / 10,
        "machine pass pruned almost nothing ({} of {all_pairs})",
        out.n_candidates
    );
    assert!(f1 > 0.8, "streamed join quality collapsed: F1 {f1:.3}");

    // ---- Phase C: streamed operators are depth-invariant too.
    let small: Vec<String> = records.iter().take(400.min(records.len())).cloned().collect();
    let run_at = |depth: usize| {
        let platform = Arc::new(SimPlatform::quick(7, 0.95, 77));
        let cc = CrowdContext::with_config(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            Arc::new(MemoryStore::new()),
            ExecutionConfig::with_batch_size(25).with_inflight_batches(depth),
        )
        .unwrap();
        let mut cfg = CrowdErConfig::new("e15-depth");
        cfg.threshold = 0.3;
        let out = crowder_join(&cc, &small, &cfg, &decorate).unwrap();
        (out.matched, out.n_crowd_reviewed, platform.api_calls())
    };
    let sequential = run_at(1);
    for depth in [2usize, 4, 8] {
        assert_eq!(
            run_at(depth),
            sequential,
            "streamed join at depth {depth} diverged from sequential"
        );
    }
    println!(
        "streamed join depth sweep: identical matches and API calls at depths 1/2/4/8"
    );

    let join_json = format!(
        "{{\"records\": {}, \"candidates\": {}, \"crowd_reviewed\": {}, \
         \"peak_inflight_pairs\": {}, \"window_bound\": {}, \"f1\": {:.3}, \
         \"wall_ms\": {:.0}}}",
        records.len(),
        out.n_candidates,
        out.n_crowd_reviewed,
        out.peak_inflight_pairs,
        window_bound,
        f1,
        join_ms
    );
    if smoke {
        println!(
            "\nPASS (smoke): {:.2}x at depth 4 (>= {min_speedup}x), identical columns, \
             bounded streaming memory. JSON not rewritten.",
            depth4.speedup
        );
    } else {
        let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E15.json");
        write_json(json_path, "full", n, batch, rtt_ms, &runs, &join_json);
        println!(
            "\nPASS: {:.2}x at depth 4 (>= {min_speedup}x), identical columns and call \
             counts at every depth, bounded streaming memory; results recorded to \
             BENCH_E15.json",
            depth4.speedup
        );
    }
}
