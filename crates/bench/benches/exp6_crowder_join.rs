//! E6 — CrowdER (Wang et al., PVLDB 2012): crowd cost vs result quality
//! across the machine-pass similarity threshold, on a synthetic restaurant
//! corpus. The shape to reproduce: lowering θ raises recall (and crowd
//! cost); raising θ prunes cost but loses matches; precision stays high
//! throughout because the crowd verifies every surviving pair.

use reprowd_bench::{banner, sim_context, table};
use reprowd_core::value::Value;
use reprowd_datagen::{ErConfig, ErCorpus};
use reprowd_operators::join::crowder::{crowder_join, CrowdErConfig};
use reprowd_operators::pairwise_prf;

fn main() {
    banner("E6", "CrowdER hybrid join: cost/quality vs similarity threshold", "Wang et al. 2012 (re-implemented per the paper)");
    let corpus = ErCorpus::generate(&ErConfig {
        n_entities: 80,
        min_dups: 1,
        max_dups: 3,
        seed: 606,
        ..ErConfig::default()
    });
    let records = corpus.texts();
    let truth = corpus.true_pairs();
    let entities = corpus.truth_clusters();
    let all_pairs = records.len() * (records.len() - 1) / 2;
    println!(
        "corpus: {} records, {} entities, {} true pairs, {} total pairs\n",
        records.len(),
        corpus.n_entities,
        truth.len(),
        all_pairs
    );

    let mut rows = Vec::new();
    for (i, threshold) in [0.1f64, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
        .into_iter()
        .enumerate()
    {
        let (cc, _) = sim_context(7, 0.95, 66);
        let ents = entities.clone();
        let decorate = move |a: usize, b: usize, obj: &mut Value| {
            obj["_sim"] = serde_json::json!({
                "kind": "match",
                "is_match": ents[a] == ents[b],
                "ambiguity": 0.1,
            });
        };
        let mut cfg = CrowdErConfig::new(&format!("er-{i}"));
        cfg.threshold = threshold;
        let out = crowder_join(&cc, &records, &cfg, decorate).unwrap();
        let (p, r, f1) = pairwise_prf(&out.matched, &truth);
        rows.push(vec![
            format!("{threshold:.1}"),
            out.n_candidates.to_string(),
            out.stats.tasks_published.to_string(),
            format!("{:.2}%", 100.0 * out.n_candidates as f64 / all_pairs as f64),
            format!("{p:.3}"),
            format!("{r:.3}"),
            format!("{f1:.3}"),
        ]);
    }
    table(
        &["θ", "candidate pairs", "crowd tasks", "of all pairs", "precision", "recall", "F1"],
        &rows,
    );
    println!("\nShape: cost falls monotonically with θ; recall decays past the noise level;\nprecision stays near 1 because the crowd screens every candidate.");
}
