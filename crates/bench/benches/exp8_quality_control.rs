//! E8 — quality control, SQUARE-style (Sheshadri & Lease 2013, cited by the
//! paper): MV vs weighted MV (gold-calibrated) vs one-coin EM vs
//! Dawid–Skene, across redundancy levels and worker-pool mixes.

use reprowd_bench::{banner, label_objects, pool_context, table};
use reprowd_core::presenter::Presenter;
use reprowd_platform::WorkerPool;
use reprowd_quality::{
    majority_vote_matrix, weighted_majority_vote_matrix, DawidSkene, DsConfig, GoldCalibration,
    OneCoin, OneCoinConfig, TiePolicy,
};

const N_ITEMS: usize = 300;

fn accuracy(labels: &[Option<usize>], space_yes_first: bool) -> f64 {
    // truth[i] = i % 2 where label 0 = "Yes" (index 0) when space_yes_first.
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(i, l)| {
            let truth = i % 2;
            let truth_idx = if space_yes_first { truth } else { 1 - truth };
            **l == Some(truth_idx)
        })
        .count();
    correct as f64 / labels.len() as f64
}

fn main() {
    banner("E8", "label aggregation: accuracy vs redundancy and worker mix", "SQUARE-style benchmark (Sheshadri & Lease 2013, cited)");
    let pools: Vec<(&str, WorkerPool)> = vec![
        ("9 average workers", WorkerPool::mixture(0, 9, 0, 1)),
        ("3 experts + 6 spammers", WorkerPool::mixture(3, 0, 6, 2)),
        ("2 good + 7 yes-biased", WorkerPool::uniform(2, 0.9).with_biased(7, 0, 0.75, 0.7)),
    ];

    let mut rows = Vec::new();
    for (pool_name, pool) in pools {
        for redundancy in [1u32, 3, 5, 7, 9] {
            let (cc, _) = pool_context(pool.clone(), redundancy as u64 * 31);
            let cd = cc
                .crowddata("qc")
                .unwrap()
                .data(label_objects(N_ITEMS, 0.25))
                .unwrap()
                .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
                .unwrap()
                .publish(redundancy)
                .unwrap()
                .collect()
                .unwrap();
            let (matrix, _space) = cd.vote_matrix().unwrap();

            let mv = majority_vote_matrix(&matrix, TiePolicy::LowestLabel);
            let em = OneCoin::fit(&matrix, &OneCoinConfig::default()).labels(&matrix);
            let ds = DawidSkene::fit(&matrix, &DsConfig::default()).labels(&matrix);
            // Gold-calibrated weighted MV: first 10% of items are gold.
            let gold: std::collections::HashMap<usize, usize> =
                (0..N_ITEMS / 10).map(|i| (i, i % 2)).collect();
            let cal = GoldCalibration::from_gold(&matrix, &gold, 1.0);
            let wmv = weighted_majority_vote_matrix(
                &matrix,
                &cal.log_odds_weights(),
                0.0,
                TiePolicy::LowestLabel,
            );

            rows.push(vec![
                pool_name.to_string(),
                redundancy.to_string(),
                format!("{:.3}", accuracy(&mv, true)),
                format!("{:.3}", accuracy(&wmv, true)),
                format!("{:.3}", accuracy(&em, true)),
                format!("{:.3}", accuracy(&ds, true)),
            ]);
        }
    }
    table(&["worker pool", "redundancy", "MV", "gold-WMV", "one-coin EM", "Dawid-Skene"], &rows);
    println!("\nShape: with homogeneous honest workers all methods converge as redundancy\ngrows; spammer-heavy and biased pools separate the methods — EM/DS recover\naccuracy that MV cannot, and gold calibration rescues weighted MV.");
}
