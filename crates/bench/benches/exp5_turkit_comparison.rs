//! E5 — the TurKit comparison: order-keyed (crash-and-rerun) memoization vs
//! CrowdData's content-keyed cache, under the code edits the paper calls
//! out ("swapped the order of two functions or added a new function
//! between them").
//!
//! Items `0..N` were crowdsourced in a first run. A rerun then processes
//! the items in an edited order (identity / adjacent swaps / a brand-new
//! item inserted at the front). For each position we check whether the
//! value handed back is the *right* answer for that item, a silently wrong
//! one, or a fresh (re-paid) execution.

use reprowd_bench::{banner, label_objects, sim_context, table};
use reprowd_core::presenter::Presenter;
use reprowd_core::turkit::CrashAndRerun;
use reprowd_core::value::Value;
use reprowd_storage::{Backend, MemoryStore};
use std::sync::Arc;

const N: usize = 100;

/// TurKit model. Items are identified by id; the first run memoizes
/// `answer-i` for items `0..N` in order. The rerun walks `order` (which may
/// reference the new item id `N`).
fn turkit_rerun(order: &[usize]) -> (usize, usize, usize) {
    let be: Arc<dyn Backend> = Arc::new(MemoryStore::new());
    {
        let tk = CrashAndRerun::new(Arc::clone(&be), "script").unwrap();
        for i in 0..N {
            tk.once(|| Ok(serde_json::json!(format!("answer-{i}")))).unwrap();
        }
    }
    let tk = CrashAndRerun::new(be, "script").unwrap();
    let (mut correct, mut wrong, mut reexec) = (0, 0, 0);
    for &i in order {
        let v = tk.once(|| Ok(serde_json::json!("FRESH"))).unwrap();
        match v.as_str() {
            Some("FRESH") => reexec += 1,
            Some(s) if s == format!("answer-{i}") => correct += 1,
            _ => wrong += 1,
        }
    }
    (correct, wrong, reexec)
}

/// CrowdData model: rerun the experiment with objects presented in `order`
/// (index `N` = the newly inserted object).
fn crowddata_rerun(order: &[usize]) -> (usize, usize, usize) {
    let (cc, _) = sim_context(7, 1.0, 5);
    let objects = label_objects(N + 1, 0.0);
    let presenter = Presenter::image_label("Q?", &["Yes", "No"]);
    let baseline = cc
        .crowddata("exp")
        .unwrap()
        .data(objects[..N].to_vec())
        .unwrap()
        .presenter(presenter.clone())
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap();
    let truth: Vec<Value> = baseline.column("mv").unwrap();

    let reordered: Vec<Value> = order.iter().map(|&i| objects[i].clone()).collect();
    let cd = cc
        .crowddata("exp")
        .unwrap()
        .data(reordered)
        .unwrap()
        .presenter(presenter)
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap();
    let got = cd.column("mv").unwrap();
    let (mut correct, mut wrong) = (0, 0);
    for (pos, &i) in order.iter().enumerate() {
        if i < N {
            if got[pos] == truth[i] {
                correct += 1;
            } else {
                wrong += 1;
            }
        }
    }
    (correct, wrong, cd.run_stats().tasks_published as usize)
}

fn main() {
    banner(
        "E5",
        "cache behaviour under code edits: TurKit (order-keyed) vs Reprowd (content-keyed)",
        "the paper's TurKit critique (introduction)",
    );
    let identity: Vec<usize> = (0..N).collect();
    let swapped: Vec<usize> = {
        let mut v = identity.clone();
        for c in v.chunks_mut(2) {
            if c.len() == 2 {
                c.swap(0, 1);
            }
        }
        v
    };
    let inserted: Vec<usize> = {
        let mut v = vec![N];
        v.extend(0..N);
        v
    };

    let mut rows = Vec::new();
    for (edit, order) in [
        ("none", &identity),
        ("swap adjacent steps", &swapped),
        ("insert new step at front", &inserted),
    ] {
        let (tc, tw, tr) = turkit_rerun(order);
        rows.push(vec!["TurKit".into(), edit.into(), tc.to_string(), tw.to_string(), tr.to_string()]);
        let (rc, rw, rr) = crowddata_rerun(order);
        rows.push(vec!["Reprowd".into(), edit.into(), rc.to_string(), rw.to_string(), rr.to_string()]);
    }
    table(
        &["system", "code edit", "correct reuse", "SILENT WRONG reuse", "re-executed"],
        &rows,
    );
    // The load-bearing assertions of the paper's argument:
    let (_, tw_swap, _) = turkit_rerun(&swapped);
    let (rc_swap, rw_swap, rr_swap) = crowddata_rerun(&swapped);
    assert!(tw_swap == N, "TurKit must silently cross answers on swap");
    assert!(rc_swap == N && rw_swap == 0 && rr_swap == 0, "Reprowd must survive the swap");
    println!(
        "\nPASS: TurKit silently returns wrong answers after a swap and wastes crowd\n\
         work after an insert; Reprowd reuses every cell correctly under both edits."
    );
}
