//! E1 — paper Figure 2: Bob's five-step experiment, plus the sharable
//! claim: a rerun issues **zero** platform calls and reproduces the result
//! bit-for-bit, at every scale.

use reprowd_bench::{banner, label_objects, sim_context, table, timed};
use reprowd_core::presenter::Presenter;
use reprowd_platform::CrowdPlatform;

fn main() {
    banner(
        "E1",
        "Bob's experiment (label images, 3 assignments, majority vote)",
        "Figure 2 + the 'sharable' requirement",
    );
    let mut rows = Vec::new();
    for n in [3usize, 100, 1000] {
        let (cc, platform) = sim_context(7, 0.9, 42);
        let run = || {
            cc.crowddata("bob")
                .unwrap()
                .data(label_objects(n, 0.1))
                .unwrap()
                .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
                .unwrap()
                .publish(3)
                .unwrap()
                .collect()
                .unwrap()
                .majority_vote()
                .unwrap()
        };
        let (first, fresh_ms) = timed(run);
        let calls_fresh = platform.api_calls();
        let (second, rerun_ms) = timed(run);
        let calls_rerun = platform.api_calls() - calls_fresh;
        let identical = first.column("mv").unwrap() == second.column("mv").unwrap()
            && first.column("result").unwrap() == second.column("result").unwrap();
        rows.push(vec![
            n.to_string(),
            calls_fresh.to_string(),
            format!("{fresh_ms:.1}"),
            calls_rerun.to_string(),
            format!("{rerun_ms:.1}"),
            identical.to_string(),
        ]);
        assert_eq!(calls_rerun, 0, "rerun must be platform-free");
        assert!(identical, "rerun must reproduce exactly");
    }
    table(
        &["images", "fresh api calls", "fresh ms", "rerun api calls", "rerun ms", "identical"],
        &rows,
    );
    println!("\nPASS: reruns are free and bit-identical at every scale.");
}
