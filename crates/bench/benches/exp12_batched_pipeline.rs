//! E12 — the batched publish/collect pipeline: round-trip counts stop
//! scaling linearly in rows, results stay bit-identical at every batch
//! size, and the ISSUE's acceptance bound holds (n=1000 with batch size
//! 100 issues ≤ 5% of the per-row path's platform calls).

use reprowd_bench::{banner, label_objects, table, timed};
use reprowd_core::exec::ExecutionConfig;
use reprowd_core::presenter::Presenter;
use reprowd_core::{CrowdContext, CrowdData};
use reprowd_platform::{CrowdPlatform, SimPlatform};
use reprowd_storage::MemoryStore;
use std::sync::Arc;

fn batched_context(batch_size: usize, seed: u64) -> (CrowdContext, Arc<SimPlatform>) {
    let platform = Arc::new(SimPlatform::quick(7, 0.9, seed));
    let cc = CrowdContext::with_config(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
        ExecutionConfig::with_batch_size(batch_size),
    )
    .expect("batched context");
    (cc, platform)
}

fn run(cc: &CrowdContext, n: usize) -> CrowdData {
    cc.crowddata("e12")
        .unwrap()
        .data(label_objects(n, 0.1))
        .unwrap()
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap()
}

fn main() {
    banner(
        "E12",
        "Batched publish/collect (n=1000, batch size sweep)",
        "ROADMAP 'Async batched publish/collect' — round-trips stop scaling in rows",
    );
    let n = 1000;

    // Reference: the per-row pipeline (batch size 1 reproduces it exactly).
    let (cc_row, p_row) = batched_context(1, 42);
    let (baseline, row_ms) = timed(|| run(&cc_row, n));
    let row_calls = p_row.api_calls();

    let mut rows = Vec::new();
    rows.push(vec![
        "1 (per-row)".to_string(),
        row_calls.to_string(),
        format!("{:.1}", cc_row.batch_metrics().rows_per_publish_call()),
        format!("{row_ms:.1}"),
        "100.0%".to_string(),
        "-".to_string(),
    ]);

    for batch in [10usize, 100, 1000] {
        let (cc, platform) = batched_context(batch, 42);
        let (cd, ms) = timed(|| run(&cc, n));
        let calls = platform.api_calls();
        let m = cc.batch_metrics();
        let identical = cd.column("result").unwrap() == baseline.column("result").unwrap()
            && cd.column("mv").unwrap() == baseline.column("mv").unwrap();
        rows.push(vec![
            batch.to_string(),
            calls.to_string(),
            format!("{:.1}", m.rows_per_publish_call()),
            format!("{ms:.1}"),
            format!("{:.1}%", 100.0 * calls as f64 / row_calls as f64),
            identical.to_string(),
        ]);
        assert!(identical, "batch size {batch} must reproduce per-row results bit-for-bit");
        assert_eq!(
            m.round_trips(),
            2 * (n as u64).div_ceil(batch as u64),
            "batch size {batch}: round-trips must be 2·⌈n/batch⌉"
        );
        if batch == 100 {
            // The acceptance criterion: ≤ 5% of the per-row path's calls.
            assert!(
                (calls as f64) <= 0.05 * row_calls as f64,
                "batch 100 must issue ≤5% of per-row calls ({calls} vs {row_calls})"
            );
        }
    }

    table(
        &["batch size", "api calls", "rows/publish call", "ms", "calls vs per-row", "identical"],
        &rows,
    );
    println!("\nPASS: ≤5% of per-row calls at batch 100; identical columns at every size.");
}
