//! E13 — sharded-simulator throughput: a shard-count sweep over a large
//! crowd (10^5 tasks, 10^4 workers, redundancy 3) measuring events/sec.
//!
//! What it pins, beyond the table:
//!
//! * **Determinism** — every configuration is run twice; identical
//!   `(seed, shard_count)` must produce bit-identical runs.
//! * **No quadratic hot path** — single-shard events/sec must not collapse
//!   as the open-task list grows 10× (the pre-shard engine cloned and
//!   scanned the whole open list per event, so its per-event cost scaled
//!   with n; the indexed queue + per-worker cursors make it O(1)).
//! * **Parallel speedup** — on hosts with ≥ 8 cores, 8 shards must clear
//!   ≥ 4× the events/sec of 1 shard (skipped elsewhere: shards can't beat
//!   physics on a single core).
//!
//! Writes `BENCH_E13.json` at the workspace root so the perf trajectory is
//! tracked across PRs. Smoke mode (`REPROWD_E13_SMOKE=1`, used by CI)
//! shrinks the world and skips nothing else.

use reprowd_bench::{banner, table, timed};
use reprowd_platform::{AnswerModel, CrowdPlatform, SimPlatform, TaskId, TaskSpec};

struct Run {
    shards: usize,
    tasks: usize,
    workers: usize,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    digest: u64,
}

fn specs(n: usize, redundancy: u32) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| {
            let model = AnswerModel::Label {
                truth: i % 2,
                labels: vec!["Yes".into(), "No".into()],
                difficulty: 0.1,
            };
            TaskSpec {
                payload: model.embed(serde_json::json!({ "url": format!("img{i}.jpg") })),
                n_assignments: redundancy,
            }
        })
        .collect()
}

/// FNV-1a over every run of every task — a stable fingerprint of the whole
/// observable outcome.
fn digest(p: &SimPlatform, ids: &[TaskId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for runs in p.fetch_runs_bulk(ids).expect("runs") {
        for r in runs {
            for b in serde_json::to_string(&r).expect("serializes").bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

fn drive(tasks: usize, workers: usize, shards: usize, seed: u64) -> Run {
    let p = SimPlatform::sharded(workers, 0.9, seed, shards);
    let proj = p.create_project("e13").expect("project");
    let ids: Vec<TaskId> = p
        .publish_tasks(proj, specs(tasks, 3))
        .expect("publish")
        .iter()
        .map(|t| t.id)
        .collect();
    let (_, wall_ms) = timed(|| p.run_until_complete(&ids).expect("complete"));
    let events = p.events();
    Run {
        shards,
        tasks,
        workers,
        wall_ms,
        events,
        events_per_sec: events as f64 / (wall_ms / 1e3),
        digest: digest(&p, &ids),
    }
}

fn write_json(path: &str, mode: &str, cores: usize, rows: &[Run]) {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"E13 sharded simulator throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"tasks\": {}, \"workers\": {}, \
             \"wall_ms\": {:.1}, \"events\": {}, \"events_per_sec\": {:.0}}}{}\n",
            r.shards,
            r.tasks,
            r.workers,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_E13.json");
}

fn main() {
    let smoke = std::env::var_os("REPROWD_E13_SMOKE").is_some();
    let (tasks, workers, sweep): (usize, usize, &[usize]) = if smoke {
        (2_000, 200, &[1, 4])
    } else {
        (100_000, 10_000, &[1, 2, 4, 8])
    };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    banner(
        "E13",
        &format!(
            "Sharded simulator throughput (n={tasks} tasks, {workers} workers, \
             shard sweep, {cores}-core host{})",
            if smoke { ", SMOKE" } else { "" }
        ),
        "ROADMAP 'Sharded sim platform' — all cores, determinism per (seed, shard)",
    );

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &shards in sweep {
        let run = drive(tasks, workers, shards, 42);
        let rerun = drive(tasks, workers, shards, 42);
        assert_eq!(
            run.digest, rerun.digest,
            "shards={shards}: identical (seed, shard_count) must be bit-identical"
        );
        assert_eq!(run.events, rerun.events);
        rows.push(vec![
            shards.to_string(),
            format!("{:.0}", run.wall_ms),
            run.events.to_string(),
            format!("{:.0}", run.events_per_sec),
            format!("{:.2}x", run.events_per_sec / results.first().map_or(run.events_per_sec, |r: &Run| r.events_per_sec)),
            format!("{:#018x}", run.digest),
        ]);
        results.push(run);
    }
    table(
        &["shards", "wall ms", "events", "events/sec", "vs 1 shard", "digest"],
        &rows,
    );

    // Quadratic detector: grow the single-shard world 10× and demand
    // events/sec stays within 3× — an O(open) per-event engine degrades
    // ~10× here instead.
    let small = drive(tasks / 10, workers, 1, 42);
    let big = &results[0];
    let ratio = small.events_per_sec / big.events_per_sec;
    println!(
        "\nsingle-shard scaling: {:.0} ev/s at n={} vs {:.0} ev/s at n={} ({ratio:.2}x)",
        small.events_per_sec, small.tasks, big.events_per_sec, big.tasks
    );
    assert!(
        ratio < 3.0,
        "single-shard throughput collapsed {ratio:.1}x when the world grew 10x — \
         the per-event hot path is scanning the open-task list again"
    );

    if let Some(r8) = results.iter().find(|r| r.shards == 8) {
        let speedup = r8.events_per_sec / results[0].events_per_sec;
        if cores >= 8 {
            assert!(
                speedup >= 4.0,
                "8 shards on an {cores}-core host must clear 4x one shard (got {speedup:.2}x)"
            );
            println!("PASS: {speedup:.2}x at 8 shards (>= 4x required on {cores} cores)");
        } else {
            println!(
                "NOTE: {speedup:.2}x at 8 shards; 4x gate skipped on a {cores}-core host"
            );
        }
    }

    if smoke {
        println!("\nPASS (smoke): bit-identical reruns; no O(n) hot path. JSON not rewritten.");
    } else {
        let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E13.json");
        write_json(json_path, "full", cores, &results);
        println!(
            "\nPASS: bit-identical reruns at every shard count; no O(n) hot path; \
             results recorded to BENCH_E13.json"
        );
    }
}
