//! E2 — paper Figure 3: Ally examines Bob's experiment. She (a) extends it
//! — only the delta is crowdsourced — and (b) queries the lineage of every
//! answer (publish times, worker ids).

use reprowd_bench::{banner, label_objects, sim_context, table};
use reprowd_core::presenter::Presenter;
use reprowd_platform::CrowdPlatform;

fn main() {
    banner(
        "E2",
        "Ally extends Bob's experiment and examines lineage",
        "Figure 3 + the 'examinable' requirement",
    );
    let (cc, platform) = sim_context(7, 0.9, 7);
    let presenter = Presenter::image_label("Is this a cat?", &["Yes", "No"]);

    // Bob: 3 images.
    let _bob = cc
        .crowddata("label-images")
        .unwrap()
        .data(label_objects(3, 0.1))
        .unwrap()
        .presenter(presenter.clone())
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap();
    let calls_bob = platform.api_calls();

    // Ally: same experiment, extended to 6 images.
    let ally = cc
        .crowddata("label-images")
        .unwrap()
        .data(label_objects(6, 0.1))
        .unwrap()
        .presenter(presenter)
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap();
    let delta_calls = platform.api_calls() - calls_bob;
    let s = ally.run_stats();
    println!(
        "Ally's extension: reused {} rows, published {} new (platform calls for the delta: {delta_calls})\n",
        s.tasks_reused, s.tasks_published
    );
    assert_eq!(s.tasks_reused, 3);
    assert_eq!(s.tasks_published, 3);

    // Figure 3 lines 11-16: lineage of every answer.
    let mut rows = Vec::new();
    for i in 0..ally.len() {
        let task_lin = ally.lineage(i, "task").unwrap();
        let mv_lin = ally.lineage(i, "mv").unwrap();
        let output = match &mv_lin.derivation {
            reprowd_core::Derivation::Aggregated { output, .. } => output.to_string(),
            _ => "?".into(),
        };
        rows.push(vec![
            i.to_string(),
            task_lin.published_at().unwrap_or_default().to_string(),
            format!("{:?}", mv_lin.workers()),
            output,
        ]);
        assert!(!mv_lin.workers().is_empty(), "every answer traceable to workers");
    }
    table(&["row", "published at (ms)", "workers", "mv"], &rows);
    println!("\nPASS: only the delta was crowdsourced; every answer is fully traceable.");
}
