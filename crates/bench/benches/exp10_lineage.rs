//! E10 — examinability at scale: lineage query latency as the experiment
//! grows. The paper's Figure 3 loop must stay interactive even for large
//! experiments.

use reprowd_bench::{banner, label_objects, sim_context, table, timed};
use reprowd_core::presenter::Presenter;

fn main() {
    banner("E10", "lineage query latency vs experiment size", "the 'examinable' requirement at scale");
    let mut rows = Vec::new();
    for n in [100usize, 1000, 5000] {
        let (cc, _) = sim_context(9, 0.9, 10);
        let cd = cc
            .crowddata("lineage")
            .unwrap()
            .data(label_objects(n, 0.1))
            .unwrap()
            .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
            .unwrap()
            .publish(3)
            .unwrap()
            .collect()
            .unwrap()
            .majority_vote()
            .unwrap();

        // Single-cell lineage (point query).
        let (lin, single_ms) = timed(|| cd.lineage(n / 2, "mv").unwrap());
        assert_eq!(lin.workers().len(), 3);

        // Whole-column lineage (the Figure 3 loop).
        let (lins, column_ms) = timed(|| cd.column_lineage("result").unwrap());
        assert_eq!(lins.len(), n);
        let traceable = lins.iter().filter(|l| !l.workers().is_empty()).count();
        assert_eq!(traceable, n, "every answer must be traceable");

        rows.push(vec![
            n.to_string(),
            (n * 3).to_string(),
            format!("{:.3}", single_ms),
            format!("{:.1}", column_ms),
            format!("{:.1}", column_ms * 1e3 / n as f64),
            format!("{traceable}/{n}"),
        ]);
    }
    table(
        &["rows", "answers", "point query ms", "full column ms", "µs/row", "traceable"],
        &rows,
    );
    println!("\nShape: lineage is O(1) per cell; the full-experiment audit stays in\nmilliseconds at thousands of answers.");
}
