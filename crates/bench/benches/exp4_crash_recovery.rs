//! E4 — the sharable claim under crashes: kill the client at k% of the
//! publish/collect work, rerun, and verify (a) completion, (b) work
//! conservation (each task published exactly once across crash + rerun),
//! (c) rerun cost proportional to the remaining work only.

use reprowd_bench::{banner, label_objects, table};
use reprowd_core::context::CrowdContext;
use reprowd_core::exec::ExecutionConfig;
use reprowd_core::presenter::Presenter;
use reprowd_platform::{CrowdPlatform, FailingPlatform, SimPlatform};
use reprowd_storage::MemoryStore;
use std::sync::Arc;

const N_TASKS: usize = 200;
const BATCH: usize = 10;

fn run(cc: &CrowdContext) -> reprowd_core::Result<reprowd_core::CrowdData> {
    cc.crowddata("crash")?
        .data(label_objects(N_TASKS, 0.1))?
        .presenter(Presenter::image_label("Q?", &["Yes", "No"]))?
        .publish(3)?
        .collect()?
        .majority_vote()
}

fn main() {
    banner("E4", "crash-and-rerun recovery cost", "'rerunning the program is as if it has never crashed'");
    // A full run in batches of 10 needs 1 project + 20 bulk publishes +
    // 20 bulk fetches = 41 platform round-trips.
    let full_calls = 1 + 2 * (N_TASKS / BATCH) as u64;
    let mut rows = Vec::new();
    for pct in [10u64, 25, 50, 75, 90] {
        let budget = full_calls * pct / 100;
        let inner = Arc::new(SimPlatform::quick(7, 0.9, pct));
        let failing = Arc::new(FailingPlatform::new(Arc::clone(&inner), budget));
        let cc = CrowdContext::with_config(
            Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
            Arc::new(MemoryStore::new()),
            ExecutionConfig::with_batch_size(BATCH),
        )
        .unwrap();
        let crashed = run(&cc);
        assert!(
            crashed.as_ref().err().map(|e| e.is_injected_fault()).unwrap_or(false),
            "crash at {pct}% must be the injected fault"
        );
        let calls_at_crash = inner.api_calls();

        failing.reset_budget(u64::MAX);
        let cd = run(&cc).unwrap();
        let s = cd.run_stats();
        let rerun_calls = inner.api_calls() - calls_at_crash;
        assert_eq!(s.tasks_reused + s.tasks_published, N_TASKS as u64);
        assert_eq!(inner.api_calls(), full_calls, "work conservation violated");
        rows.push(vec![
            format!("{pct}%"),
            calls_at_crash.to_string(),
            s.tasks_reused.to_string(),
            s.tasks_published.to_string(),
            rerun_calls.to_string(),
            (s.tasks_reused + s.tasks_published).to_string(),
        ]);
    }
    table(
        &["crash at", "calls before crash", "rows reused", "rows published on rerun", "rerun calls", "total rows"],
        &rows,
    );
    println!(
        "\nPASS: crashes land between batches; total platform round-trips across \
         crash+rerun always equal one clean run ({full_calls})."
    );
}
