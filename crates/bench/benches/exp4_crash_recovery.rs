//! E4 — the sharable claim under crashes: kill the client at k% of the
//! publish/collect work, rerun, and verify (a) completion, (b) work
//! conservation (each task published exactly once across crash + rerun),
//! (c) rerun cost proportional to the remaining work only.

use reprowd_bench::{banner, label_objects, table};
use reprowd_core::context::CrowdContext;
use reprowd_core::presenter::Presenter;
use reprowd_platform::{CrowdPlatform, FailingPlatform, SimPlatform};
use reprowd_storage::MemoryStore;
use std::sync::Arc;

const N_TASKS: usize = 200;

fn run(cc: &CrowdContext) -> reprowd_core::Result<reprowd_core::CrowdData> {
    cc.crowddata("crash")?
        .data(label_objects(N_TASKS, 0.1))?
        .presenter(Presenter::image_label("Q?", &["Yes", "No"]))?
        .publish(3)?
        .collect()?
        .majority_vote()
}

fn main() {
    banner("E4", "crash-and-rerun recovery cost", "'rerunning the program is as if it has never crashed'");
    // A full run needs 1 project + 200 publishes + 200 fetches = 401 calls.
    let full_calls = 401u64;
    let mut rows = Vec::new();
    for pct in [10u64, 25, 50, 75, 90] {
        let budget = full_calls * pct / 100;
        let inner = Arc::new(SimPlatform::quick(7, 0.9, pct));
        let failing = Arc::new(FailingPlatform::new(Arc::clone(&inner), budget));
        let cc = CrowdContext::new(
            Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
            Arc::new(MemoryStore::new()),
        )
        .unwrap();
        let crashed = run(&cc);
        assert!(
            crashed.as_ref().err().map(|e| e.is_injected_fault()).unwrap_or(false),
            "crash at {pct}% must be the injected fault"
        );
        let calls_at_crash = inner.api_calls();

        failing.reset_budget(u64::MAX);
        let cd = run(&cc).unwrap();
        let s = cd.run_stats();
        let rerun_calls = inner.api_calls() - calls_at_crash;
        assert_eq!(s.tasks_reused + s.tasks_published, N_TASKS as u64);
        assert_eq!(inner.api_calls(), full_calls, "work conservation violated");
        rows.push(vec![
            format!("{pct}%"),
            calls_at_crash.to_string(),
            s.tasks_reused.to_string(),
            s.tasks_published.to_string(),
            rerun_calls.to_string(),
            (s.tasks_reused + s.tasks_published).to_string(),
        ]);
    }
    table(
        &["crash at", "calls before crash", "rows reused", "rows published on rerun", "rerun calls", "total rows"],
        &rows,
    );
    println!("\nPASS: total platform calls across crash+rerun always equal one clean run ({full_calls}).");
}
