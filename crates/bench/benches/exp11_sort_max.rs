//! E11 — crowd sort and max: ranking quality vs comparison budget, and the
//! tournament's n-1-comparison max against the full-sort baseline.

use reprowd_bench::{banner, sim_context, table};
use reprowd_core::value::Value;
use reprowd_datagen::{comparison_probability, RankingConfig, RankingDataset};
use reprowd_operators::max::{crowd_max, CrowdMaxConfig};
use reprowd_operators::sort::{crowd_sort, CrowdSortConfig};

/// Kendall tau-a rank correlation between a predicted order and the truth.
fn kendall_tau(pred: &[usize], truth: &[usize]) -> f64 {
    let n = pred.len();
    if n < 2 {
        return 1.0;
    }
    let pos_pred: Vec<usize> = {
        let mut p = vec![0; n];
        for (rank, &item) in pred.iter().enumerate() {
            p[item] = rank;
        }
        p
    };
    let pos_truth: Vec<usize> = {
        let mut p = vec![0; n];
        for (rank, &item) in truth.iter().enumerate() {
            p[item] = rank;
        }
        p
    };
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let a = (pos_pred[i] as i64 - pos_pred[j] as i64).signum();
            let b = (pos_truth[i] as i64 - pos_truth[j] as i64).signum();
            if a == b {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (concordant + discordant) as f64
}

fn main() {
    banner("E11", "crowd sort/max: quality vs comparison budget", "join/sort/max operator suite (Li et al. survey, cited)");
    let data = RankingDataset::generate(&RankingConfig { n_items: 24, score_range: 10.0, seed: 11 });
    let items = data.items.clone();
    let truth = data.true_ranking();
    let all_pairs = items.len() * (items.len() - 1) / 2;

    let scores = data.scores.clone();
    let decorate = move |i: usize, j: usize, obj: &mut Value| {
        obj["_sim"] = serde_json::json!({
            "kind": "compare",
            // Temperature 0.3: workers are decisive unless items are nearly
            // tied (the realistic regime the SIGMOD-era sort papers assume).
            "p_first": comparison_probability(scores[i], scores[j], 0.3),
        });
    };

    println!("sort: {} items, {} total pairs\n", items.len(), all_pairs);
    let mut rows = Vec::new();
    for (i, frac) in [1.0f64, 0.5, 0.25, 0.1].into_iter().enumerate() {
        let budget = ((all_pairs as f64) * frac) as usize;
        let (cc, _) = sim_context(9, 0.95, 111);
        let mut cfg = CrowdSortConfig::new(&format!("sort-{i}"), "Which is better?");
        cfg.budget = if frac < 1.0 { Some(budget) } else { None };
        let out = crowd_sort(&cc, &items, &cfg, &decorate).unwrap();
        let tau = kendall_tau(&out.order, &truth);
        let winner_rank = truth.iter().position(|&t| t == out.order[0]).unwrap() + 1;
        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            out.compared.len().to_string(),
            (out.compared.len() * 3).to_string(),
            format!("{tau:.3}"),
            winner_rank.to_string(),
        ]);
    }
    table(
        &["budget", "comparisons", "crowd tasks (r=3)", "Kendall tau", "top item's true rank"],
        &rows,
    );

    println!("\nmax: tournament vs full sort");
    let mut rows = Vec::new();
    for (i, redundancy) in [1u32, 3, 5].into_iter().enumerate() {
        let reps = 10;
        let mut comparisons = 0;
        let mut rank_sum = 0usize;
        let mut top1 = 0usize;
        for rep in 0..reps {
            let (cc, _) = sim_context(9, 0.95, 200 + rep);
            let mut cfg = CrowdMaxConfig::new(&format!("max-{i}-{rep}"), "Better?");
            cfg.n_assignments = redundancy;
            let out = crowd_max(&cc, &items, &cfg, &decorate).unwrap();
            comparisons = out.comparisons;
            let winner = out.max.unwrap();
            let rank = truth.iter().position(|&t| t == winner).unwrap() + 1;
            rank_sum += rank;
            if rank == 1 {
                top1 += 1;
            }
        }
        rows.push(vec![
            redundancy.to_string(),
            comparisons.to_string(),
            format!("{}/{}", top1, reps),
            format!("{:.1}", rank_sum as f64 / reps as f64),
        ]);
    }
    table(
        &["redundancy", "comparisons (n-1)", "true max found", "winner's mean true rank"],
        &rows,
    );
    println!("\nShape: sort quality decays gracefully with budget; the tournament finds\nthe max in n-1 comparisons, with redundancy buying reliability.");
}
