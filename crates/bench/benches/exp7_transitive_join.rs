//! E7 — transitive joins (Wang et al., SIGMOD 2013): questions saved by
//! transitivity vs CrowdER, the effect of pair ordering, and error
//! propagation as worker quality degrades.

use reprowd_bench::{banner, sim_context, table};
use reprowd_core::value::Value;
use reprowd_datagen::{ErConfig, ErCorpus};
use reprowd_operators::join::crowder::{crowder_join, CrowdErConfig};
use reprowd_operators::join::transitive::{transitive_join, PairOrdering, TransitiveConfig};
use reprowd_operators::pairwise_prf;

fn decorate_for(
    entities: Vec<usize>,
    ambiguity: f64,
) -> impl Fn(usize, usize, &mut Value) {
    move |a, b, obj: &mut Value| {
        obj["_sim"] = serde_json::json!({
            "kind": "match",
            "is_match": entities[a] == entities[b],
            "ambiguity": ambiguity,
        });
    }
}

fn main() {
    banner("E7", "transitive joins: savings, ordering, error propagation", "Wang et al. 2013 (re-implemented per the paper)");
    // Large clusters = lots of transitivity to exploit.
    let corpus = ErCorpus::generate(&ErConfig {
        n_entities: 25,
        min_dups: 3,
        max_dups: 6,
        seed: 707,
        ..ErConfig::default()
    });
    let records = corpus.texts();
    let truth = corpus.true_pairs();
    let entities = corpus.truth_clusters();
    println!("corpus: {} records in {} entities ({} true pairs)\n", records.len(), corpus.n_entities, truth.len());

    // --- Part 1: savings vs CrowdER, per ordering.
    let (cc, _) = sim_context(9, 0.97, 77);
    let mut ccfg = CrowdErConfig::new("er-base");
    ccfg.threshold = 0.4;
    let base = crowder_join(&cc, &records, &ccfg, decorate_for(entities.clone(), 0.05)).unwrap();
    let (_, _, f1_base) = pairwise_prf(&base.matched, &truth);

    let mut rows = vec![vec![
        "CrowdER (asks all candidates)".to_string(),
        base.n_crowd_reviewed.to_string(),
        "0".into(),
        "0".into(),
        "-".into(),
        format!("{f1_base:.3}"),
    ]];
    for (name, ordering) in [
        ("transitive, similarity desc", PairOrdering::SimilarityDesc),
        ("transitive, random", PairOrdering::Random(7)),
        ("transitive, similarity asc", PairOrdering::SimilarityAsc),
    ] {
        let (cc, _) = sim_context(9, 0.97, 77);
        let mut cfg = TransitiveConfig::new(&format!("tj-{name}"));
        cfg.threshold = 0.4;
        cfg.ordering = ordering;
        let out =
            transitive_join(&cc, &records, &cfg, decorate_for(entities.clone(), 0.05)).unwrap();
        let (_, _, f1) = pairwise_prf(&out.matched, &truth);
        let saved = 100.0 * (1.0 - out.asked.len() as f64 / out.candidates.len().max(1) as f64);
        rows.push(vec![
            name.to_string(),
            out.asked.len().to_string(),
            out.deduced_positive.to_string(),
            out.deduced_negative.to_string(),
            format!("{saved:.1}%"),
            format!("{f1:.3}"),
        ]);
    }
    table(
        &["strategy", "questions asked", "deduced +", "deduced -", "saved", "F1"],
        &rows,
    );

    // --- Part 2: error propagation — one wrong early answer poisons
    // deductions; measure F1 as pair ambiguity rises.
    println!("\nerror propagation (similarity-desc ordering):");
    let mut rows = Vec::new();
    for ambiguity in [0.0f64, 0.2, 0.4, 0.6] {
        let (cc, _) = sim_context(9, 0.9, 78);
        let mut cfg = TransitiveConfig::new(&format!("tj-amb-{}", (ambiguity * 10.0) as u32));
        cfg.threshold = 0.4;
        let out =
            transitive_join(&cc, &records, &cfg, decorate_for(entities.clone(), ambiguity))
                .unwrap();
        let (p, r, f1) = pairwise_prf(&out.matched, &truth);

        let (cc2, _) = sim_context(9, 0.9, 78);
        let mut ccfg = CrowdErConfig::new(&format!("er-amb-{}", (ambiguity * 10.0) as u32));
        ccfg.threshold = 0.4;
        let er = crowder_join(&cc2, &records, &ccfg, decorate_for(entities.clone(), ambiguity))
            .unwrap();
        let (_, _, f1_er) = pairwise_prf(&er.matched, &truth);
        rows.push(vec![
            format!("{ambiguity:.1}"),
            format!("{p:.3}"),
            format!("{r:.3}"),
            format!("{f1:.3}"),
            format!("{f1_er:.3}"),
        ]);
    }
    table(&["pair ambiguity", "precision", "recall", "transitive F1", "CrowdER F1"], &rows);
    println!("\nShape: transitivity saves a large share of questions (best with\nsimilarity-descending order) and degrades slightly faster than CrowdER as\nworker error rises, because deduced labels inherit mistakes.");
}
