//! Criterion micro-benchmarks of the similarity-join substrate: the
//! prefix-filtered join against the brute-force oracle (the machine-pass
//! speedup CrowdER's cost model assumes).

use criterion::{criterion_group, criterion_main, Criterion};
use reprowd_datagen::{ErConfig, ErCorpus};
use reprowd_simjoin::join::{brute_force_self_join, self_join, JoinConfig};
use reprowd_simjoin::similarity::{edit_distance, SetSimilarity};

fn corpus(n_entities: usize) -> Vec<String> {
    ErCorpus::generate(&ErConfig {
        n_entities,
        min_dups: 1,
        max_dups: 3,
        seed: 1234,
        ..ErConfig::default()
    })
    .texts()
}

fn bench_simjoin(c: &mut Criterion) {
    let mut g = c.benchmark_group("simjoin");
    g.sample_size(15);

    let small = corpus(150); // ~300 records
    let cfg = JoinConfig::new(SetSimilarity::Jaccard, 0.4);

    g.bench_function("prefix_filtered_300rec", |b| {
        b.iter(|| std::hint::black_box(self_join(&small, &cfg)));
    });
    g.bench_function("brute_force_300rec", |b| {
        b.iter(|| std::hint::black_box(brute_force_self_join(&small, &cfg)));
    });

    let big = corpus(600); // ~1200 records: only the filtered join is viable
    g.bench_function("prefix_filtered_1200rec", |b| {
        b.iter(|| std::hint::black_box(self_join(&big, &cfg)));
    });

    g.bench_function("edit_distance_20x20", |b| {
        b.iter(|| {
            std::hint::black_box(edit_distance(
                "golden dragon palace",
                "goldn dragoon palaces",
            ))
        });
    });

    g.finish();
}

criterion_group!(benches, bench_simjoin);
criterion_main!(benches);
