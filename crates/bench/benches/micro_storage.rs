//! Criterion micro-benchmarks of the storage engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use reprowd_storage::{Backend, Batch, DiskStore, MemoryStore, SyncPolicy};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reprowd-micro-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");
    g.sample_size(20);

    g.bench_function("disk_set_1k", |b| {
        b.iter_batched(
            || DiskStore::open(tmp("set.rwlog"), SyncPolicy::Never).unwrap(),
            |store| {
                for i in 0..1000u32 {
                    store.set(&i.to_le_bytes(), b"value-payload").unwrap();
                }
            },
            BatchSize::LargeInput,
        );
    });

    g.bench_function("disk_batch_1k", |b| {
        b.iter_batched(
            || DiskStore::open(tmp("batch.rwlog"), SyncPolicy::Never).unwrap(),
            |store| {
                let mut batch = Batch::with_capacity(1000);
                for i in 0..1000u32 {
                    batch.set(i.to_le_bytes().to_vec(), b"value-payload".to_vec());
                }
                store.apply_batch(batch).unwrap();
            },
            BatchSize::LargeInput,
        );
    });

    let read_store = DiskStore::open(tmp("get.rwlog"), SyncPolicy::Never).unwrap();
    for i in 0..10_000u32 {
        read_store.set(&i.to_le_bytes(), b"value-payload").unwrap();
    }
    g.bench_function("disk_get_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7) % 10_000;
            std::hint::black_box(read_store.get(&i.to_le_bytes()).unwrap());
        });
    });

    let mem = MemoryStore::new();
    for i in 0..10_000u32 {
        mem.set(format!("task/{i:06}").as_bytes(), b"v").unwrap();
    }
    g.bench_function("memory_scan_prefix_10k", |b| {
        b.iter(|| std::hint::black_box(mem.scan_prefix(b"task/0001").unwrap()));
    });

    g.bench_function("recovery_replay_10k", |b| {
        let path = tmp("replay.rwlog");
        {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            for i in 0..10_000u32 {
                store.set(&i.to_le_bytes(), b"value-payload").unwrap();
            }
            store.flush().unwrap();
        }
        b.iter(|| {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            std::hint::black_box(store.stats().live_keys);
        });
    });

    g.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
