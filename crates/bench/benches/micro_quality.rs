//! Criterion micro-benchmarks of the label aggregators: majority vote vs
//! the EM family on a 1000-item × 7-worker vote matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use reprowd_quality::{
    majority_vote_matrix, DawidSkene, DsConfig, OneCoin, OneCoinConfig, TiePolicy, VoteMatrix,
};

fn matrix(n_items: usize, n_workers: u64) -> VoteMatrix {
    let mut m = VoteMatrix::new(2, n_items);
    for w in 1..=n_workers {
        for i in 0..n_items {
            // Deterministic pseudo-noise.
            let mut z = (w << 32) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            let truth = i % 2;
            let label = if z % 100 < 20 { 1 - truth } else { truth };
            m.push_vote(i, w, label);
        }
    }
    m
}

fn bench_quality(c: &mut Criterion) {
    let mut g = c.benchmark_group("quality");
    g.sample_size(20);
    let m = matrix(1000, 7);

    g.bench_function("majority_vote_1000x7", |b| {
        b.iter(|| std::hint::black_box(majority_vote_matrix(&m, TiePolicy::LowestLabel)));
    });
    g.bench_function("onecoin_em_1000x7", |b| {
        b.iter(|| std::hint::black_box(OneCoin::fit(&m, &OneCoinConfig::default())));
    });
    g.bench_function("dawid_skene_1000x7", |b| {
        b.iter(|| std::hint::black_box(DawidSkene::fit(&m, &DsConfig::default())));
    });

    g.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
