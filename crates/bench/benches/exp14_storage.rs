//! E14 — the segmented storage engine: reopen time, compaction stalls, and
//! cross-backend parity on a write-heavy overwrite workload (10^6 writes
//! over 10^4 live keys in full mode).
//!
//! What it pins:
//!
//! * **Reopen replays only live segments** — after compaction, reopening
//!   the database must be ≥ 5× faster than replaying the equivalent
//!   un-compacted single-file log (it is typically 50×+: 10^4 live records
//!   instead of 10^6 total).
//! * **No stop-the-world compaction** — a reader thread hammers `get`
//!   while `compact()` rewrites tens of MB; the max observed read latency
//!   must stay a small fraction of the compaction wall time (the old
//!   engine held the store mutex for the whole rewrite, so its max stall
//!   *was* the wall time).
//! * **Parity** — the same op sequence through `MemoryStore`, a legacy
//!   single-file `DiskStore`, and the segmented engine (with a mid-stream
//!   compaction + reopen) yields bit-identical `scan_prefix` results.
//!
//! Writes `BENCH_E14.json` at the workspace root so the perf trajectory is
//! tracked across PRs. Smoke mode (`REPROWD_E14_SMOKE=1`, used by CI)
//! shrinks the workload and relaxes only the scheduler-sensitive stall
//! ratio (a 1-core CI box preempts the reader for whole time slices).

use reprowd_bench::{banner, table, timed};
use reprowd_storage::{Backend, DiskStore, MemoryStore, SegmentPolicy, SyncPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reprowd-exp14-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    // Clear the whole database family (base + manifest + segments).
    DiskStore::destroy(&p).unwrap();
    p
}

/// Never rotate: produces exactly the pre-segmentation single-file layout.
fn single_file_policy() -> SegmentPolicy {
    SegmentPolicy::new(u64::MAX, 1.0)
}

struct ReopenResult {
    writes: u64,
    live_keys: usize,
    single_log_bytes: u64,
    single_log_ms: f64,
    segmented_bytes: u64,
    segmented_segments: usize,
    segmented_ms: f64,
    speedup: f64,
}

/// Phase 1: `writes` overwrites cycling over `keys` live keys; reopen the
/// resulting single log, then compact into segments and reopen again.
fn reopen_phase(writes: u64, keys: u64, seg_bytes: u64) -> ReopenResult {
    let path = tmp("reopen.rwlog");
    {
        let store = DiskStore::open_with(&path, SyncPolicy::Never, single_file_policy()).unwrap();
        for i in 0..writes {
            let k = format!("k/{:06}", i % keys);
            let v = format!("value-{i:012}-padding-padding-padding");
            store.set(k.as_bytes(), v.as_bytes()).unwrap();
        }
        store.flush().unwrap();
    }
    let single_log_bytes = std::fs::metadata(&path).unwrap().len();
    let (live_keys, single_log_ms) = timed(|| {
        let store = DiskStore::open_with(&path, SyncPolicy::Never, single_file_policy()).unwrap();
        assert_eq!(store.recovery_report().records, writes);
        store.stats().live_keys
    });
    assert_eq!(live_keys as u64, keys);

    // Migrate: the segmented open replays the legacy file once, then
    // compaction rewrites the live set into sealed segments.
    let policy = SegmentPolicy::new(seg_bytes, 1.0);
    let segmented_bytes = {
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        let saved = store.compact().unwrap();
        assert!(saved > 0, "a 99% garbage log must shrink");
        store.stats().log_bytes
    };
    let mut segmented_segments = 0;
    let ((), segmented_ms) = timed(|| {
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        assert_eq!(store.stats().live_keys as u64, keys);
        segmented_segments = store.recovery_report().segments;
    });
    ReopenResult {
        writes,
        live_keys,
        single_log_bytes,
        single_log_ms,
        segmented_bytes,
        segmented_segments,
        segmented_ms,
        speedup: single_log_ms / segmented_ms,
    }
}

struct StallResult {
    db_bytes: u64,
    compact_ms: f64,
    saved_bytes: u64,
    max_read_stall_ms: f64,
    reads_during: u64,
}

/// Phase 2: hammer `get` from a second thread while `compact()` rewrites a
/// ~50%-garbage database, recording the worst single-read latency.
fn stall_phase(keys: u64, seg_bytes: u64) -> StallResult {
    let path = tmp("stall.rwlog");
    let policy = SegmentPolicy::new(seg_bytes, 1.0);
    let store = Arc::new(DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap());
    let value = vec![0x5Au8; 200];
    for _round in 0..2 {
        for i in 0..keys {
            store.set(format!("k/{i:06}").as_bytes(), &value).unwrap();
        }
    }
    let db_bytes = store.stats().log_bytes;

    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        let value_len = value.len();
        std::thread::spawn(move || {
            let mut max_ms = 0.0f64;
            let mut reads = 0u64;
            let mut i = 0u64;
            while !done.load(Ordering::Relaxed) {
                let key = format!("k/{:06}", i % keys);
                let (got, ms) = timed(|| store.get(key.as_bytes()).unwrap());
                assert_eq!(got.map(|v| v.len()), Some(value_len));
                max_ms = max_ms.max(ms);
                reads += 1;
                i += 1;
            }
            (max_ms, reads)
        })
    };
    let (saved_bytes, compact_ms) = timed(|| store.compact().unwrap());
    done.store(true, Ordering::Relaxed);
    let (max_read_stall_ms, reads_during) = reader.join().unwrap();
    assert!(saved_bytes > 0);
    StallResult { db_bytes, compact_ms, saved_bytes, max_read_stall_ms, reads_during }
}

/// Phase 3: one deterministic op stream through all three backends; every
/// `scan_prefix` must agree bit-for-bit.
fn parity_phase(steps: u32) -> u32 {
    let legacy_path = tmp("parity-legacy.rwlog");
    let seg_path = tmp("parity-seg.rwlog");
    let memory = MemoryStore::new();
    let legacy =
        DiskStore::open_with(&legacy_path, SyncPolicy::Never, single_file_policy()).unwrap();
    let policy = SegmentPolicy::new(2048, 0.5);
    let mut seg = DiskStore::open_with(&seg_path, SyncPolicy::Never, policy).unwrap();

    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for step in 0..steps {
        let key = format!("k/{:03}", rng() % 200);
        if rng() % 5 == 0 {
            memory.delete(key.as_bytes()).unwrap();
            legacy.delete(key.as_bytes()).unwrap();
            seg.delete(key.as_bytes()).unwrap();
        } else {
            let value = format!("v-{step}-{:08x}", rng() as u32);
            memory.set(key.as_bytes(), value.as_bytes()).unwrap();
            legacy.set(key.as_bytes(), value.as_bytes()).unwrap();
            seg.set(key.as_bytes(), value.as_bytes()).unwrap();
        }
        // Stress the state machine mid-stream: crash (reopen) the
        // segmented store and compact it at different points.
        if step == steps / 3 {
            seg.compact().unwrap();
        }
        if step == 2 * steps / 3 {
            drop(seg);
            seg = DiskStore::open_with(&seg_path, SyncPolicy::Never, policy).unwrap();
        }
    }
    let mut checked = 0u32;
    for prefix in [&b""[..], b"k/", b"k/0", b"k/1", b"k/19", b"k/199", b"none"] {
        let want = memory.scan_prefix(prefix).unwrap();
        assert_eq!(
            legacy.scan_prefix(prefix).unwrap(),
            want,
            "legacy single-file scan diverged on {prefix:?}"
        );
        assert_eq!(
            seg.scan_prefix(prefix).unwrap(),
            want,
            "segmented scan diverged on {prefix:?}"
        );
        checked += 1;
    }
    checked
}

fn write_json(path: &str, mode: &str, reopen: &ReopenResult, stall: &StallResult, parity_prefixes: u32) {
    let out = format!(
        "{{\n  \"experiment\": \"E14 segmented storage engine\",\n  \"mode\": \"{mode}\",\n  \
         \"reopen\": {{\"writes\": {}, \"live_keys\": {}, \"single_log_bytes\": {}, \
         \"single_log_ms\": {:.1}, \"segmented_bytes\": {}, \"segmented_segments\": {}, \
         \"segmented_ms\": {:.2}, \"speedup\": {:.1}}},\n  \
         \"compaction_stall\": {{\"db_bytes\": {}, \"compact_ms\": {:.1}, \"saved_bytes\": {}, \
         \"max_read_stall_ms\": {:.2}, \"reads_during_compaction\": {}}},\n  \
         \"parity\": {{\"prefixes_checked\": {parity_prefixes}, \"bit_identical\": true}}\n}}\n",
        reopen.writes,
        reopen.live_keys,
        reopen.single_log_bytes,
        reopen.single_log_ms,
        reopen.segmented_bytes,
        reopen.segmented_segments,
        reopen.segmented_ms,
        reopen.speedup,
        stall.db_bytes,
        stall.compact_ms,
        stall.saved_bytes,
        stall.max_read_stall_ms,
        stall.reads_during,
    );
    std::fs::write(path, out).expect("write BENCH_E14.json");
}

fn main() {
    let smoke = std::env::var_os("REPROWD_E14_SMOKE").is_some();
    let (writes, keys, seg_bytes, stall_keys): (u64, u64, u64, u64) = if smoke {
        (100_000, 5_000, 256 << 10, 10_000)
    } else {
        (1_000_000, 10_000, 4 << 20, 100_000)
    };
    banner(
        "E14",
        &format!(
            "segmented storage engine (n={writes} writes over {keys} live keys{})",
            if smoke { ", SMOKE" } else { "" }
        ),
        "ROADMAP 'Pluggable storage backends' — bounded logs, non-blocking compaction",
    );

    // --- reopen: un-compacted single log vs compacted segments
    let reopen = reopen_phase(writes, keys, seg_bytes);
    table(
        &["layout", "log MB", "segments", "reopen ms", "speedup"],
        &[
            vec![
                "single log".into(),
                format!("{:.1}", reopen.single_log_bytes as f64 / 1e6),
                "1".into(),
                format!("{:.1}", reopen.single_log_ms),
                "1.0x".into(),
            ],
            vec![
                "segmented+compacted".into(),
                format!("{:.1}", reopen.segmented_bytes as f64 / 1e6),
                reopen.segmented_segments.to_string(),
                format!("{:.1}", reopen.segmented_ms),
                format!("{:.1}x", reopen.speedup),
            ],
        ],
    );
    assert!(
        reopen.speedup >= 5.0,
        "reopen after compaction must be >= 5x faster than the single log \
         (got {:.1}x: {:.1} ms vs {:.1} ms)",
        reopen.speedup,
        reopen.single_log_ms,
        reopen.segmented_ms
    );

    // --- read stalls during compaction
    let stall = stall_phase(stall_keys, seg_bytes.min(1 << 20));
    println!(
        "\ncompaction of a {:.1} MB / 50% garbage database: {:.1} ms wall, \
         reclaimed {:.1} MB;\nconcurrent reader: {} reads, max single-read latency {:.2} ms \
         ({:.1}% of the wall — the old engine's max stall was 100%)",
        stall.db_bytes as f64 / 1e6,
        stall.compact_ms,
        stall.saved_bytes as f64 / 1e6,
        stall.reads_during,
        stall.max_read_stall_ms,
        100.0 * stall.max_read_stall_ms / stall.compact_ms,
    );
    assert!(stall.reads_during > 0, "reads must complete while compaction runs");
    if smoke {
        // A 1-core CI box preempts the reader for whole scheduler slices;
        // only the stop-the-world regression (stall ≈ wall) is gated.
        assert!(
            stall.max_read_stall_ms < stall.compact_ms,
            "read stalled for the whole compaction ({:.2} ms of {:.2} ms)",
            stall.max_read_stall_ms,
            stall.compact_ms
        );
    } else {
        assert!(
            stall.max_read_stall_ms < stall.compact_ms / 5.0,
            "max read stall {:.2} ms is not a small fraction of the {:.2} ms rewrite — \
             compaction is holding the store lock",
            stall.max_read_stall_ms,
            stall.compact_ms
        );
    }

    // --- parity across backends
    let parity_steps = if smoke { 2_000 } else { 20_000 };
    let prefixes = parity_phase(parity_steps);
    println!(
        "\nparity: {parity_steps} ops through MemoryStore / single-file DiskStore / \
         segmented engine -> scan_prefix bit-identical on {prefixes} prefixes"
    );

    if smoke {
        println!("\nPASS (smoke): >=5x reopen, no stop-the-world stall, bit-identical scans. JSON not rewritten.");
    } else {
        let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E14.json");
        write_json(json_path, "full", &reopen, &stall, prefixes);
        println!(
            "\nPASS: {:.1}x reopen speedup; max read stall {:.2} ms during a {:.1} ms \
             compaction; bit-identical scans. Results recorded to BENCH_E14.json",
            reopen.speedup, stall.max_read_stall_ms, stall.compact_ms
        );
    }
}
