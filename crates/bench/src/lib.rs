//! # reprowd-bench
//!
//! The experiment harness. Every figure/claim of the paper maps to one
//! `harness = false` bench target (see `DESIGN.md` for the E1–E11 index and
//! `EXPERIMENTS.md` for recorded outputs); three Criterion targets
//! micro-benchmark the substrates. Run everything with
//! `cargo bench --workspace`, or one experiment with
//! `cargo bench -p reprowd-bench --bench exp6_crowder_join`.
//!
//! This lib holds the shared plumbing: table printing, timing, and the
//! standard simulated-crowd setups the experiments reuse.

use reprowd_core::context::CrowdContext;
use reprowd_core::value::Value;
use reprowd_platform::{CrowdPlatform, SimConfig, SimPlatform, WorkerPool};
use reprowd_storage::MemoryStore;
use std::sync::Arc;
use std::time::Instant;

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("reproduces: {paper_ref}");
    println!("================================================================");
}

/// Prints a fixed-width table: header then rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Times a closure, returning (result, milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// A fresh in-memory context over `n_workers` uniform-ability workers.
pub fn sim_context(n_workers: usize, ability: f64, seed: u64) -> (CrowdContext, Arc<SimPlatform>) {
    let platform = Arc::new(SimPlatform::quick(n_workers, ability, seed));
    let cc = CrowdContext::new(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
    )
    .expect("context");
    (cc, platform)
}

/// A context over an explicit worker pool.
pub fn pool_context(pool: WorkerPool, seed: u64) -> (CrowdContext, Arc<SimPlatform>) {
    let platform = Arc::new(SimPlatform::new(SimConfig::new(pool, seed)));
    let cc = CrowdContext::new(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
    )
    .expect("context");
    (cc, platform)
}

/// Figure-2-style image objects with embedded label ground truth.
pub fn label_objects(n: usize, difficulty: f64) -> Vec<Value> {
    (0..n)
        .map(|i| {
            serde_json::json!({
                "url": format!("img{i}.jpg"),
                "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": difficulty}
            })
        })
        .collect()
}

/// Accuracy of a Yes/No label column against `truth[i] = i % 2`.
pub fn label_accuracy(labels: &[Value]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(i, v)| v.as_str() == Some(if i % 2 == 0 { "Yes" } else { "No" }))
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_objects_shape() {
        let objs = label_objects(4, 0.2);
        assert_eq!(objs.len(), 4);
        assert_eq!(objs[1]["_sim"]["truth"], 1);
    }

    #[test]
    fn label_accuracy_counts() {
        let labels = vec![
            serde_json::json!("Yes"),
            serde_json::json!("Yes"), // wrong (should be "No")
            serde_json::json!("Yes"),
            serde_json::json!("No"),
        ];
        assert!((label_accuracy(&labels) - 0.75).abs() < 1e-12);
        assert_eq!(label_accuracy(&[]), 0.0);
    }

    #[test]
    fn timed_returns_value() {
        let (v, ms) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn contexts_construct() {
        let (cc, _) = sim_context(3, 0.9, 1);
        assert!(cc.experiments().unwrap().is_empty());
        let (cc, _) = pool_context(WorkerPool::mixture(1, 1, 1, 2), 3);
        assert!(cc.experiments().unwrap().is_empty());
    }
}
