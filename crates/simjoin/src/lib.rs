//! # reprowd-simjoin
//!
//! String-similarity functions and a prefix-filter similarity join.
//!
//! CrowdER (Wang et al., PVLDB 2012) — one of the two crowdsourced join
//! algorithms the Reprowd paper re-implements — is a *hybrid* human/machine
//! algorithm: a cheap machine pass prunes the `O(n²)` pair space down to the
//! pairs whose similarity clears a threshold, and only those survivors are
//! sent to the crowd. This crate is that machine pass, built from scratch:
//!
//! * [`tokenize`] — normalization, word tokens, and q-grams.
//! * [`similarity`] — Jaccard, Dice, cosine, overlap, and (banded)
//!   Levenshtein edit distance / similarity.
//! * [`prefix`] — prefix filtering with a global rare-token-first order, the
//!   classic index-level optimization for set-similarity joins.
//! * [`join`] — self-join and R×S join drivers, plus a brute-force oracle
//!   used by the tests to prove the filter loses no true match.
//!
//! ```
//! use reprowd_simjoin::join::{self_join, JoinConfig};
//! use reprowd_simjoin::similarity::SetSimilarity;
//!
//! let records = vec![
//!     "iphone 6s plus 64gb".to_string(),
//!     "apple iphone 6s plus 64 gb".to_string(),
//!     "galaxy s7 edge".to_string(),
//! ];
//! let pairs = self_join(&records, &JoinConfig::new(SetSimilarity::Jaccard, 0.4));
//! assert_eq!(pairs.len(), 1);
//! assert_eq!((pairs[0].left, pairs[0].right), (0, 1));
//! ```

pub mod join;
pub mod prefix;
pub mod similarity;
pub mod tokenize;

pub use join::{rs_join, self_join, self_join_stream, JoinConfig, SelfJoinStream, SimPair};
pub use similarity::SetSimilarity;
