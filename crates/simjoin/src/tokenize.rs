//! Normalization and tokenization for set-based similarity.
//!
//! Entity-resolution records ("iPhone 6s, 64GB (Space Grey)") are noisy;
//! similarity must be computed over a canonical token set. We lowercase,
//! treat every non-alphanumeric rune as a separator, and offer both word
//! tokens and character q-grams (q-grams are more robust to typos, words to
//! re-orderings — CrowdER-style pipelines typically use words for products
//! and q-grams for short strings).

/// Lowercases and splits on non-alphanumeric boundaries.
pub fn words(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Sorted, deduplicated word tokens — the canonical *set* representation.
pub fn word_set(s: &str) -> Vec<String> {
    let mut tokens = words(s);
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

/// Character q-grams of the normalized string (whitespace collapsed to one
/// `' '`). Strings shorter than `q` yield a single gram of the whole string.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q must be positive");
    let normalized: Vec<char> = {
        let mut out: Vec<char> = Vec::with_capacity(s.len());
        let mut last_space = true; // also trims leading separators
        for ch in s.chars() {
            if ch.is_alphanumeric() {
                out.extend(ch.to_lowercase());
                last_space = false;
            } else if !last_space {
                out.push(' ');
                last_space = true;
            }
        }
        while out.last() == Some(&' ') {
            out.pop();
        }
        out
    };
    if normalized.is_empty() {
        return Vec::new();
    }
    if normalized.len() <= q {
        return vec![normalized.into_iter().collect()];
    }
    (0..=normalized.len() - q).map(|i| normalized[i..i + q].iter().collect()).collect()
}

/// Sorted, deduplicated q-gram set.
pub fn qgram_set(s: &str, q: usize) -> Vec<String> {
    let mut grams = qgrams(s, q);
    grams.sort_unstable();
    grams.dedup();
    grams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_basic() {
        assert_eq!(words("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(words("iPhone 6s (64GB)"), vec!["iphone", "6s", "64gb"]);
        assert_eq!(words(""), Vec::<String>::new());
        assert_eq!(words("---"), Vec::<String>::new());
    }

    #[test]
    fn words_handles_unicode() {
        assert_eq!(words("Café Déjà-Vu"), vec!["café", "déjà", "vu"]);
    }

    #[test]
    fn word_set_sorted_dedup() {
        assert_eq!(word_set("b a b a c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn qgrams_basic() {
        assert_eq!(qgrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(qgrams("ab", 2), vec!["ab"]);
        assert_eq!(qgrams("a", 3), vec!["a"]);
        assert_eq!(qgrams("", 2), Vec::<String>::new());
    }

    #[test]
    fn qgrams_collapse_separators() {
        assert_eq!(qgrams("a  b", 3), vec!["a b"]);
        assert_eq!(qgrams("A,B", 3), vec!["a b"]);
        assert_eq!(qgrams("  x  ", 2), vec!["x"]);
    }

    #[test]
    fn qgram_set_dedups() {
        // "aaaa" has grams aa,aa,aa -> {aa}
        assert_eq!(qgram_set("aaaa", 2), vec!["aa"]);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn qgrams_zero_q_panics() {
        qgrams("abc", 0);
    }
}
