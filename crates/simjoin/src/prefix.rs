//! Prefix filtering for set-similarity joins.
//!
//! The classic observation (Chaudhuri et al. / PPJoin): order every token by
//! a global total order (rarest first, so prefixes are selective). If two
//! sets must share at least `t` tokens to reach the similarity threshold,
//! then each set's *prefix* — its first `|x| - t + 1` tokens in the global
//! order — must contain at least one shared token. Indexing only prefixes
//! yields every candidate pair while probing a tiny fraction of the data.

use crate::similarity::SetSimilarity;
use std::collections::HashMap;

/// A record mapped into the global token order: sorted ascending token ids
/// (rarer token = smaller id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedRecord {
    /// Original record index.
    pub id: usize,
    /// Token ids, ascending in the global (rarity) order, deduplicated.
    pub tokens: Vec<u32>,
}

/// The global token order plus all records mapped into it.
#[derive(Debug)]
pub struct TokenUniverse {
    /// token string -> id (ordered by ascending document frequency).
    pub vocab: HashMap<String, u32>,
    /// All records, each with ascending token ids.
    pub records: Vec<OrderedRecord>,
}

/// Builds the rare-first global order over `token_sets` (each must be a
/// deduplicated set; order within doesn't matter).
pub fn build_universe(token_sets: &[Vec<String>]) -> TokenUniverse {
    let mut freq: HashMap<&str, u32> = HashMap::new();
    for set in token_sets {
        for tok in set {
            *freq.entry(tok.as_str()).or_insert(0) += 1;
        }
    }
    // Sort tokens by (frequency asc, lexicographic) for a deterministic order.
    let mut by_rarity: Vec<(&str, u32)> = freq.into_iter().collect();
    by_rarity.sort_unstable_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
    let vocab: HashMap<String, u32> =
        by_rarity.iter().enumerate().map(|(i, (tok, _))| (tok.to_string(), i as u32)).collect();

    let records = token_sets
        .iter()
        .enumerate()
        .map(|(id, set)| {
            let mut tokens: Vec<u32> = set.iter().map(|t| vocab[t.as_str()]).collect();
            tokens.sort_unstable();
            tokens.dedup();
            OrderedRecord { id, tokens }
        })
        .collect();
    TokenUniverse { vocab, records }
}

/// Length of the prefix that must be indexed for a record of `len` tokens
/// under `measure`/`threshold` when joined against arbitrary partners.
///
/// If the record must share at least `t` tokens with every qualifying
/// partner (see [`SetSimilarity::min_overlap_any_partner`]), then skipping
/// its last `t - 1` tokens cannot skip *all* shared tokens, so indexing the
/// first `len - t + 1` suffices.
pub fn prefix_len(measure: SetSimilarity, len: usize, threshold: f64) -> usize {
    if len == 0 {
        return 0;
    }
    let t = measure.min_overlap_any_partner(len, threshold).max(1);
    len.saturating_sub(t) + 1
}

/// All candidate pairs `(i, j)` with `i < j` whose prefixes share a token.
/// A superset of the true result — callers verify with the full measure.
pub fn candidates(universe: &TokenUniverse, measure: SetSimilarity, threshold: f64) -> Vec<(usize, usize)> {
    // Inverted index: token id -> record ids whose *prefix* contains it.
    let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut seen: HashMap<(usize, usize), ()> = HashMap::new();
    let mut out = Vec::new();

    for rec in &universe.records {
        let p = prefix_len(measure, rec.tokens.len(), threshold);
        for &tok in &rec.tokens[..p] {
            if let Some(hits) = index.get(&tok) {
                for &other in hits {
                    let key = (other.min(rec.id), other.max(rec.id));
                    if seen.insert(key, ()).is_none() {
                        out.push(key);
                    }
                }
            }
        }
        for &tok in &rec.tokens[..p] {
            index.entry(tok).or_default().push(rec.id);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::intersection_size;
    use crate::tokenize::word_set;

    fn sets(records: &[&str]) -> Vec<Vec<String>> {
        records.iter().map(|r| word_set(r)).collect()
    }

    #[test]
    fn universe_orders_rare_first() {
        let u = build_universe(&sets(&["a b common", "c common", "d common"]));
        let common_id = u.vocab["common"];
        for tok in ["a", "b", "c", "d"] {
            assert!(u.vocab[tok] < common_id, "{tok} should order before 'common'");
        }
    }

    #[test]
    fn records_tokens_ascending_dedup() {
        let u = build_universe(&sets(&["b a b a", "a c"]));
        for rec in &u.records {
            assert!(rec.tokens.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn prefix_len_bounds() {
        // At threshold 1.0 the required overlap is the whole set: prefix = 1 token.
        assert_eq!(prefix_len(SetSimilarity::Jaccard, 5, 1.0), 1);
        // At threshold ~0 everything must be indexed.
        assert_eq!(prefix_len(SetSimilarity::Jaccard, 5, 0.0), 5);
        assert_eq!(prefix_len(SetSimilarity::Jaccard, 0, 0.5), 0);
    }

    /// The candidate set must be a superset of all truly-similar pairs
    /// (completeness — the property CrowdER's recall depends on).
    #[test]
    fn candidates_superset_of_truth_exhaustive() {
        let corpus = sets(&[
            "apple iphone 6s 64gb",
            "iphone 6s 64gb apple smartphone",
            "samsung galaxy s7",
            "galaxy s7 samsung phone",
            "google pixel",
            "apple ipad pro",
            "ipad pro 12 inch apple",
            "nokia brick",
        ]);
        for threshold in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let u = build_universe(&corpus);
            let cands = candidates(&u, SetSimilarity::Jaccard, threshold);
            for i in 0..corpus.len() {
                for j in i + 1..corpus.len() {
                    let sim = SetSimilarity::Jaccard.compute(&corpus[i], &corpus[j]);
                    if sim >= threshold && sim > 0.0 {
                        assert!(
                            cands.contains(&(i, j)),
                            "missed pair ({i},{j}) sim={sim} at θ={threshold}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_prune_compared_to_all_pairs() {
        // 40 records in two well-separated clusters: pruning must kick in.
        let mut corpus = Vec::new();
        for i in 0..20 {
            corpus.push(format!("red apple fruit juice sweet rvariant{i}"));
            corpus.push(format!("blue car vehicle engine fast bvariant{i}"));
        }
        let sets: Vec<Vec<String>> = corpus.iter().map(|s| word_set(s)).collect();
        let u = build_universe(&sets);
        let cands = candidates(&u, SetSimilarity::Jaccard, 0.6);
        let all_pairs = corpus.len() * (corpus.len() - 1) / 2;
        assert!(
            cands.len() < all_pairs / 2,
            "prefix filter pruned nothing: {} of {}",
            cands.len(),
            all_pairs
        );
        // And it still finds the within-cluster near-duplicates.
        let apple_pair_sim = SetSimilarity::Jaccard
            .compute(&sets[0], &sets[2]);
        assert!(apple_pair_sim >= 0.6);
        assert!(cands.contains(&(0, 2)));
    }

    #[test]
    fn identical_records_always_candidates() {
        let corpus = sets(&["exact copy of text", "exact copy of text"]);
        let u = build_universe(&corpus);
        let cands = candidates(&u, SetSimilarity::Jaccard, 1.0);
        assert_eq!(cands, vec![(0, 1)]);
    }

    #[test]
    fn empty_records_never_crash() {
        let corpus = sets(&["", "a b", ""]);
        let u = build_universe(&corpus);
        let cands = candidates(&u, SetSimilarity::Jaccard, 0.5);
        // Empty records have empty prefixes: no candidates involving them.
        assert!(cands.iter().all(|&(i, j)| i == 1 || j == 1 || (i != j)));
    }

    #[test]
    fn intersection_consistency_with_candidates() {
        let corpus = sets(&["w x y z", "w x y q", "totally different words"]);
        let u = build_universe(&corpus);
        // records 0,1 share 3 of 5 tokens — jaccard 0.6
        assert_eq!(intersection_size(&corpus[0], &corpus[1]), 3);
        let cands = candidates(&u, SetSimilarity::Jaccard, 0.6);
        assert!(cands.contains(&(0, 1)));
    }
}
