//! Similarity-join drivers: candidate generation + verification.
//!
//! [`self_join`] returns every pair of records whose similarity clears the
//! threshold, with the exact score attached, as one materialized vector.
//! [`self_join_stream`] produces the same *set* of pairs lazily — record by
//! record against an incrementally built prefix index — so CrowdER's crowd
//! pass can interleave candidate generation with task publishing and never
//! hold the full pair list in memory (the resident state is the prefix
//! index, `O(n · prefix)`, not the `O(n²)`-in-the-worst-case pair set). A
//! brute-force oracle ([`brute_force_self_join`]) backs the tests and
//! benchmarks.

use crate::prefix::{build_universe, candidates, prefix_len, OrderedRecord};
use crate::similarity::SetSimilarity;
use crate::tokenize::word_set;
use std::collections::HashMap;

/// A verified similar pair (indices into the input slice, `left < right`).
#[derive(Debug, Clone, PartialEq)]
pub struct SimPair {
    /// Index of the first record.
    pub left: usize,
    /// Index of the second record.
    pub right: usize,
    /// Exact similarity under the configured measure.
    pub similarity: f64,
}

/// Configuration of a similarity join.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Set measure to verify with.
    pub measure: SetSimilarity,
    /// Minimum similarity for a pair to be emitted.
    pub threshold: f64,
}

impl JoinConfig {
    /// Creates a config, clamping the threshold into `(0, 1]`.
    ///
    /// A threshold of exactly 0 would emit all `O(n²)` pairs; we clamp to a
    /// small epsilon so degenerate sweeps stay finite but behave like 0.
    pub fn new(measure: SetSimilarity, threshold: f64) -> Self {
        JoinConfig { measure, threshold: threshold.clamp(1e-9, 1.0) }
    }
}

/// All pairs of `records` with similarity >= threshold, sorted by
/// descending similarity then ascending indices.
pub fn self_join(records: &[String], config: &JoinConfig) -> Vec<SimPair> {
    let token_sets: Vec<Vec<String>> = records.iter().map(|r| word_set(r)).collect();
    self_join_tokens(&token_sets, config)
}

/// [`self_join`] over pre-tokenized sets (each sorted + deduplicated).
pub fn self_join_tokens(token_sets: &[Vec<String>], config: &JoinConfig) -> Vec<SimPair> {
    let universe = build_universe(token_sets);
    let cands = candidates(&universe, config.measure, config.threshold);
    let mut out = Vec::new();
    for (i, j) in cands {
        let sim = config.measure.compute(&token_sets[i], &token_sets[j]);
        if sim >= config.threshold {
            out.push(SimPair { left: i, right: j, similarity: sim });
        }
    }
    sort_pairs(&mut out);
    out
}

/// A lazy self-join: yields exactly the pairs [`self_join`] returns, but
/// one at a time, ordered by the *later* record's index (then the earlier
/// one's) instead of by descending similarity — the order in which an
/// incremental index discovers them. Construction tokenizes the corpus and
/// builds the global token order (`O(n · tokens)`); iteration then probes
/// and extends the prefix index record by record, so the only pair-related
/// memory is the handful of verified pairs buffered for the current
/// record.
pub fn self_join_stream<'a>(records: &[String], config: &'a JoinConfig) -> SelfJoinStream<'a> {
    let token_sets: Vec<Vec<String>> = records.iter().map(|r| word_set(r)).collect();
    let ordered = build_universe(&token_sets).records;
    SelfJoinStream {
        ordered,
        config,
        index: HashMap::new(),
        current: 0,
        buffered: Vec::new(),
    }
}

/// Iterator state of [`self_join_stream`].
#[derive(Debug)]
pub struct SelfJoinStream<'a> {
    /// Records mapped into the global token order (by input index).
    ordered: Vec<OrderedRecord>,
    config: &'a JoinConfig,
    /// token id -> earlier record ids whose prefix contains it.
    index: HashMap<u32, Vec<usize>>,
    /// Next record to probe against the index.
    current: usize,
    /// Verified pairs of the current record, reversed so `pop` yields
    /// partners in ascending order.
    buffered: Vec<SimPair>,
}

impl Iterator for SelfJoinStream<'_> {
    type Item = SimPair;

    fn next(&mut self) -> Option<SimPair> {
        loop {
            if let Some(pair) = self.buffered.pop() {
                return Some(pair);
            }
            if self.current >= self.ordered.len() {
                return None;
            }
            let rec = &self.ordered[self.current];
            self.current += 1;
            let p = prefix_len(self.config.measure, rec.tokens.len(), self.config.threshold);
            // Probe: earlier records sharing a prefix token are candidates.
            let mut partners: Vec<usize> = rec.tokens[..p]
                .iter()
                .filter_map(|tok| self.index.get(tok))
                .flatten()
                .copied()
                .collect();
            partners.sort_unstable();
            partners.dedup();
            // Verify with the exact measure; buffer in descending partner
            // order so popping yields ascending.
            for &other in partners.iter().rev() {
                let sim = self
                    .config
                    .measure
                    .compute(&self.ordered[other].tokens, &rec.tokens);
                if sim >= self.config.threshold {
                    self.buffered.push(SimPair {
                        left: other.min(rec.id),
                        right: other.max(rec.id),
                        similarity: sim,
                    });
                }
            }
            // Extend the index with this record's prefix.
            for &tok in &rec.tokens[..p] {
                self.index.entry(tok).or_default().push(rec.id);
            }
        }
    }
}

/// Join two collections: pairs `(i, j)` with `left[i] ~ right[j]`.
///
/// Implemented over the combined universe with a partition check — adequate
/// for the corpus sizes Reprowd experiments use (10³–10⁵ records).
pub fn rs_join(left: &[String], right: &[String], config: &JoinConfig) -> Vec<SimPair> {
    let mut token_sets: Vec<Vec<String>> = Vec::with_capacity(left.len() + right.len());
    token_sets.extend(left.iter().map(|r| word_set(r)));
    token_sets.extend(right.iter().map(|r| word_set(r)));
    let universe = build_universe(&token_sets);
    let cands = candidates(&universe, config.measure, config.threshold);
    let mut out = Vec::new();
    for (i, j) in cands {
        // Keep only cross-partition pairs, remapped to (left_idx, right_idx).
        let (l, r) = if i < left.len() && j >= left.len() {
            (i, j - left.len())
        } else if j < left.len() && i >= left.len() {
            (j, i - left.len())
        } else {
            continue;
        };
        let sim = config.measure.compute(&token_sets[l], &token_sets[left.len() + r]);
        if sim >= config.threshold {
            out.push(SimPair { left: l, right: r, similarity: sim });
        }
    }
    sort_pairs(&mut out);
    out
}

/// O(n²) oracle used to validate the filtered join.
///
/// Like [`self_join`], records with an empty token set join nothing: an
/// entity-resolution record with no content carries no evidence of identity.
pub fn brute_force_self_join(records: &[String], config: &JoinConfig) -> Vec<SimPair> {
    let token_sets: Vec<Vec<String>> = records.iter().map(|r| word_set(r)).collect();
    let mut out = Vec::new();
    for i in 0..token_sets.len() {
        for j in i + 1..token_sets.len() {
            if token_sets[i].is_empty() || token_sets[j].is_empty() {
                continue;
            }
            let sim = config.measure.compute(&token_sets[i], &token_sets[j]);
            if sim >= config.threshold {
                out.push(SimPair { left: i, right: j, similarity: sim });
            }
        }
    }
    sort_pairs(&mut out);
    out
}

fn sort_pairs(pairs: &mut [SimPair]) {
    pairs.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "apple iphone 6s 64gb space grey".into(),
            "iphone 6s 64gb apple".into(),
            "samsung galaxy s7 edge 32gb".into(),
            "galaxy s7 edge samsung 32gb black".into(),
            "google pixel xl".into(),
            "lenovo thinkpad x1 carbon".into(),
        ]
    }

    #[test]
    fn filtered_equals_brute_force_across_thresholds() {
        let records = corpus();
        for threshold in [0.2, 0.4, 0.5, 0.6, 0.8, 1.0] {
            for measure in [SetSimilarity::Jaccard, SetSimilarity::Dice] {
                let cfg = JoinConfig::new(measure, threshold);
                assert_eq!(
                    self_join(&records, &cfg),
                    brute_force_self_join(&records, &cfg),
                    "θ={threshold}, {measure:?}"
                );
            }
        }
    }

    #[test]
    fn stream_yields_exactly_the_materialized_pairs() {
        let records = corpus();
        for threshold in [0.2, 0.4, 0.6, 0.8, 1.0] {
            for measure in [SetSimilarity::Jaccard, SetSimilarity::Dice] {
                let cfg = JoinConfig::new(measure, threshold);
                let mut streamed: Vec<SimPair> = self_join_stream(&records, &cfg).collect();
                let mut materialized = self_join(&records, &cfg);
                sort_pairs(&mut streamed);
                sort_pairs(&mut materialized);
                assert_eq!(streamed, materialized, "θ={threshold}, {measure:?}");
            }
        }
    }

    #[test]
    fn stream_orders_by_later_record_and_handles_edge_corpora() {
        let records = corpus();
        let pairs: Vec<SimPair> =
            self_join_stream(&records, &JoinConfig::new(SetSimilarity::Jaccard, 0.1)).collect();
        // Discovery order: grouped by the later record, partners ascending.
        assert!(pairs
            .windows(2)
            .all(|w| w[0].right < w[1].right
                || (w[0].right == w[1].right && w[0].left < w[1].left)));
        // A pair appears exactly once even when prefixes share many tokens.
        let mut seen = std::collections::HashSet::new();
        assert!(pairs.iter().all(|p| seen.insert((p.left, p.right))));
        // Degenerate inputs.
        let cfg = JoinConfig::new(SetSimilarity::Jaccard, 0.5);
        assert_eq!(self_join_stream(&[], &cfg).count(), 0);
        assert_eq!(self_join_stream(&["one".to_string()], &cfg).count(), 0);
        let empties = vec!["".to_string(), "a b".to_string(), "".to_string()];
        assert_eq!(self_join_stream(&empties, &cfg).count(), 0);
    }

    #[test]
    fn results_sorted_by_similarity_desc() {
        let records = corpus();
        let pairs = self_join(&records, &JoinConfig::new(SetSimilarity::Jaccard, 0.1));
        assert!(pairs.windows(2).all(|w| w[0].similarity >= w[1].similarity));
    }

    #[test]
    fn rs_join_crosses_partitions_only() {
        let left = vec!["apple iphone six".to_string(), "nokia 3310".to_string()];
        let right =
            vec!["iphone six apple".to_string(), "totally unrelated record".to_string()];
        let pairs = rs_join(&left, &right, &JoinConfig::new(SetSimilarity::Jaccard, 0.9));
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].left, pairs[0].right), (0, 0));
        assert_eq!(pairs[0].similarity, 1.0);
    }

    #[test]
    fn rs_join_never_pairs_within_one_side() {
        let left = vec!["same same same".to_string(), "same same same".to_string()];
        let right = vec!["other words".to_string()];
        let pairs = rs_join(&left, &right, &JoinConfig::new(SetSimilarity::Jaccard, 0.5));
        assert!(pairs.is_empty());
    }

    #[test]
    fn threshold_one_matches_exact_duplicates_only() {
        let records = vec![
            "a b c".to_string(),
            "c b a".to_string(), // same token set
            "a b c d".to_string(),
        ];
        let pairs = self_join(&records, &JoinConfig::new(SetSimilarity::Jaccard, 1.0));
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].left, pairs[0].right), (0, 1));
    }

    #[test]
    fn empty_input_and_single_record() {
        let cfg = JoinConfig::new(SetSimilarity::Jaccard, 0.5);
        assert!(self_join(&[], &cfg).is_empty());
        assert!(self_join(&["only one".to_string()], &cfg).is_empty());
    }

    #[test]
    fn zero_threshold_is_clamped_not_explosive() {
        let cfg = JoinConfig::new(SetSimilarity::Jaccard, 0.0);
        assert!(cfg.threshold > 0.0);
        // Disjoint records have sim 0.0 < epsilon: not emitted.
        let records = vec!["aaa bbb".to_string(), "ccc ddd".to_string()];
        assert!(self_join(&records, &cfg).is_empty());
    }
}
