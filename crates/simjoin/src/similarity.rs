//! Similarity measures over token sets and raw strings.
//!
//! All set measures take *sorted, deduplicated* slices (as produced by
//! [`tokenize::word_set`](crate::tokenize::word_set)) so the intersection
//! can be computed by a linear merge.

/// Which set-overlap measure a join uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetSimilarity {
    /// `|x ∩ y| / |x ∪ y|` — the measure used throughout CrowdER.
    Jaccard,
    /// `2|x ∩ y| / (|x| + |y|)`.
    Dice,
    /// `|x ∩ y| / sqrt(|x|·|y|)` (binary cosine).
    Cosine,
    /// `|x ∩ y| / min(|x|, |y|)`.
    Overlap,
}

impl SetSimilarity {
    /// Computes the chosen measure over two sorted deduplicated token sets.
    pub fn compute<T: Ord>(&self, x: &[T], y: &[T]) -> f64 {
        let inter = intersection_size(x, y) as f64;
        let (nx, ny) = (x.len() as f64, y.len() as f64);
        if x.is_empty() && y.is_empty() {
            // Two empty records are conventionally identical.
            return 1.0;
        }
        match self {
            SetSimilarity::Jaccard => inter / (nx + ny - inter),
            SetSimilarity::Dice => 2.0 * inter / (nx + ny),
            SetSimilarity::Cosine => {
                if nx == 0.0 || ny == 0.0 {
                    0.0
                } else {
                    inter / (nx * ny).sqrt()
                }
            }
            SetSimilarity::Overlap => {
                let m = nx.min(ny);
                if m == 0.0 {
                    0.0
                } else {
                    inter / m
                }
            }
        }
    }

    /// Minimum number of shared tokens a set of size `n` must contribute to
    /// reach `threshold` with **any** partner — the bound prefix filtering
    /// builds on. The worst case is a partner no larger than the overlap
    /// itself, which yields:
    ///
    /// * Jaccard: `o/(n + m - o) ≥ θ`, minimized at `m = o` ⇒ `o ≥ θ·n`
    /// * Dice:    `2o/(n + m) ≥ θ`,   minimized at `m = o` ⇒ `o ≥ θ·n/(2-θ)`
    /// * Cosine:  `o/√(n·m) ≥ θ`,     minimized at `m = o` ⇒ `o ≥ θ²·n`
    /// * Overlap: `o/min(n,m) ≥ θ` with `m` free ⇒ only `o ≥ 1` (no pruning)
    pub fn min_overlap_any_partner(&self, n: usize, threshold: f64) -> usize {
        if n == 0 {
            return 0;
        }
        let n_f = n as f64;
        let raw = match self {
            SetSimilarity::Jaccard => threshold * n_f,
            SetSimilarity::Dice => threshold * n_f / (2.0 - threshold),
            SetSimilarity::Cosine => threshold * threshold * n_f,
            SetSimilarity::Overlap => 1.0,
        };
        ((raw - 1e-9).ceil().max(1.0) as usize).min(n)
    }

    /// Minimum number of shared tokens required for two sets of sizes
    /// `(nx, ny)` to reach `threshold`. Derived from the measure's
    /// definition; used by length-aware filters and the tests.
    pub fn overlap_lower_bound(&self, nx: usize, ny: usize, threshold: f64) -> usize {
        let (nx, ny) = (nx as f64, ny as f64);
        let raw = match self {
            SetSimilarity::Jaccard => threshold / (1.0 + threshold) * (nx + ny),
            SetSimilarity::Dice => threshold * (nx + ny) / 2.0,
            SetSimilarity::Cosine => threshold * (nx * ny).sqrt(),
            SetSimilarity::Overlap => threshold * nx.min(ny),
        };
        // ceil with a tiny epsilon so e.g. exactly-integral bounds survive
        // floating point noise.
        (raw - 1e-9).ceil().max(0.0) as usize
    }
}

/// Size of the intersection of two sorted deduplicated slices (linear merge).
pub fn intersection_size<T: Ord>(x: &[T], y: &[T]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < x.len() && j < y.len() {
        match x[i].cmp(&y[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Levenshtein edit distance with the standard two-row DP.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Banded edit distance: returns `None` early if the distance exceeds
/// `max_dist`, skipping most of the DP table. Used when verification only
/// needs "within k edits or not".
pub fn edit_distance_within(a: &str, b: &str, max_dist: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > max_dist {
        return None;
    }
    if a.is_empty() {
        return Some(b.len());
    }
    if b.is_empty() {
        return Some(a.len());
    }
    const INF: usize = usize::MAX / 2;
    let mut prev = vec![INF; b.len() + 1];
    let mut cur = vec![INF; b.len() + 1];
    for (j, slot) in prev.iter_mut().enumerate().take(max_dist.min(b.len()) + 1) {
        *slot = j;
    }
    for (i, &ca) in a.iter().enumerate() {
        let lo = (i + 1).saturating_sub(max_dist).max(1);
        let hi = (i + 1 + max_dist).min(b.len());
        if lo > hi {
            return None;
        }
        cur[lo - 1] = if i < max_dist { i + 1 } else { INF };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let cost = usize::from(ca != b[j - 1]);
            let val = (prev[j - 1] + cost).min(prev[j] + 1).min(cur[j - 1] + 1);
            cur[j] = val;
            row_min = row_min.min(val);
        }
        if hi < b.len() {
            cur[hi + 1..].fill(INF);
        }
        if row_min > max_dist {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(INF);
    }
    let d = prev[b.len()];
    (d <= max_dist).then_some(d)
}

/// Normalized edit similarity: `1 - dist / max(|a|, |b|)` (1.0 for two
/// empty strings).
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn jaccard_known_values() {
        let x = s(&["a", "b", "c"]);
        let y = s(&["b", "c", "d"]);
        assert!((SetSimilarity::Jaccard.compute(&x, &y) - 0.5).abs() < 1e-12);
        assert_eq!(SetSimilarity::Jaccard.compute(&x, &x), 1.0);
        let z = s(&["x"]);
        assert_eq!(SetSimilarity::Jaccard.compute(&x, &z), 0.0);
    }

    #[test]
    fn dice_cosine_overlap_known_values() {
        let x = s(&["a", "b"]);
        let y = s(&["b", "c"]);
        assert!((SetSimilarity::Dice.compute(&x, &y) - 0.5).abs() < 1e-12);
        assert!((SetSimilarity::Cosine.compute(&x, &y) - 0.5).abs() < 1e-12);
        assert!((SetSimilarity::Overlap.compute(&x, &y) - 0.5).abs() < 1e-12);
        let sub = s(&["a"]);
        assert_eq!(SetSimilarity::Overlap.compute(&x, &sub), 1.0);
    }

    #[test]
    fn empty_set_conventions() {
        let e: Vec<String> = vec![];
        let x = s(&["a"]);
        for m in [
            SetSimilarity::Jaccard,
            SetSimilarity::Dice,
            SetSimilarity::Cosine,
            SetSimilarity::Overlap,
        ] {
            assert_eq!(m.compute(&e, &e), 1.0, "{m:?} on empty/empty");
            assert_eq!(m.compute(&e, &x), 0.0, "{m:?} on empty/nonempty");
        }
    }

    #[test]
    fn overlap_bound_is_tight_for_jaccard() {
        // If two sets of size 4 must have Jaccard >= 0.5 they share >= ceil(0.5/1.5*8)=3 tokens.
        assert_eq!(SetSimilarity::Jaccard.overlap_lower_bound(4, 4, 0.5), 3);
        // sanity: bound never exceeds min size for equal-size sets at θ=1
        assert_eq!(SetSimilarity::Jaccard.overlap_lower_bound(5, 5, 1.0), 5);
    }

    #[test]
    fn intersection_merge() {
        assert_eq!(intersection_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(intersection_size::<u8>(&[], &[]), 0);
        assert_eq!(intersection_size(&[1], &[1]), 1);
    }

    #[test]
    fn edit_distance_known_values() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("same", "same"), 0);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn banded_matches_full_when_within() {
        let cases = [("kitten", "sitting"), ("abcdef", "azcdef"), ("", ""), ("a", "b")];
        for (a, b) in cases {
            let full = edit_distance(a, b);
            assert_eq!(edit_distance_within(a, b, full), Some(full), "{a} vs {b}");
            assert_eq!(edit_distance_within(a, b, full + 2), Some(full));
            if full > 0 {
                assert_eq!(edit_distance_within(a, b, full - 1), None);
            }
        }
    }

    #[test]
    fn banded_early_exit_on_length_gap() {
        assert_eq!(edit_distance_within("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn edit_similarity_range() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("kitten", "sitting");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let x = s(&["a", "b", "c", "d"]);
        let y = s(&["c", "d", "e"]);
        for m in [
            SetSimilarity::Jaccard,
            SetSimilarity::Dice,
            SetSimilarity::Cosine,
            SetSimilarity::Overlap,
        ] {
            assert_eq!(m.compute(&x, &y), m.compute(&y, &x));
        }
        assert_eq!(edit_distance("abc", "acbd"), edit_distance("acbd", "abc"));
    }
}
