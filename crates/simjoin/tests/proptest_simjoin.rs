//! Property tests for the similarity-join substrate.
//!
//! The property CrowdER's correctness rests on: the prefix-filtered join
//! returns *exactly* the pairs the brute-force oracle returns — for any
//! corpus, measure, and threshold. Plus metric sanity for edit distance.

use proptest::prelude::*;
use reprowd_simjoin::join::{brute_force_self_join, self_join, JoinConfig};
use reprowd_simjoin::similarity::{edit_distance, edit_distance_within, SetSimilarity};
use reprowd_simjoin::tokenize::{qgram_set, word_set};

/// Short records over a tiny vocabulary, so collisions are common.
fn record_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "apple", "pear", "ibm", "phone", "red", "blue", "pro", "max", "mini", "x",
        ]),
        0..6,
    )
    .prop_map(|words| words.join(" "))
}

fn measure_strategy() -> impl Strategy<Value = SetSimilarity> {
    prop::sample::select(vec![
        SetSimilarity::Jaccard,
        SetSimilarity::Dice,
        SetSimilarity::Cosine,
        SetSimilarity::Overlap,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn filtered_join_equals_oracle(
        records in prop::collection::vec(record_strategy(), 0..25),
        measure in measure_strategy(),
        threshold in 0.05f64..=1.0,
    ) {
        let cfg = JoinConfig::new(measure, threshold);
        let fast = self_join(&records, &cfg);
        let slow = brute_force_self_join(&records, &cfg);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn edit_distance_is_a_metric(
        a in "[a-c]{0,8}",
        b in "[a-c]{0,8}",
        c in "[a-c]{0,8}",
    ) {
        let dab = edit_distance(&a, &b);
        let dba = edit_distance(&b, &a);
        prop_assert_eq!(dab, dba); // symmetry
        prop_assert_eq!(edit_distance(&a, &a), 0); // identity
        if a != b {
            prop_assert!(dab > 0);
        }
        // triangle inequality
        let dac = edit_distance(&a, &c);
        let dcb = edit_distance(&c, &b);
        prop_assert!(dab <= dac + dcb);
    }

    #[test]
    fn banded_edit_distance_agrees_with_full(
        a in "[a-d]{0,10}",
        b in "[a-d]{0,10}",
        band in 0usize..12,
    ) {
        let full = edit_distance(&a, &b);
        match edit_distance_within(&a, &b, band) {
            Some(d) => {
                prop_assert_eq!(d, full);
                prop_assert!(d <= band);
            }
            None => prop_assert!(full > band),
        }
    }

    #[test]
    fn tokenization_is_idempotent_and_sorted(s in ".{0,40}") {
        let w1 = word_set(&s);
        let rejoined = w1.join(" ");
        let w2 = word_set(&rejoined);
        prop_assert_eq!(&w1, &w2);
        prop_assert!(w1.windows(2).all(|w| w[0] < w[1]));

        let q = qgram_set(&s, 2);
        prop_assert!(q.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn similarity_bounded_and_reflexive(
        a in record_strategy(),
        b in record_strategy(),
        measure in measure_strategy(),
    ) {
        let sa = word_set(&a);
        let sb = word_set(&b);
        let sim = measure.compute(&sa, &sb);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&sim), "sim out of range: {}", sim);
        prop_assert_eq!(measure.compute(&sa, &sa), 1.0);
    }
}
