//! Entity-resolution corpus generator.
//!
//! Generates `n_entities` distinct base records, then emits 1..=k noisy
//! duplicates of each. The ground truth is the partition of records by the
//! entity they denote — exactly what CrowdER (E6) and the transitive join
//! (E7) are scored against.

use crate::text::{perturb, CATEGORY_POOL, CITY_POOL, NAME_POOL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of an ER corpus.
#[derive(Debug, Clone)]
pub struct ErConfig {
    /// Number of distinct real-world entities.
    pub n_entities: usize,
    /// Minimum duplicates per entity (≥ 1 = the clean record itself).
    pub min_dups: usize,
    /// Maximum duplicates per entity.
    pub max_dups: usize,
    /// Per-token typo probability in duplicates.
    pub typo_p: f64,
    /// Per-token abbreviation probability.
    pub abbr_p: f64,
    /// Per-token drop probability.
    pub drop_p: f64,
    /// Whole-record token-rotation probability.
    pub shuffle_p: f64,
    /// RNG seed — corpora are fully determined by config + seed.
    pub seed: u64,
}

impl Default for ErConfig {
    fn default() -> Self {
        ErConfig {
            n_entities: 100,
            min_dups: 1,
            max_dups: 3,
            typo_p: 0.15,
            abbr_p: 0.1,
            drop_p: 0.05,
            shuffle_p: 0.2,
            seed: 7,
        }
    }
}

/// One record of the corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErRecord {
    /// Position in [`ErCorpus::records`].
    pub id: usize,
    /// The (possibly noisy) textual content.
    pub text: String,
    /// Ground-truth entity this record denotes.
    pub entity_id: usize,
}

/// A generated corpus plus its ground truth.
#[derive(Debug, Clone)]
pub struct ErCorpus {
    /// All records, duplicates interleaved in generation order.
    pub records: Vec<ErRecord>,
    /// Number of distinct entities.
    pub n_entities: usize,
}

impl ErCorpus {
    /// Generates a corpus from `config` (deterministic).
    pub fn generate(config: &ErConfig) -> Self {
        assert!(config.min_dups >= 1, "min_dups must be at least 1");
        assert!(config.max_dups >= config.min_dups, "max_dups < min_dups");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut records = Vec::new();
        for entity in 0..config.n_entities {
            let base = base_record(&mut rng, entity);
            let dups = rng.gen_range(config.min_dups..=config.max_dups);
            for d in 0..dups {
                let text = if d == 0 {
                    base.clone()
                } else {
                    perturb(
                        &mut rng,
                        &base,
                        config.typo_p,
                        config.abbr_p,
                        config.drop_p,
                        config.shuffle_p,
                    )
                };
                records.push(ErRecord { id: records.len(), text, entity_id: entity });
            }
        }
        ErCorpus { records, n_entities: config.n_entities }
    }

    /// All matching pairs `(i, j)`, `i < j`, under the ground truth.
    pub fn true_pairs(&self) -> Vec<(usize, usize)> {
        let mut by_entity: Vec<Vec<usize>> = vec![Vec::new(); self.n_entities];
        for r in &self.records {
            by_entity[r.entity_id].push(r.id);
        }
        let mut pairs = Vec::new();
        for members in by_entity {
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    pairs.push((members[i], members[j]));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// The record texts, in id order (what the join operators consume).
    pub fn texts(&self) -> Vec<String> {
        self.records.iter().map(|r| r.text.clone()).collect()
    }

    /// Ground-truth cluster id per record, in id order.
    pub fn truth_clusters(&self) -> Vec<usize> {
        self.records.iter().map(|r| r.entity_id).collect()
    }
}

/// A clean base record: "name name city category number".
fn base_record(rng: &mut StdRng, entity: usize) -> String {
    let n1 = NAME_POOL[rng.gen_range(0..NAME_POOL.len())];
    let n2 = NAME_POOL[rng.gen_range(0..NAME_POOL.len())];
    let city = CITY_POOL[rng.gen_range(0..CITY_POOL.len())];
    let cat = CATEGORY_POOL[rng.gen_range(0..CATEGORY_POOL.len())];
    // The entity ordinal keeps base records of distinct entities distinct
    // even when the word draw collides.
    format!("{n1} {n2} {cat} {city} unit{entity}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ErConfig::default();
        let a = ErCorpus::generate(&cfg);
        let b = ErCorpus::generate(&cfg);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn seed_changes_corpus() {
        let a = ErCorpus::generate(&ErConfig::default());
        let b = ErCorpus::generate(&ErConfig { seed: 8, ..ErConfig::default() });
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn duplicate_counts_within_bounds() {
        let cfg = ErConfig { n_entities: 50, min_dups: 2, max_dups: 4, ..ErConfig::default() };
        let c = ErCorpus::generate(&cfg);
        let mut counts = vec![0usize; cfg.n_entities];
        for r in &c.records {
            counts[r.entity_id] += 1;
        }
        assert!(counts.iter().all(|&n| (2..=4).contains(&n)), "{counts:?}");
    }

    #[test]
    fn true_pairs_consistent_with_clusters() {
        let cfg = ErConfig { n_entities: 20, min_dups: 2, max_dups: 3, ..ErConfig::default() };
        let c = ErCorpus::generate(&cfg);
        let pairs = c.true_pairs();
        for &(i, j) in &pairs {
            assert_eq!(c.records[i].entity_id, c.records[j].entity_id);
            assert!(i < j);
        }
        // Count check: sum of C(k,2) per entity.
        let mut counts = vec![0usize; cfg.n_entities];
        for r in &c.records {
            counts[r.entity_id] += 1;
        }
        let expected: usize = counts.iter().map(|&k| k * (k - 1) / 2).sum();
        assert_eq!(pairs.len(), expected);
    }

    #[test]
    fn singleton_entities_have_no_pairs() {
        let cfg = ErConfig { n_entities: 10, min_dups: 1, max_dups: 1, ..ErConfig::default() };
        let c = ErCorpus::generate(&cfg);
        assert!(c.true_pairs().is_empty());
        assert_eq!(c.records.len(), 10);
    }

    #[test]
    fn records_never_empty() {
        let cfg = ErConfig {
            n_entities: 30,
            min_dups: 3,
            max_dups: 3,
            typo_p: 0.4,
            abbr_p: 0.3,
            drop_p: 0.3,
            shuffle_p: 0.5,
            ..ErConfig::default()
        };
        let c = ErCorpus::generate(&cfg);
        assert!(c.records.iter().all(|r| !r.text.trim().is_empty()));
    }

    #[test]
    #[should_panic(expected = "min_dups")]
    fn zero_min_dups_rejected() {
        ErCorpus::generate(&ErConfig { min_dups: 0, ..ErConfig::default() });
    }

    #[test]
    fn duplicates_stay_textually_similar() {
        // With mild noise, duplicates should share most tokens with their base.
        let cfg = ErConfig {
            n_entities: 40,
            min_dups: 2,
            max_dups: 2,
            typo_p: 0.1,
            abbr_p: 0.0,
            drop_p: 0.0,
            shuffle_p: 0.0,
            ..ErConfig::default()
        };
        let c = ErCorpus::generate(&cfg);
        let mut sims = Vec::new();
        for pair in c.true_pairs() {
            let a: std::collections::HashSet<&str> =
                c.records[pair.0].text.split_whitespace().collect();
            let b: std::collections::HashSet<&str> =
                c.records[pair.1].text.split_whitespace().collect();
            let inter = a.intersection(&b).count() as f64;
            let union = a.union(&b).count() as f64;
            sims.push(inter / union);
        }
        let mean = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(mean > 0.5, "duplicates too dissimilar: mean jaccard {mean}");
    }
}
