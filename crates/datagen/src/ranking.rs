//! Latent-score ranking datasets for crowd sort / max / top-k (E11).
//!
//! Each item gets a latent quality score; a crowd worker comparing items
//! `i` and `j` prefers the better one with the Bradley–Terry probability
//! `σ((s_i - s_j) / temperature)`, degraded further by the worker's own
//! noise. The simulator's comparison answer model consumes these scores.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a ranking dataset.
#[derive(Debug, Clone)]
pub struct RankingConfig {
    /// Number of items to rank.
    pub n_items: usize,
    /// Scores are drawn uniformly from `[0, score_range]`.
    pub score_range: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RankingConfig {
    fn default() -> Self {
        RankingConfig { n_items: 50, score_range: 10.0, seed: 13 }
    }
}

/// Items with latent scores and the implied true ranking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankingDataset {
    /// Latent score per item (higher = better).
    pub scores: Vec<f64>,
    /// Item descriptions usable as CrowdData objects.
    pub items: Vec<String>,
}

impl RankingDataset {
    /// Generates a dataset (deterministic in config + seed).
    pub fn generate(config: &RankingConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scores: Vec<f64> =
            (0..config.n_items).map(|_| rng.gen::<f64>() * config.score_range).collect();
        let items = (0..config.n_items).map(|i| format!("photo://entry/{i:05}.jpg")).collect();
        RankingDataset { scores, items }
    }

    /// Item indices sorted best-first (ties broken by index).
    pub fn true_ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b].partial_cmp(&self.scores[a]).unwrap().then(a.cmp(&b))
        });
        idx
    }

    /// The index of the truly best item.
    pub fn true_max(&self) -> Option<usize> {
        self.true_ranking().first().copied()
    }
}

/// Bradley–Terry probability that the item with score `si` is preferred
/// over the one with score `sj`, at the given `temperature` (> 0; lower =
/// more decisive comparisons).
pub fn comparison_probability(si: f64, sj: f64, temperature: f64) -> f64 {
    assert!(temperature > 0.0, "temperature must be positive");
    1.0 / (1.0 + (-(si - sj) / temperature).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = RankingConfig::default();
        assert_eq!(
            RankingDataset::generate(&cfg).scores,
            RankingDataset::generate(&cfg).scores
        );
    }

    #[test]
    fn true_ranking_is_sorted_by_score() {
        let d = RankingDataset::generate(&RankingConfig::default());
        let rank = d.true_ranking();
        for w in rank.windows(2) {
            assert!(d.scores[w[0]] >= d.scores[w[1]]);
        }
        assert_eq!(rank.len(), d.scores.len());
    }

    #[test]
    fn true_max_has_highest_score() {
        let d = RankingDataset::generate(&RankingConfig::default());
        let max = d.true_max().unwrap();
        assert!(d.scores.iter().all(|&s| s <= d.scores[max]));
    }

    #[test]
    fn empty_dataset_has_no_max() {
        let d = RankingDataset::generate(&RankingConfig { n_items: 0, ..Default::default() });
        assert_eq!(d.true_max(), None);
        assert!(d.true_ranking().is_empty());
    }

    #[test]
    fn comparison_probability_properties() {
        // Equal scores -> exactly 0.5.
        assert!((comparison_probability(3.0, 3.0, 1.0) - 0.5).abs() < 1e-12);
        // Better item preferred with p > 0.5.
        assert!(comparison_probability(5.0, 3.0, 1.0) > 0.5);
        // Complementarity.
        let p = comparison_probability(5.0, 3.0, 1.0);
        let q = comparison_probability(3.0, 5.0, 1.0);
        assert!((p + q - 1.0).abs() < 1e-12);
        // Lower temperature = more decisive.
        assert!(
            comparison_probability(5.0, 3.0, 0.5) > comparison_probability(5.0, 3.0, 2.0)
        );
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn zero_temperature_rejected() {
        comparison_probability(1.0, 0.0, 0.0);
    }
}
