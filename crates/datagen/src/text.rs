//! Word pools and string-noise primitives.
//!
//! The noise operations mirror how real-world duplicate records differ:
//! typos (substitution/deletion/transposition), token drops,
//! abbreviations, and token reordering.

use rand::rngs::StdRng;
use rand::Rng;

/// Restaurant-style name fragments (the classic ER benchmark domain).
pub const NAME_POOL: &[&str] = &[
    "golden", "dragon", "palace", "kitchen", "garden", "house", "grill", "bistro", "cafe",
    "corner", "royal", "lotus", "bamboo", "harbor", "sunset", "olive", "maple", "cedar",
    "urban", "rustic", "silver", "copper", "blue", "red", "green", "little", "grand",
];

/// City names for the address-ish field.
pub const CITY_POOL: &[&str] = &[
    "vancouver", "burnaby", "richmond", "surrey", "seattle", "portland", "toronto",
    "montreal", "calgary", "victoria",
];

/// Cuisine/category tokens.
pub const CATEGORY_POOL: &[&str] = &[
    "chinese", "italian", "mexican", "thai", "indian", "french", "japanese", "korean",
    "vegan", "seafood", "bbq", "noodle", "pizza", "sushi", "burger",
];

/// Applies one random character-level typo (substitute, delete, duplicate,
/// or transpose). Strings shorter than 2 characters are returned unchanged.
pub fn typo(rng: &mut StdRng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_string();
    }
    let i = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            // substitute with a nearby letter
            out[i] = (b'a' + rng.gen_range(0..26u8)) as char;
        }
        1 => {
            out.remove(i);
        }
        2 => {
            let c = out[i];
            out.insert(i, c);
        }
        _ => {
            if i + 1 < out.len() {
                out.swap(i, i + 1);
            } else {
                out.swap(i - 1, i);
            }
        }
    }
    out.into_iter().collect()
}

/// Abbreviates a token to its first 1–3 characters (like "restaurant" →
/// "rest"), keeping at least one character.
pub fn abbreviate(rng: &mut StdRng, token: &str) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() <= 2 {
        return token.to_string();
    }
    let keep = rng.gen_range(1..=3usize).min(chars.len() - 1);
    chars[..keep].iter().collect()
}

/// Perturbs a whitespace-tokenized string: each token independently gets a
/// typo with probability `typo_p`, is abbreviated with probability
/// `abbr_p`, or dropped with probability `drop_p`; finally the token order
/// may be rotated with probability `shuffle_p`. At least one token always
/// survives, so records never become empty.
pub fn perturb(
    rng: &mut StdRng,
    s: &str,
    typo_p: f64,
    abbr_p: f64,
    drop_p: f64,
    shuffle_p: f64,
) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    let mut out: Vec<String> = Vec::with_capacity(tokens.len());
    for tok in &tokens {
        let roll: f64 = rng.gen();
        if roll < drop_p && out.len() + 1 < tokens.len() {
            continue; // drop (but never drop the final remaining token)
        } else if roll < drop_p + typo_p {
            out.push(typo(rng, tok));
        } else if roll < drop_p + typo_p + abbr_p {
            out.push(abbreviate(rng, tok));
        } else {
            out.push(tok.to_string());
        }
    }
    if out.is_empty() {
        out.push(tokens.first().unwrap_or(&"x").to_string());
    }
    if rng.gen::<f64>() < shuffle_p && out.len() > 1 {
        let rot = rng.gen_range(1..out.len());
        out.rotate_left(rot);
    }
    out.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn typo_changes_or_preserves_length_sanely() {
        let mut r = rng(1);
        for _ in 0..100 {
            let t = typo(&mut r, "restaurant");
            assert!(!t.is_empty());
            assert!((t.len() as i64 - 10).abs() <= 1);
        }
    }

    #[test]
    fn typo_short_string_unchanged() {
        let mut r = rng(2);
        assert_eq!(typo(&mut r, "a"), "a");
        assert_eq!(typo(&mut r, ""), "");
    }

    #[test]
    fn abbreviate_shortens() {
        let mut r = rng(3);
        for _ in 0..50 {
            let a = abbreviate(&mut r, "vancouver");
            assert!(!a.is_empty() && a.len() < "vancouver".len());
            assert!("vancouver".starts_with(&a));
        }
        assert_eq!(abbreviate(&mut r, "ab"), "ab");
    }

    #[test]
    fn perturb_never_empties() {
        let mut r = rng(4);
        for _ in 0..200 {
            let p = perturb(&mut r, "golden dragon palace", 0.5, 0.3, 0.9, 0.5);
            assert!(!p.trim().is_empty());
        }
    }

    #[test]
    fn perturb_zero_noise_is_identity_modulo_whitespace() {
        let mut r = rng(5);
        assert_eq!(perturb(&mut r, "a  b   c", 0.0, 0.0, 0.0, 0.0), "a b c");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..20 {
            assert_eq!(
                perturb(&mut a, "golden dragon cafe", 0.3, 0.2, 0.1, 0.3),
                perturb(&mut b, "golden dragon cafe", 0.3, 0.2, 0.1, 0.3)
            );
        }
    }
}
