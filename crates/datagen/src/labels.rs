//! Labeling datasets — the paper's Figure 2 workload at scale.
//!
//! Each item has a ground-truth label and a *difficulty* in `[0, 1]`: the
//! worker simulator raises a worker's error probability on hard items, which
//! is what makes redundancy/aggregation sweeps (E8) interesting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a labeling dataset.
#[derive(Debug, Clone)]
pub struct LabelConfig {
    /// Number of items.
    pub n_items: usize,
    /// Size of the label space.
    pub n_labels: usize,
    /// Class priors; must sum to ~1. Empty = uniform.
    pub priors: Vec<f64>,
    /// Mean item difficulty (Beta-ish around this mean).
    pub mean_difficulty: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabelConfig {
    fn default() -> Self {
        LabelConfig { n_items: 100, n_labels: 2, priors: vec![], mean_difficulty: 0.3, seed: 11 }
    }
}

/// A generated labeling dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelDataset {
    /// Ground-truth label per item.
    pub truth: Vec<usize>,
    /// Difficulty per item in `[0, 1]`.
    pub difficulty: Vec<f64>,
    /// Label-space size.
    pub n_labels: usize,
    /// Item descriptions (e.g. fake image URLs) usable as CrowdData objects.
    pub items: Vec<String>,
}

impl LabelDataset {
    /// Generates a dataset (deterministic in config + seed).
    pub fn generate(config: &LabelConfig) -> Self {
        assert!(config.n_labels >= 2, "need at least two labels");
        let priors = if config.priors.is_empty() {
            vec![1.0 / config.n_labels as f64; config.n_labels]
        } else {
            assert_eq!(config.priors.len(), config.n_labels, "priors/labels mismatch");
            let s: f64 = config.priors.iter().sum();
            assert!(s > 0.0, "priors must have positive mass");
            config.priors.iter().map(|p| p / s).collect()
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut truth = Vec::with_capacity(config.n_items);
        let mut difficulty = Vec::with_capacity(config.n_items);
        let mut items = Vec::with_capacity(config.n_items);
        for i in 0..config.n_items {
            let roll: f64 = rng.gen();
            let mut acc = 0.0;
            let mut label = config.n_labels - 1;
            for (l, &p) in priors.iter().enumerate() {
                acc += p;
                if roll < acc {
                    label = l;
                    break;
                }
            }
            truth.push(label);
            // Triangular-ish sample around the mean, clamped to [0, 1].
            let d = (config.mean_difficulty + (rng.gen::<f64>() - 0.5) * 0.6).clamp(0.0, 1.0);
            difficulty.push(d);
            items.push(format!("img://dataset/{i:06}.jpg"));
        }
        LabelDataset { truth, difficulty, n_labels: config.n_labels, items }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// True if the dataset has no items.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = LabelConfig::default();
        let a = LabelDataset::generate(&cfg);
        let b = LabelDataset::generate(&cfg);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.difficulty, b.difficulty);
    }

    #[test]
    fn respects_priors_roughly() {
        let cfg = LabelConfig {
            n_items: 5000,
            n_labels: 2,
            priors: vec![0.8, 0.2],
            ..LabelConfig::default()
        };
        let d = LabelDataset::generate(&cfg);
        let zeros = d.truth.iter().filter(|&&t| t == 0).count() as f64 / 5000.0;
        assert!((zeros - 0.8).abs() < 0.05, "empirical prior {zeros}");
    }

    #[test]
    fn uniform_priors_by_default() {
        let cfg = LabelConfig { n_items: 6000, n_labels: 3, ..LabelConfig::default() };
        let d = LabelDataset::generate(&cfg);
        for l in 0..3 {
            let frac = d.truth.iter().filter(|&&t| t == l).count() as f64 / 6000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.05);
        }
    }

    #[test]
    fn difficulty_in_unit_interval() {
        let d = LabelDataset::generate(&LabelConfig { n_items: 500, ..LabelConfig::default() });
        assert!(d.difficulty.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "at least two labels")]
    fn single_label_rejected() {
        LabelDataset::generate(&LabelConfig { n_labels: 1, ..LabelConfig::default() });
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_prior_arity_rejected() {
        LabelDataset::generate(&LabelConfig {
            n_labels: 3,
            priors: vec![0.5, 0.5],
            ..LabelConfig::default()
        });
    }

    #[test]
    fn items_are_unique_urls() {
        let d = LabelDataset::generate(&LabelConfig { n_items: 100, ..LabelConfig::default() });
        let set: std::collections::HashSet<&String> = d.items.iter().collect();
        assert_eq!(set.len(), 100);
    }
}
