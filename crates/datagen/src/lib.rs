//! # reprowd-datagen
//!
//! Seeded synthetic workload generators for the Reprowd experiment suite.
//!
//! The paper's evaluation workloads (image labeling, entity resolution over
//! product/restaurant records) rely on datasets and human answers we cannot
//! ship. This crate generates their synthetic equivalents with controllable
//! parameters and *deterministic* seeds, so every experiment in
//! `EXPERIMENTS.md` regenerates byte-identical inputs:
//!
//! * [`er`] — entity-resolution corpora: clusters of duplicated records with
//!   typo/abbreviation/token noise and ground-truth cluster ids (the
//!   CrowdER / transitive-join workload).
//! * [`labels`] — labeling datasets with per-item difficulty (the Figure 2
//!   image-labeling workload).
//! * [`ranking`] — items with latent quality scores for sort/max/top-k
//!   experiments, plus the Bradley–Terry comparison model.
//! * [`text`] — small word pools and string-noise primitives shared by the
//!   generators.

pub mod er;
pub mod labels;
pub mod ranking;
pub mod text;

pub use er::{ErConfig, ErCorpus, ErRecord};
pub use labels::{LabelConfig, LabelDataset};
pub use ranking::{comparison_probability, RankingConfig, RankingDataset};
