//! One-coin EM: each worker is a biased coin.
//!
//! The simplest latent-truth model: worker `j` answers correctly with
//! probability `a_j` regardless of the true label, and errs uniformly over
//! the other `K-1` labels. Estimated with EM, initialized from majority
//! vote so the procedure is deterministic.

use crate::truth::{LabelId, VoteMatrix, WorkerId};
use std::collections::HashMap;

/// Hyper-parameters for one-coin EM.
#[derive(Debug, Clone)]
pub struct OneCoinConfig {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the max absolute change of any posterior falls below this.
    pub tolerance: f64,
    /// Worker accuracies are clamped into `[epsilon, 1 - epsilon]` so a
    /// single perfect/terrible streak cannot produce infinite log-odds.
    pub epsilon: f64,
}

impl Default for OneCoinConfig {
    fn default() -> Self {
        OneCoinConfig { max_iterations: 100, tolerance: 1e-6, epsilon: 1e-3 }
    }
}

/// Fitted one-coin model.
#[derive(Debug, Clone)]
pub struct OneCoinModel {
    /// `posteriors[i][t]` = P(true label of item `i` = `t` | votes).
    pub posteriors: Vec<Vec<f64>>,
    /// Estimated accuracy per worker.
    pub accuracies: HashMap<WorkerId, f64>,
    /// Estimated class priors.
    pub priors: Vec<f64>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iterations`.
    pub converged: bool,
}

impl OneCoinModel {
    /// Hard labels: argmax posterior per item; `None` for items without votes.
    pub fn labels(&self, matrix: &VoteMatrix) -> Vec<Option<LabelId>> {
        argmax_labels(&self.posteriors, matrix)
    }
}

/// Estimator entry point.
pub struct OneCoin;

impl OneCoin {
    /// Fits the one-coin model to `matrix`.
    pub fn fit(matrix: &VoteMatrix, config: &OneCoinConfig) -> OneCoinModel {
        let k = matrix.n_labels.max(1);
        let mut posteriors = init_posteriors_from_votes(matrix);
        let workers = matrix.workers();
        let mut accuracies: HashMap<WorkerId, f64> =
            workers.iter().map(|&w| (w, 0.8)).collect();
        let mut priors = vec![1.0 / k as f64; k];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..config.max_iterations {
            iterations += 1;
            // ---- M step: accuracies and priors from current posteriors.
            let mut correct: HashMap<WorkerId, f64> = HashMap::new();
            let mut total: HashMap<WorkerId, f64> = HashMap::new();
            let mut prior_acc = vec![0.0f64; k];
            let mut items_with_votes = 0usize;
            for (i, votes) in matrix.items.iter().enumerate() {
                if votes.is_empty() {
                    continue;
                }
                items_with_votes += 1;
                for (t, &p) in posteriors[i].iter().enumerate() {
                    prior_acc[t] += p;
                }
                for &(w, l) in votes {
                    *correct.entry(w).or_insert(0.0) += posteriors[i][l];
                    *total.entry(w).or_insert(0.0) += 1.0;
                    let _ = l;
                }
            }
            if items_with_votes > 0 {
                for p in prior_acc.iter_mut() {
                    *p /= items_with_votes as f64;
                }
                priors = prior_acc;
            }
            for &w in &workers {
                let c = correct.get(&w).copied().unwrap_or(0.0);
                let t = total.get(&w).copied().unwrap_or(0.0);
                let a = if t > 0.0 { c / t } else { 0.5 };
                accuracies.insert(w, a.clamp(config.epsilon, 1.0 - config.epsilon));
            }

            // ---- E step: recompute posteriors in log space.
            let mut max_delta = 0.0f64;
            for (i, votes) in matrix.items.iter().enumerate() {
                if votes.is_empty() {
                    continue;
                }
                let mut logp: Vec<f64> =
                    priors.iter().map(|&p| p.max(1e-300).ln()).collect();
                for &(w, l) in votes {
                    let a = accuracies[&w];
                    let wrong = ((1.0 - a) / (k as f64 - 1.0).max(1.0)).max(1e-300);
                    for (t, lp) in logp.iter_mut().enumerate() {
                        *lp += if t == l { a.ln() } else { wrong.ln() };
                    }
                }
                let new_post = normalize_log(&logp);
                for t in 0..k {
                    max_delta = max_delta.max((new_post[t] - posteriors[i][t]).abs());
                }
                posteriors[i] = new_post;
            }
            if max_delta < config.tolerance {
                converged = true;
                break;
            }
        }
        OneCoinModel { posteriors, accuracies, priors, iterations, converged }
    }
}

/// Initial posteriors: each item's (smoothed, normalized) vote histogram.
pub(crate) fn init_posteriors_from_votes(matrix: &VoteMatrix) -> Vec<Vec<f64>> {
    let k = matrix.n_labels.max(1);
    matrix
        .items
        .iter()
        .map(|votes| {
            let mut h = vec![1e-2f64; k]; // light smoothing avoids hard zeros
            for &(_, l) in votes {
                h[l] += 1.0;
            }
            let s: f64 = h.iter().sum();
            h.iter().map(|&x| x / s).collect()
        })
        .collect()
}

/// Softmax-style normalization of log-probabilities.
pub(crate) fn normalize_log(logp: &[f64]) -> Vec<f64> {
    let m = logp.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let exp: Vec<f64> = logp.iter().map(|&lp| (lp - m).exp()).collect();
    let s: f64 = exp.iter().sum();
    exp.iter().map(|&e| e / s).collect()
}

/// Argmax with deterministic (lowest-label) tie-breaking; `None` where an
/// item received no votes.
pub(crate) fn argmax_labels(
    posteriors: &[Vec<f64>],
    matrix: &VoteMatrix,
) -> Vec<Option<LabelId>> {
    posteriors
        .iter()
        .zip(&matrix.items)
        .map(|(post, votes)| {
            if votes.is_empty() {
                return None;
            }
            let mut best = 0;
            for (t, &p) in post.iter().enumerate() {
                if p > post[best] + 1e-15 {
                    best = t;
                }
            }
            Some(best)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::{majority_vote_matrix, TiePolicy};

    /// Deterministic synthetic crowd: `n_good` workers with accuracy ~0.9,
    /// `n_bad` with ~0.3 (adversarial-ish), labeling `n_items` binary items.
    fn synth(n_items: usize, n_good: usize, n_bad: usize) -> (VoteMatrix, Vec<LabelId>) {
        let truth: Vec<LabelId> = (0..n_items).map(|i| i % 2).collect();
        let mut m = VoteMatrix::new(2, n_items);
        // Simple deterministic pseudo-randomness: hash of (worker, item).
        let wrong = |w: u64, i: usize, rate_pct: u64| -> bool {
            let mut z = (w << 32) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            z % 100 < rate_pct
        };
        for w in 0..n_good as u64 {
            for (i, &t) in truth.iter().enumerate() {
                let l = if wrong(w + 1, i, 10) { 1 - t } else { t };
                m.push_vote(i, w + 1, l);
            }
        }
        for w in 0..n_bad as u64 {
            let wid = 1000 + w;
            for (i, &t) in truth.iter().enumerate() {
                let l = if wrong(wid, i, 70) { 1 - t } else { t };
                m.push_vote(i, wid, l);
            }
        }
        (m, truth)
    }

    fn hard_accuracy(pred: &[Option<LabelId>], truth: &[LabelId]) -> f64 {
        let correct =
            pred.iter().zip(truth).filter(|(p, t)| p.as_ref() == Some(t)).count();
        correct as f64 / truth.len() as f64
    }

    #[test]
    fn recovers_truth_with_good_workers() {
        let (m, truth) = synth(100, 5, 0);
        let model = OneCoin::fit(&m, &OneCoinConfig::default());
        assert!(model.converged);
        let acc = hard_accuracy(&model.labels(&m), &truth);
        assert!(acc >= 0.95, "accuracy {acc}");
    }

    #[test]
    fn estimates_worker_accuracy_ordering() {
        let (m, _) = synth(200, 3, 3);
        let model = OneCoin::fit(&m, &OneCoinConfig::default());
        for good in 1..=3u64 {
            for bad in 1000..1003u64 {
                assert!(
                    model.accuracies[&good] > model.accuracies[&bad],
                    "good {} ({}) should beat bad {} ({})",
                    good,
                    model.accuracies[&good],
                    bad,
                    model.accuracies[&bad]
                );
            }
        }
    }

    /// Spammer crowd: workers voting at 50% error carry zero signal, but
    /// majority vote still lets them dilute the two good workers. EM learns
    /// their accuracy ≈ 0.5 and discounts them.
    fn synth_with_spammers(n_items: usize, n_good: usize, n_spam: usize) -> (VoteMatrix, Vec<LabelId>) {
        let (mut m, truth) = synth(n_items, n_good, 0);
        let wrong = |w: u64, i: usize, rate_pct: u64| -> bool {
            let mut z = (w << 32) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            z % 100 < rate_pct
        };
        for w in 0..n_spam as u64 {
            let wid = 5000 + w;
            for (i, &t) in truth.iter().enumerate() {
                let l = if wrong(wid, i, 50) { 1 - t } else { t };
                m.push_vote(i, wid, l);
            }
        }
        (m, truth)
    }

    #[test]
    fn beats_majority_vote_with_spammer_majority() {
        // 2 good workers vs 3 spammers: MV is diluted by coin-flip votes;
        // EM learns to discount them.
        let (m, truth) = synth_with_spammers(300, 2, 3);
        let mv = majority_vote_matrix(&m, TiePolicy::LowestLabel);
        let model = OneCoin::fit(&m, &OneCoinConfig::default());
        let em = model.labels(&m);
        let acc_mv = hard_accuracy(&mv, &truth);
        let acc_em = hard_accuracy(&em, &truth);
        assert!(
            acc_em > acc_mv,
            "EM ({acc_em}) should beat MV ({acc_mv}) under a spammer majority"
        );
        // Two 90%-accurate workers fuse to ~0.90 at best (split votes are
        // decided by the spammers), so 0.85 is the right floor here.
        assert!(acc_em > 0.85, "EM accuracy {acc_em}");
        // And the spammers' estimated accuracy hovers near chance.
        for w in 5000..5003u64 {
            let a = model.accuracies[&w];
            assert!((0.3..0.7).contains(&a), "spammer {w} accuracy {a}");
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = VoteMatrix::new(2, 3);
        let model = OneCoin::fit(&m, &OneCoinConfig::default());
        assert_eq!(model.labels(&m), vec![None, None, None]);
    }

    #[test]
    fn posteriors_are_distributions() {
        let (m, _) = synth(50, 3, 1);
        let model = OneCoin::fit(&m, &OneCoinConfig::default());
        for post in &model.posteriors {
            let s: f64 = post.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(post.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (m, _) = synth(80, 3, 2);
        let a = OneCoin::fit(&m, &OneCoinConfig::default());
        let b = OneCoin::fit(&m, &OneCoinConfig::default());
        assert_eq!(a.posteriors, b.posteriors);
        assert_eq!(a.iterations, b.iterations);
    }
}
