//! Weighted majority vote.
//!
//! Identical to plain majority vote except each worker's ballot counts with
//! a weight — typically their estimated accuracy from [`gold`](crate::gold)
//! calibration or an EM model. With uniform weights it reduces exactly to
//! majority vote (a property the tests pin down).

use crate::truth::{LabelId, VoteMatrix, WorkerId};
use crate::vote::TiePolicy;
use std::collections::HashMap;

/// Weighted majority over one item. Workers missing from `weights` count
/// with `default_weight`. Returns `None` on empty votes, zero total weight,
/// or ties under [`TiePolicy::Unresolved`].
pub fn weighted_majority_vote(
    votes: &[(WorkerId, LabelId)],
    n_labels: usize,
    weights: &HashMap<WorkerId, f64>,
    default_weight: f64,
    tie: TiePolicy,
) -> Option<LabelId> {
    if votes.is_empty() {
        return None;
    }
    let mut mass = vec![0.0f64; n_labels];
    for &(w, l) in votes {
        mass[l] += weights.get(&w).copied().unwrap_or(default_weight).max(0.0);
    }
    let best = mass.iter().fold(0.0f64, |a, &b| a.max(b));
    if best <= 0.0 {
        return None;
    }
    // Tolerance for float accumulation when comparing "tied" masses.
    let eps = 1e-12 * best.max(1.0);
    let mut winners = mass
        .iter()
        .enumerate()
        .filter(|&(_, &m)| (best - m).abs() <= eps)
        .map(|(l, _)| l);
    let first = winners.next().expect("best exists");
    match tie {
        TiePolicy::LowestLabel => Some(first),
        TiePolicy::Unresolved => {
            if winners.next().is_some() {
                None
            } else {
                Some(first)
            }
        }
    }
}

/// Weighted majority vote for every item of a matrix.
pub fn weighted_majority_vote_matrix(
    matrix: &VoteMatrix,
    weights: &HashMap<WorkerId, f64>,
    default_weight: f64,
    tie: TiePolicy,
) -> Vec<Option<LabelId>> {
    matrix
        .items
        .iter()
        .map(|v| weighted_majority_vote(v, matrix.n_labels, weights, default_weight, tie))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::majority_vote;

    #[test]
    fn uniform_weights_reduce_to_majority() {
        let weights = HashMap::new();
        let cases: Vec<Vec<(WorkerId, LabelId)>> = vec![
            vec![(1, 0), (2, 0), (3, 1)],
            vec![(1, 1), (2, 1)],
            vec![(1, 0)],
            vec![],
        ];
        for votes in cases {
            assert_eq!(
                weighted_majority_vote(&votes, 2, &weights, 1.0, TiePolicy::LowestLabel),
                majority_vote(&votes, 2, TiePolicy::LowestLabel),
                "votes: {votes:?}"
            );
        }
    }

    #[test]
    fn expert_outvotes_two_novices() {
        let mut weights = HashMap::new();
        weights.insert(1u64, 0.95);
        weights.insert(2u64, 0.4);
        weights.insert(3u64, 0.4);
        let votes = vec![(1, 1), (2, 0), (3, 0)];
        assert_eq!(
            weighted_majority_vote(&votes, 2, &weights, 1.0, TiePolicy::LowestLabel),
            Some(1)
        );
    }

    #[test]
    fn zero_total_weight_unresolved() {
        let mut weights = HashMap::new();
        weights.insert(1u64, 0.0);
        let votes = vec![(1, 1)];
        assert_eq!(weighted_majority_vote(&votes, 2, &weights, 0.0, TiePolicy::LowestLabel), None);
    }

    #[test]
    fn negative_weights_clamped_to_zero() {
        let mut weights = HashMap::new();
        weights.insert(1u64, -5.0);
        weights.insert(2u64, 0.5);
        let votes = vec![(1, 0), (2, 1)];
        assert_eq!(
            weighted_majority_vote(&votes, 2, &weights, 0.0, TiePolicy::LowestLabel),
            Some(1)
        );
    }

    #[test]
    fn exact_weight_tie_respects_policy() {
        let mut weights = HashMap::new();
        weights.insert(1u64, 0.5);
        weights.insert(2u64, 0.5);
        let votes = vec![(1, 0), (2, 1)];
        assert_eq!(
            weighted_majority_vote(&votes, 2, &weights, 0.0, TiePolicy::Unresolved),
            None
        );
        assert_eq!(
            weighted_majority_vote(&votes, 2, &weights, 0.0, TiePolicy::LowestLabel),
            Some(0)
        );
    }

    #[test]
    fn matrix_form_matches_scalar_form() {
        let m = VoteMatrix::from_triples(2, 2, vec![(0, 1, 0), (0, 2, 1), (1, 2, 1)]);
        let mut weights = HashMap::new();
        weights.insert(1u64, 0.9);
        weights.insert(2u64, 0.2);
        let out = weighted_majority_vote_matrix(&m, &weights, 1.0, TiePolicy::LowestLabel);
        assert_eq!(out, vec![Some(0), Some(1)]);
    }
}
