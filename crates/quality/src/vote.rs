//! Majority vote — the paper's running example aggregator (its Figure 2
//! labels images with three workers and takes the majority).

use crate::truth::{LabelId, VoteMatrix, WorkerId};

/// What to do when two or more labels tie for the most votes.
///
/// Reproducibility demands a *deterministic* policy: re-running Bob's
/// experiment must produce the same `mv` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TiePolicy {
    /// Return the smallest tied [`LabelId`]. Deterministic default.
    LowestLabel,
    /// Return `None` for the item, leaving it unresolved (callers may then
    /// raise redundancy for just those items).
    Unresolved,
}

/// Majority vote over one item's votes. Returns `None` for an empty vote
/// list, or on ties under [`TiePolicy::Unresolved`].
pub fn majority_vote(
    votes: &[(WorkerId, LabelId)],
    n_labels: usize,
    tie: TiePolicy,
) -> Option<LabelId> {
    if votes.is_empty() {
        return None;
    }
    let mut hist = vec![0usize; n_labels];
    for &(_, l) in votes {
        hist[l] += 1;
    }
    let best = *hist.iter().max().expect("n_labels > 0");
    let mut winners = hist.iter().enumerate().filter(|&(_, &c)| c == best).map(|(l, _)| l);
    let first = winners.next().expect("at least one winner");
    match tie {
        TiePolicy::LowestLabel => Some(first),
        TiePolicy::Unresolved => {
            if winners.next().is_some() {
                None
            } else {
                Some(first)
            }
        }
    }
}

/// Majority vote for every item of a matrix.
pub fn majority_vote_matrix(matrix: &VoteMatrix, tie: TiePolicy) -> Vec<Option<LabelId>> {
    matrix.items.iter().map(|votes| majority_vote(votes, matrix.n_labels, tie)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_majority() {
        let votes = vec![(1, 0), (2, 0), (3, 1)];
        assert_eq!(majority_vote(&votes, 2, TiePolicy::LowestLabel), Some(0));
        assert_eq!(majority_vote(&votes, 2, TiePolicy::Unresolved), Some(0));
    }

    #[test]
    fn unanimous() {
        let votes = vec![(1, 1), (2, 1), (3, 1)];
        assert_eq!(majority_vote(&votes, 2, TiePolicy::LowestLabel), Some(1));
    }

    #[test]
    fn tie_policies_differ() {
        let votes = vec![(1, 0), (2, 1)];
        assert_eq!(majority_vote(&votes, 2, TiePolicy::LowestLabel), Some(0));
        assert_eq!(majority_vote(&votes, 2, TiePolicy::Unresolved), None);
    }

    #[test]
    fn empty_votes_unresolved() {
        assert_eq!(majority_vote(&[], 2, TiePolicy::LowestLabel), None);
    }

    #[test]
    fn multiway_tie_lowest_label() {
        let votes = vec![(1, 2), (2, 1), (3, 0)];
        assert_eq!(majority_vote(&votes, 3, TiePolicy::LowestLabel), Some(0));
    }

    #[test]
    fn matrix_aggregation() {
        let m = VoteMatrix::from_triples(
            2,
            3,
            vec![(0, 1, 0), (0, 2, 0), (0, 3, 1), (1, 1, 1), (1, 2, 1)],
        );
        let out = majority_vote_matrix(&m, TiePolicy::LowestLabel);
        assert_eq!(out, vec![Some(0), Some(1), None]); // item 2 has no votes
    }

    #[test]
    fn single_vote_wins() {
        assert_eq!(majority_vote(&[(9, 1)], 3, TiePolicy::Unresolved), Some(1));
    }
}
