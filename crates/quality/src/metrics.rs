//! Evaluation metrics for aggregated labels.
//!
//! Used by the experiment harness (E6–E8) to score operator output against
//! synthetic ground truth: accuracy, per-label precision/recall/F1 and
//! Cohen's κ (chance-corrected agreement).

use crate::truth::LabelId;

/// Fraction of items where the prediction equals the truth. Unlabeled
/// predictions (`None`) count as wrong. Empty input yields 0.
pub fn accuracy(pred: &[Option<LabelId>], truth: &[LabelId]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(truth).filter(|(p, t)| p.as_ref() == Some(t)).count();
    correct as f64 / truth.len() as f64
}

/// `counts[t][p]` = number of items with truth `t` predicted as `p`;
/// the extra final column `counts[t][n_labels]` counts unlabeled items.
pub fn confusion_counts(
    pred: &[Option<LabelId>],
    truth: &[LabelId],
    n_labels: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), truth.len());
    let mut counts = vec![vec![0usize; n_labels + 1]; n_labels];
    for (p, &t) in pred.iter().zip(truth) {
        match p {
            Some(l) => counts[t][*l] += 1,
            None => counts[t][n_labels] += 1,
        }
    }
    counts
}

/// Precision and recall of `label` treated one-vs-rest.
/// Conventions: precision is 1.0 if nothing was predicted as `label`;
/// recall is 1.0 if no item truly has `label`.
pub fn precision_recall(
    pred: &[Option<LabelId>],
    truth: &[LabelId],
    label: LabelId,
) -> (f64, f64) {
    assert_eq!(pred.len(), truth.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (p, &t) in pred.iter().zip(truth) {
        let predicted = p.as_ref() == Some(&label);
        let actual = t == label;
        match (predicted, actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 1.0 } else { tp as f64 / (tp + fn_) as f64 };
    (precision, recall)
}

/// F1 of `label` one-vs-rest (harmonic mean of precision and recall; 0 when
/// both are 0).
pub fn f1_score(pred: &[Option<LabelId>], truth: &[LabelId], label: LabelId) -> f64 {
    let (p, r) = precision_recall(pred, truth, label);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Cohen's κ between predictions and truth over `n_labels` labels.
/// Unlabeled predictions are treated as an extra category. Returns 0 for
/// empty input; 1 means perfect agreement, 0 chance-level.
pub fn cohen_kappa(pred: &[Option<LabelId>], truth: &[LabelId], n_labels: usize) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let n = pred.len();
    if n == 0 {
        return 0.0;
    }
    let idx = |p: &Option<LabelId>| p.map(|l| l).unwrap_or(n_labels);
    let k = n_labels + 1;
    let mut joint = vec![vec![0usize; k]; k];
    for (p, &t) in pred.iter().zip(truth) {
        joint[idx(p)][t] += 1;
    }
    let po: f64 =
        (0..k).map(|c| joint[c].get(c).copied().unwrap_or(0)).sum::<usize>() as f64 / n as f64;
    let mut pe = 0.0;
    for c in 0..k {
        let row: usize = joint[c].iter().sum();
        let col: usize = joint.iter().map(|r| r.get(c).copied().unwrap_or(0)).sum();
        pe += (row as f64 / n as f64) * (col as f64 / n as f64);
    }
    if (1.0 - pe).abs() < 1e-15 {
        // Degenerate marginals (everything one class): κ is 1 on perfect
        // agreement, else 0.
        return if po >= 1.0 { 1.0 } else { 0.0 };
    }
    (po - pe) / (1.0 - pe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        let pred = vec![Some(0), Some(1), None, Some(0)];
        let truth = vec![0, 1, 0, 1];
        assert!((accuracy(&pred, &truth) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[Some(0)], &[0, 1]);
    }

    #[test]
    fn confusion_counts_include_unlabeled() {
        let pred = vec![Some(0), Some(1), None];
        let truth = vec![0, 0, 1];
        let c = confusion_counts(&pred, &truth, 2);
        assert_eq!(c[0][0], 1);
        assert_eq!(c[0][1], 1);
        assert_eq!(c[1][2], 1); // truth 1, unlabeled
    }

    #[test]
    fn precision_recall_known_case() {
        // predictions: label 1 predicted 3 times, 2 correct; truth has 3 ones.
        let pred = vec![Some(1), Some(1), Some(1), Some(0), Some(0)];
        let truth = vec![1, 1, 0, 1, 0];
        let (p, r) = precision_recall(&pred, &truth, 1);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
        assert!((f1_score(&pred, &truth, 1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn precision_conventions_on_empty_classes() {
        let pred = vec![Some(0), Some(0)];
        let truth = vec![0, 0];
        let (p, r) = precision_recall(&pred, &truth, 1);
        assert_eq!(p, 1.0); // nothing predicted as 1
        assert_eq!(r, 1.0); // nothing truly 1
    }

    #[test]
    fn kappa_perfect_and_chance() {
        let truth: Vec<LabelId> = (0..100).map(|i| i % 2).collect();
        let perfect: Vec<Option<LabelId>> = truth.iter().map(|&t| Some(t)).collect();
        assert!((cohen_kappa(&perfect, &truth, 2) - 1.0).abs() < 1e-12);

        // Constant predictor on balanced truth: κ = 0.
        let constant: Vec<Option<LabelId>> = vec![Some(0); 100];
        assert!(cohen_kappa(&constant, &truth, 2).abs() < 1e-12);
    }

    #[test]
    fn kappa_empty_input() {
        assert_eq!(cohen_kappa(&[], &[], 2), 0.0);
    }

    #[test]
    fn kappa_degenerate_single_class_perfect() {
        let truth = vec![0usize; 10];
        let pred: Vec<Option<LabelId>> = vec![Some(0); 10];
        assert_eq!(cohen_kappa(&pred, &truth, 2), 1.0);
    }

    #[test]
    fn f1_zero_when_no_overlap() {
        let pred = vec![Some(0), Some(0)];
        let truth = vec![1, 1];
        assert_eq!(f1_score(&pred, &truth, 1), 0.0);
    }
}
