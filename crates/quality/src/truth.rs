//! The [`VoteMatrix`] — the common input format of every aggregator.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifies a worker across the whole experiment (platform worker id).
pub type WorkerId = u64;

/// Dense index into an experiment's label space (e.g. 0 = "Yes", 1 = "No").
pub type LabelId = usize;

/// Sparse item × worker vote table.
///
/// `items[i]` holds every `(worker, label)` vote cast on item `i`. Workers
/// may label any subset of items (crowd data is always incomplete), and an
/// item may have any redundancy, including zero.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoteMatrix {
    /// Size of the label space; every `LabelId` must be `< n_labels`.
    pub n_labels: usize,
    /// Per-item votes.
    pub items: Vec<Vec<(WorkerId, LabelId)>>,
}

impl VoteMatrix {
    /// Creates an empty matrix over `n_labels` labels with `n_items` items.
    pub fn new(n_labels: usize, n_items: usize) -> Self {
        VoteMatrix { n_labels, items: vec![Vec::new(); n_items] }
    }

    /// Builds a matrix from `(item, worker, label)` triples.
    ///
    /// # Panics
    /// Panics if any label is out of range — that is a programming error in
    /// the caller, not a data-quality issue.
    pub fn from_triples(
        n_labels: usize,
        n_items: usize,
        triples: impl IntoIterator<Item = (usize, WorkerId, LabelId)>,
    ) -> Self {
        let mut m = VoteMatrix::new(n_labels, n_items);
        for (item, worker, label) in triples {
            m.push_vote(item, worker, label);
        }
        m
    }

    /// Records one vote.
    ///
    /// # Panics
    /// Panics if `item >= n_items` or `label >= n_labels`.
    pub fn push_vote(&mut self, item: usize, worker: WorkerId, label: LabelId) {
        assert!(label < self.n_labels, "label {label} out of range {}", self.n_labels);
        self.items[item].push((worker, label));
    }

    /// Number of items (including unlabeled ones).
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Total number of votes across all items.
    pub fn n_votes(&self) -> usize {
        self.items.iter().map(Vec::len).sum()
    }

    /// The distinct workers appearing anywhere in the matrix, ascending.
    pub fn workers(&self) -> Vec<WorkerId> {
        let set: BTreeSet<WorkerId> =
            self.items.iter().flatten().map(|&(w, _)| w).collect();
        set.into_iter().collect()
    }

    /// Per-item label histograms: `hist[i][l]` = votes for label `l` on item `i`.
    pub fn histograms(&self) -> Vec<Vec<usize>> {
        self.items
            .iter()
            .map(|votes| {
                let mut h = vec![0usize; self.n_labels];
                for &(_, l) in votes {
                    h[l] += 1;
                }
                h
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let m = VoteMatrix::from_triples(
            2,
            3,
            vec![(0, 10, 0), (0, 11, 0), (0, 12, 1), (1, 10, 1), (2, 12, 0)],
        );
        assert_eq!(m.n_items(), 3);
        assert_eq!(m.n_votes(), 5);
        assert_eq!(m.workers(), vec![10, 11, 12]);
        assert_eq!(m.histograms(), vec![vec![2, 1], vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn empty_items_allowed() {
        let m = VoteMatrix::new(3, 2);
        assert_eq!(m.n_votes(), 0);
        assert_eq!(m.histograms(), vec![vec![0, 0, 0]; 2]);
        assert!(m.workers().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let mut m = VoteMatrix::new(2, 1);
        m.push_vote(0, 1, 2);
    }

    #[test]
    fn serde_roundtrip() {
        let m = VoteMatrix::from_triples(2, 2, vec![(0, 1, 0), (1, 2, 1)]);
        let json = serde_json::to_string(&m).unwrap();
        let back: VoteMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
