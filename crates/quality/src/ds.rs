//! Dawid–Skene EM with full per-worker confusion matrices.
//!
//! The classic 1979 model: the true label of item `i` is latent; worker `j`
//! has a confusion matrix `π_j[t][l]` = P(j answers `l` | truth is `t`).
//! Richer than the one-coin model — it captures *biased* workers (e.g.
//! someone who answers "No" whenever unsure) that a scalar accuracy cannot.
//! Estimation is EM with Laplace smoothing, initialized from the smoothed
//! vote histograms so it is deterministic.

use crate::onecoin::{argmax_labels, init_posteriors_from_votes, normalize_log};
use crate::truth::{LabelId, VoteMatrix, WorkerId};
use std::collections::HashMap;

/// Hyper-parameters for Dawid–Skene EM.
#[derive(Debug, Clone)]
pub struct DsConfig {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the max absolute posterior change falls below this.
    pub tolerance: f64,
    /// Laplace smoothing added to every confusion-matrix cell during the
    /// M-step; keeps rarely-seen workers from degenerate matrices.
    pub smoothing: f64,
}

impl Default for DsConfig {
    fn default() -> Self {
        DsConfig { max_iterations: 100, tolerance: 1e-6, smoothing: 0.01 }
    }
}

/// Fitted Dawid–Skene model.
#[derive(Debug, Clone)]
pub struct DsModel {
    /// `posteriors[i][t]` = P(true label of item `i` is `t` | votes).
    pub posteriors: Vec<Vec<f64>>,
    /// Per-worker confusion matrices, row = true label, column = answer.
    pub confusion: HashMap<WorkerId, Vec<Vec<f64>>>,
    /// Estimated class priors.
    pub priors: Vec<f64>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether tolerance was reached before the iteration cap.
    pub converged: bool,
}

impl DsModel {
    /// Hard labels: argmax posterior; `None` for voteless items.
    pub fn labels(&self, matrix: &VoteMatrix) -> Vec<Option<LabelId>> {
        argmax_labels(&self.posteriors, matrix)
    }

    /// A worker's scalar accuracy under the fitted model: the prior-weighted
    /// trace of their confusion matrix.
    pub fn worker_accuracy(&self, worker: WorkerId) -> Option<f64> {
        let c = self.confusion.get(&worker)?;
        Some(self.priors.iter().enumerate().map(|(t, &p)| p * c[t][t]).sum())
    }
}

/// Estimator entry point.
pub struct DawidSkene;

impl DawidSkene {
    /// Fits the model to `matrix`.
    pub fn fit(matrix: &VoteMatrix, config: &DsConfig) -> DsModel {
        let k = matrix.n_labels.max(1);
        let workers = matrix.workers();
        let mut posteriors = init_posteriors_from_votes(matrix);
        let mut confusion: HashMap<WorkerId, Vec<Vec<f64>>> = HashMap::new();
        let mut priors = vec![1.0 / k as f64; k];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..config.max_iterations {
            iterations += 1;
            // ---- M step: confusion matrices + priors.
            let mut counts: HashMap<WorkerId, Vec<Vec<f64>>> = workers
                .iter()
                .map(|&w| (w, vec![vec![config.smoothing; k]; k]))
                .collect();
            let mut prior_acc = vec![0.0f64; k];
            let mut items_with_votes = 0usize;
            for (i, votes) in matrix.items.iter().enumerate() {
                if votes.is_empty() {
                    continue;
                }
                items_with_votes += 1;
                for (t, &p) in posteriors[i].iter().enumerate() {
                    prior_acc[t] += p;
                }
                for &(w, l) in votes {
                    let c = counts.get_mut(&w).expect("worker listed");
                    for (t, &p) in posteriors[i].iter().enumerate() {
                        c[t][l] += p;
                    }
                }
            }
            if items_with_votes > 0 {
                for p in prior_acc.iter_mut() {
                    *p /= items_with_votes as f64;
                }
                priors = prior_acc;
            }
            for (_, c) in counts.iter_mut() {
                for row in c.iter_mut() {
                    let s: f64 = row.iter().sum();
                    if s > 0.0 {
                        for v in row.iter_mut() {
                            *v /= s;
                        }
                    }
                }
            }
            confusion = counts;

            // ---- E step.
            let mut max_delta = 0.0f64;
            for (i, votes) in matrix.items.iter().enumerate() {
                if votes.is_empty() {
                    continue;
                }
                let mut logp: Vec<f64> =
                    priors.iter().map(|&p| p.max(1e-300).ln()).collect();
                for &(w, l) in votes {
                    let c = &confusion[&w];
                    for (t, lp) in logp.iter_mut().enumerate() {
                        *lp += c[t][l].max(1e-300).ln();
                    }
                }
                let new_post = normalize_log(&logp);
                for t in 0..k {
                    max_delta = max_delta.max((new_post[t] - posteriors[i][t]).abs());
                }
                posteriors[i] = new_post;
            }
            if max_delta < config.tolerance {
                converged = true;
                break;
            }
        }
        DsModel { posteriors, confusion, priors, iterations, converged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::{majority_vote_matrix, TiePolicy};

    /// Crowd with a *biased* worker: always answers 1 when truth is 0, but
    /// is perfect when truth is 1. One-coin can't express this; DS can.
    fn biased_crowd(n_items: usize) -> (VoteMatrix, Vec<LabelId>) {
        let truth: Vec<LabelId> = (0..n_items).map(|i| i % 2).collect();
        let mut m = VoteMatrix::new(2, n_items);
        let wrong = |w: u64, i: usize, rate_pct: u64| -> bool {
            let mut z = (w << 32) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            z % 100 < rate_pct
        };
        // Two decent workers (15% symmetric error).
        for w in [1u64, 2] {
            for (i, &t) in truth.iter().enumerate() {
                let l = if wrong(w, i, 15) { 1 - t } else { t };
                m.push_vote(i, w, l);
            }
        }
        // One fully biased worker: says 1 regardless of truth.
        for (i, _) in truth.iter().enumerate() {
            m.push_vote(i, 99, 1);
        }
        (m, truth)
    }

    fn hard_accuracy(pred: &[Option<LabelId>], truth: &[LabelId]) -> f64 {
        pred.iter().zip(truth).filter(|(p, t)| p.as_ref() == Some(t)).count() as f64
            / truth.len() as f64
    }

    #[test]
    fn learns_biased_worker_confusion() {
        let (m, _) = biased_crowd(200);
        let model = DawidSkene::fit(&m, &DsConfig::default());
        let c = &model.confusion[&99];
        // Row 0 (truth=0): worker 99 answers 1 with high probability.
        assert!(c[0][1] > 0.9, "biased row learned: {c:?}");
        // Row 1 (truth=1): also answers 1 (correctly).
        assert!(c[1][1] > 0.9);
    }

    /// Crowd where the *majority* of workers are asymmetrically biased
    /// toward label 1 (80% error on truth-0 items, 5% on truth-1 items).
    /// MV collapses on truth-0 items; DS learns the per-row error rates and
    /// re-weights, which is exactly the case the confusion-matrix model
    /// exists for.
    fn asymmetric_crowd(n_items: usize) -> (VoteMatrix, Vec<LabelId>) {
        let truth: Vec<LabelId> = (0..n_items).map(|i| i % 2).collect();
        let mut m = VoteMatrix::new(2, n_items);
        let wrong = |w: u64, i: usize, rate_pct: u64| -> bool {
            let mut z = (w << 32) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            z % 100 < rate_pct
        };
        // Two good symmetric workers (10% error).
        for w in [1u64, 2] {
            for (i, &t) in truth.iter().enumerate() {
                let l = if wrong(w, i, 10) { 1 - t } else { t };
                m.push_vote(i, w, l);
            }
        }
        // Three yes-biased workers.
        for w in [10u64, 11, 12] {
            for (i, &t) in truth.iter().enumerate() {
                let rate = if t == 0 { 80 } else { 5 };
                let l = if wrong(w, i, rate) { 1 - t } else { t };
                m.push_vote(i, w, l);
            }
        }
        (m, truth)
    }

    #[test]
    fn beats_majority_vote_under_asymmetric_bias() {
        let (m, truth) = asymmetric_crowd(400);
        let mv = hard_accuracy(&majority_vote_matrix(&m, TiePolicy::LowestLabel), &truth);
        let model = DawidSkene::fit(&m, &DsConfig::default());
        let ds = hard_accuracy(&model.labels(&m), &truth);
        assert!(
            ds > mv + 0.05,
            "DS ({ds}) should clearly beat MV ({mv}) under asymmetric bias"
        );
        assert!(ds > 0.85, "DS accuracy {ds}");
    }

    #[test]
    fn perfect_workers_yield_perfect_labels() {
        let truth: Vec<LabelId> = (0..50).map(|i| i % 3).collect();
        let mut m = VoteMatrix::new(3, 50);
        for w in 1..=3u64 {
            for (i, &t) in truth.iter().enumerate() {
                m.push_vote(i, w, t);
            }
        }
        let model = DawidSkene::fit(&m, &DsConfig::default());
        let labels = model.labels(&m);
        for (p, t) in labels.iter().zip(&truth) {
            assert_eq!(p.as_ref(), Some(t));
        }
        assert!(model.converged);
    }

    #[test]
    fn posteriors_are_distributions() {
        let (m, _) = biased_crowd(60);
        let model = DawidSkene::fit(&m, &DsConfig::default());
        for post in &model.posteriors {
            let s: f64 = post.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn confusion_rows_are_distributions() {
        let (m, _) = biased_crowd(60);
        let model = DawidSkene::fit(&m, &DsConfig::default());
        for c in model.confusion.values() {
            for row in c {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
            }
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = VoteMatrix::new(2, 2);
        let model = DawidSkene::fit(&m, &DsConfig::default());
        assert_eq!(model.labels(&m), vec![None, None]);
    }

    #[test]
    fn deterministic_across_runs() {
        let (m, _) = biased_crowd(80);
        let a = DawidSkene::fit(&m, &DsConfig::default());
        let b = DawidSkene::fit(&m, &DsConfig::default());
        assert_eq!(a.posteriors, b.posteriors);
    }

    #[test]
    fn priors_reflect_label_balance() {
        // 80% of items are label 0.
        let truth: Vec<LabelId> = (0..100).map(|i| usize::from(i % 5 == 0)).collect();
        let mut m = VoteMatrix::new(2, 100);
        for w in 1..=3u64 {
            for (i, &t) in truth.iter().enumerate() {
                m.push_vote(i, w, t);
            }
        }
        let model = DawidSkene::fit(&m, &DsConfig::default());
        assert!((model.priors[0] - 0.8).abs() < 0.05, "priors: {:?}", model.priors);
    }
}
