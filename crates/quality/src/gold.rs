//! Gold-standard calibration.
//!
//! The oldest quality-control trick: seed the task stream with items whose
//! answer is known ("gold" tasks), estimate each worker's accuracy from
//! those, then weight — or reject — workers accordingly. Produces the
//! weight maps consumed by [`weighted`](crate::weighted).

use crate::truth::{LabelId, VoteMatrix, WorkerId};
use std::collections::HashMap;

/// Per-worker accuracy estimates from gold tasks.
#[derive(Debug, Clone)]
pub struct GoldCalibration {
    /// Estimated accuracy per worker (Laplace-smoothed).
    pub accuracy: HashMap<WorkerId, f64>,
    /// Gold items each worker actually answered.
    pub answered: HashMap<WorkerId, usize>,
    /// Smoothing used (pseudo-counts of one correct + one incorrect).
    pub smoothing: f64,
}

impl GoldCalibration {
    /// Scores every worker in `matrix` against `gold`, a map from item index
    /// to true label. Items absent from `gold` are ignored.
    ///
    /// Accuracy is `(correct + s) / (answered + 2s)` with `s = smoothing`,
    /// so workers seen on few gold items shrink toward 0.5 instead of
    /// snapping to 0 or 1.
    pub fn from_gold(matrix: &VoteMatrix, gold: &HashMap<usize, LabelId>, smoothing: f64) -> Self {
        let mut correct: HashMap<WorkerId, usize> = HashMap::new();
        let mut answered: HashMap<WorkerId, usize> = HashMap::new();
        for (item, votes) in matrix.items.iter().enumerate() {
            let Some(&truth) = gold.get(&item) else { continue };
            for &(w, l) in votes {
                *answered.entry(w).or_insert(0) += 1;
                if l == truth {
                    *correct.entry(w).or_insert(0) += 1;
                }
            }
        }
        let accuracy = answered
            .iter()
            .map(|(&w, &n)| {
                let c = correct.get(&w).copied().unwrap_or(0) as f64;
                (w, (c + smoothing) / (n as f64 + 2.0 * smoothing))
            })
            .collect();
        GoldCalibration { accuracy, answered, smoothing }
    }

    /// Raw accuracies as vote weights (unknown workers get 0.5 by default —
    /// pass that as `default_weight` to the weighted vote).
    pub fn weights(&self) -> HashMap<WorkerId, f64> {
        self.accuracy.clone()
    }

    /// Log-odds weights `ln(a / (1 - a))` — the theoretically optimal
    /// weighting for independent binary workers. Accuracies are clamped to
    /// keep weights finite; workers below 0.5 get *negative* weight clamped
    /// to zero (they should not be trusted, not anti-trusted, without a
    /// full confusion model).
    pub fn log_odds_weights(&self) -> HashMap<WorkerId, f64> {
        self.accuracy
            .iter()
            .map(|(&w, &a)| {
                let a = a.clamp(1e-3, 1.0 - 1e-3);
                (w, (a / (1.0 - a)).ln().max(0.0))
            })
            .collect()
    }

    /// Workers whose estimated accuracy clears `threshold` — a
    /// qualification filter.
    pub fn qualified(&self, threshold: f64) -> Vec<WorkerId> {
        let mut q: Vec<WorkerId> = self
            .accuracy
            .iter()
            .filter(|&(_, &a)| a >= threshold)
            .map(|(&w, _)| w)
            .collect();
        q.sort_unstable();
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VoteMatrix, HashMap<usize, LabelId>) {
        // Items 0..4 are gold with truth 0; worker 1 always right,
        // worker 2 always wrong, worker 3 half and half.
        let mut m = VoteMatrix::new(2, 6);
        let mut gold = HashMap::new();
        for i in 0..4 {
            gold.insert(i, 0usize);
            m.push_vote(i, 1, 0);
            m.push_vote(i, 2, 1);
            m.push_vote(i, 3, if i < 2 { 0 } else { 1 });
        }
        // Non-gold items don't affect calibration.
        m.push_vote(4, 1, 1);
        m.push_vote(5, 2, 0);
        (m, gold)
    }

    #[test]
    fn accuracy_estimates_ordering() {
        let (m, gold) = setup();
        let cal = GoldCalibration::from_gold(&m, &gold, 1.0);
        assert!(cal.accuracy[&1] > cal.accuracy[&3]);
        assert!(cal.accuracy[&3] > cal.accuracy[&2]);
        assert_eq!(cal.answered[&1], 4);
    }

    #[test]
    fn smoothing_pulls_toward_half() {
        let (m, gold) = setup();
        let tight = GoldCalibration::from_gold(&m, &gold, 0.01);
        let loose = GoldCalibration::from_gold(&m, &gold, 10.0);
        assert!(tight.accuracy[&1] > loose.accuracy[&1]);
        assert!(loose.accuracy[&1] > 0.5);
        assert!((loose.accuracy[&3] - 0.5).abs() < 0.05);
    }

    #[test]
    fn log_odds_weights_clamped_nonnegative() {
        let (m, gold) = setup();
        let cal = GoldCalibration::from_gold(&m, &gold, 1.0);
        let w = cal.log_odds_weights();
        assert!(w[&1] > 0.0);
        assert_eq!(w[&2], 0.0); // worse-than-chance worker neutralized
        assert!(w.values().all(|&x| x >= 0.0));
    }

    #[test]
    fn qualification_threshold() {
        let (m, gold) = setup();
        let cal = GoldCalibration::from_gold(&m, &gold, 0.5);
        assert_eq!(cal.qualified(0.7), vec![1]);
        assert_eq!(cal.qualified(0.0).len(), 3);
        assert!(cal.qualified(1.1).is_empty());
    }

    #[test]
    fn worker_never_on_gold_is_absent() {
        let (mut m, gold) = setup();
        m.push_vote(5, 42, 1); // worker 42 only labels non-gold item 5
        let cal = GoldCalibration::from_gold(&m, &gold, 1.0);
        assert!(!cal.accuracy.contains_key(&42));
    }

    #[test]
    fn empty_gold_set() {
        let (m, _) = setup();
        let cal = GoldCalibration::from_gold(&m, &HashMap::new(), 1.0);
        assert!(cal.accuracy.is_empty());
        assert!(cal.qualified(0.0).is_empty());
    }
}
