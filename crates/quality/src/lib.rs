//! # reprowd-quality
//!
//! Quality control for crowdsourced answers.
//!
//! The Reprowd architecture (paper Figure 1) contains a *Quality Control*
//! component that "implements a number of widely used techniques for
//! improving the quality of crowdsourced answers", with Majority Vote used
//! in the paper's running example. This crate implements the standard
//! ladder of label-aggregation techniques:
//!
//! * [`vote`] — plain majority vote with explicit tie policies.
//! * [`weighted`] — weighted majority vote (weights from gold tasks or EM).
//! * [`onecoin`] — one-coin EM: each worker has a single latent accuracy.
//! * [`ds`] — full Dawid–Skene EM with per-worker confusion matrices.
//! * [`gold`] — qualification against gold-standard tasks.
//! * [`metrics`] — accuracy, precision/recall/F1, Cohen's κ.
//!
//! All aggregators consume a [`VoteMatrix`] — the bridge type the
//! `CrowdData` `result` column is converted into — and are deterministic
//! (ties broken by a fixed policy, EM initialized from majority vote), so
//! re-running an experiment reproduces byte-identical aggregates, which the
//! paper's reproducibility story requires.

pub mod ds;
pub mod gold;
pub mod metrics;
pub mod onecoin;
pub mod truth;
pub mod vote;
pub mod weighted;

pub use ds::{DawidSkene, DsConfig, DsModel};
pub use gold::GoldCalibration;
pub use metrics::{accuracy, cohen_kappa, confusion_counts, f1_score, precision_recall};
pub use onecoin::{OneCoin, OneCoinConfig, OneCoinModel};
pub use truth::{LabelId, VoteMatrix, WorkerId};
pub use vote::{majority_vote, majority_vote_matrix, TiePolicy};
pub use weighted::{weighted_majority_vote, weighted_majority_vote_matrix};
