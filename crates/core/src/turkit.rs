//! The TurKit baseline: crash-and-rerun with *order-keyed* memoization.
//!
//! TurKit (Little et al., UIST 2010) caches each crowd call's return value
//! in a database **in call order**: the n-th `once(...)` of a rerun gets
//! the n-th cached value. The Reprowd paper's critique, verbatim: "If she
//! accidentally swapped the order of two functions or added a new function
//! between them, the whole experiment would break."
//!
//! This module is a faithful reimplementation of that model so experiment
//! E5 can demonstrate the failure mode against CrowdData's content-keyed
//! cache: after swapping two steps, the TurKit rerun silently returns the
//! *wrong* cached answers, while CrowdData reuses every cell correctly.

use crate::error::{Error, Result};
use crate::value::Value;
use reprowd_storage::{Backend, Table};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One memoized entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Memo {
    /// Sequence number of the call within the script.
    seq: u64,
    /// The memoized return value.
    value: Value,
}

/// A TurKit-style crash-and-rerun executor.
///
/// Each call to [`once`](CrashAndRerun::once) consumes the next sequence
/// number. If the database already holds a value for that number, it is
/// returned *without running the closure* — which is both the feature
/// (crash recovery) and the bug (order sensitivity).
pub struct CrashAndRerun {
    table: Table<Memo>,
    script: String,
    seq: AtomicU64,
}

impl CrashAndRerun {
    /// Opens (or resumes) the memo table for `script` on `backend`.
    pub fn new(backend: Arc<dyn Backend>, script: &str) -> Result<Self> {
        if script.contains('/') {
            return Err(Error::State("script name may not contain '/'".into()));
        }
        Ok(CrashAndRerun {
            table: Table::new(backend, "turkit")?,
            script: script.to_string(),
            seq: AtomicU64::new(0),
        })
    }

    fn key(&self, seq: u64) -> Vec<u8> {
        format!("{}/{seq:012}", self.script).into_bytes()
    }

    /// Runs `f` once ever: the first execution memoizes its value; replays
    /// return the memo. The memo slot is chosen by *call order*.
    pub fn once<F>(&self, f: F) -> Result<Value>
    where
        F: FnOnce() -> Result<Value>,
    {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let key = self.key(seq);
        if let Some(memo) = self.table.get(&key)? {
            return Ok(memo.value);
        }
        let value = f()?;
        self.table.put(&key, &Memo { seq, value: value.clone() })?;
        Ok(value)
    }

    /// Number of `once` calls made by this instance.
    pub fn calls(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Number of memo entries persisted for this script.
    pub fn memo_len(&self) -> Result<usize> {
        Ok(self.table.scan_prefix(format!("{}/", self.script).as_bytes())?.len())
    }

    /// Drops all memos of this script (a fresh start).
    pub fn clear(&self) -> Result<()> {
        for (key, _) in self.table.scan_prefix(format!("{}/", self.script).as_bytes())? {
            self.table.remove(&key)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::val;
    use reprowd_storage::MemoryStore;
    use std::sync::atomic::AtomicUsize;

    fn backend() -> Arc<dyn Backend> {
        Arc::new(MemoryStore::new())
    }

    #[test]
    fn memoizes_and_replays_in_order() {
        let be = backend();
        let executions = AtomicUsize::new(0);
        {
            let tk = CrashAndRerun::new(Arc::clone(&be), "script").unwrap();
            let a = tk
                .once(|| {
                    executions.fetch_add(1, Ordering::SeqCst);
                    Ok(val!("answer-1"))
                })
                .unwrap();
            assert_eq!(a, val!("answer-1"));
        }
        // "Crash", rerun the same script: no re-execution.
        let tk = CrashAndRerun::new(Arc::clone(&be), "script").unwrap();
        let a = tk
            .once(|| {
                executions.fetch_add(1, Ordering::SeqCst);
                Ok(val!("answer-1-if-rerun"))
            })
            .unwrap();
        assert_eq!(a, val!("answer-1"), "memo must be replayed");
        assert_eq!(executions.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn swapping_calls_returns_wrong_values() {
        // The paper's exact failure scenario.
        let be = backend();
        {
            let tk = CrashAndRerun::new(Arc::clone(&be), "bob").unwrap();
            tk.once(|| Ok(val!("label-of-img1"))).unwrap();
            tk.once(|| Ok(val!("label-of-img2"))).unwrap();
        }
        // Ally swaps the two steps and reruns: TurKit silently hands her
        // img1's answer for img2.
        let tk = CrashAndRerun::new(Arc::clone(&be), "bob").unwrap();
        let img2 = tk.once(|| Ok(val!("fresh-label-of-img2"))).unwrap();
        let img1 = tk.once(|| Ok(val!("fresh-label-of-img1"))).unwrap();
        assert_eq!(img2, val!("label-of-img1"), "silent wrong reuse");
        assert_eq!(img1, val!("label-of-img2"), "silent wrong reuse");
    }

    #[test]
    fn inserting_a_call_shifts_everything_after() {
        let be = backend();
        {
            let tk = CrashAndRerun::new(Arc::clone(&be), "bob").unwrap();
            tk.once(|| Ok(val!("A"))).unwrap();
            tk.once(|| Ok(val!("B"))).unwrap();
        }
        let tk = CrashAndRerun::new(Arc::clone(&be), "bob").unwrap();
        let a = tk.once(|| Ok(val!("A"))).unwrap();
        let new = tk.once(|| Ok(val!("NEW"))).unwrap();
        let b = tk.once(|| Ok(val!("B-rerun"))).unwrap();
        assert_eq!(a, val!("A"));
        // The inserted call steals B's memo...
        assert_eq!(new, val!("B"));
        // ...and the old second call re-executes (crowd money wasted).
        assert_eq!(b, val!("B-rerun"));
    }

    #[test]
    fn scripts_are_isolated() {
        let be = backend();
        let t1 = CrashAndRerun::new(Arc::clone(&be), "one").unwrap();
        let t2 = CrashAndRerun::new(Arc::clone(&be), "two").unwrap();
        t1.once(|| Ok(val!(1))).unwrap();
        let v = t2.once(|| Ok(val!(2))).unwrap();
        assert_eq!(v, val!(2));
        assert_eq!(t1.memo_len().unwrap(), 1);
        assert_eq!(t2.memo_len().unwrap(), 1);
    }

    #[test]
    fn errors_are_not_memoized() {
        let be = backend();
        let tk = CrashAndRerun::new(Arc::clone(&be), "s").unwrap();
        let r = tk.once(|| Err(Error::State("crowd down".into())));
        assert!(r.is_err());
        assert_eq!(tk.memo_len().unwrap(), 0);
        // Note: like real TurKit, the *sequence number* was consumed; a
        // retry within the same process lands on the next slot. A rerun
        // from scratch starts at 0 again and succeeds.
        let tk = CrashAndRerun::new(Arc::clone(&be), "s").unwrap();
        let v = tk.once(|| Ok(val!("ok"))).unwrap();
        assert_eq!(v, val!("ok"));
    }

    #[test]
    fn clear_resets_script() {
        let be = backend();
        let tk = CrashAndRerun::new(Arc::clone(&be), "s").unwrap();
        tk.once(|| Ok(val!(1))).unwrap();
        tk.clear().unwrap();
        assert_eq!(tk.memo_len().unwrap(), 0);
        let tk = CrashAndRerun::new(be, "s").unwrap();
        let v = tk.once(|| Ok(val!(2))).unwrap();
        assert_eq!(v, val!(2));
    }

    #[test]
    fn slash_in_script_name_rejected() {
        assert!(CrashAndRerun::new(backend(), "a/b").is_err());
    }
}
