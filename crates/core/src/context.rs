//! CrowdContext — "the main entry point for Reprowd functionality"
//! (paper Figure 1): a crowdsourcing platform + a database, shared by every
//! CrowdData experiment of a session.

use crate::crowddata::CrowdData;
use crate::error::{Error, Result};
use crate::exec::{BatchMetricsSnapshot, ExecutionConfig, ExecutionContext};
use crate::store::{ExperimentStore, Manifest};
use reprowd_platform::{CrowdPlatform, SimConfig, SimPlatform, WorkerPool, WorkerProfile};
use reprowd_storage::{Backend, DiskStore, MemoryStore, SyncPolicy};
use std::path::Path;
use std::sync::Arc;

/// Rejects experiment names that cannot serve as cache-key namespaces.
/// Shared by [`CrowdContext::crowddata`] and the streaming runner
/// ([`crate::pipeline::run_stream`]).
pub(crate) fn validate_experiment_name(name: &str) -> Result<()> {
    if name.is_empty() || name.contains('/') {
        return Err(Error::State(format!(
            "experiment name {name:?} must be non-empty and must not contain '/'"
        )));
    }
    Ok(())
}

/// The session object: platform + database + the experiment tables, plus
/// the [`ExecutionContext`] that batches their traffic.
///
/// Cloning is cheap (all `Arc`s); a context can be shared across operator
/// pipelines and threads.
#[derive(Clone)]
pub struct CrowdContext {
    platform: Arc<dyn CrowdPlatform>,
    backend: Arc<dyn Backend>,
    store: Arc<ExperimentStore>,
    exec: ExecutionContext,
}

impl CrowdContext {
    /// Builds a context from an arbitrary platform and database backend,
    /// with the default [`ExecutionConfig`].
    pub fn new(platform: Arc<dyn CrowdPlatform>, backend: Arc<dyn Backend>) -> Result<Self> {
        CrowdContext::with_config(platform, backend, ExecutionConfig::default())
    }

    /// Builds a context with an explicit execution policy (batch size).
    pub fn with_config(
        platform: Arc<dyn CrowdPlatform>,
        backend: Arc<dyn Backend>,
        config: ExecutionConfig,
    ) -> Result<Self> {
        let store = Arc::new(ExperimentStore::open(Arc::clone(&backend))?);
        let exec = ExecutionContext::new(config)?;
        Ok(CrowdContext { platform, backend, store, exec })
    }

    /// A copy of this context using `batch_size` rows per platform
    /// round-trip. Shares the platform, database, and batch metrics with
    /// `self`; errors if `batch_size` is 0.
    pub fn with_batch_size(&self, batch_size: usize) -> Result<Self> {
        let mut cc = self.clone();
        cc.exec = self.exec.retuned(batch_size)?;
        Ok(cc)
    }

    /// A copy of this context keeping `depth` batch round-trips in flight
    /// (see [`ExecutionConfig::inflight_batches`]). Shares the platform,
    /// database, and batch metrics with `self`; errors if `depth` is 0.
    /// Depth is a pure wall-clock knob: results are bit-identical at
    /// every setting.
    pub fn with_inflight_batches(&self, depth: usize) -> Result<Self> {
        let mut cc = self.clone();
        cc.exec = self.exec.retuned_config(ExecutionConfig {
            inflight_batches: depth,
            ..self.exec.config().clone()
        })?;
        Ok(cc)
    }

    /// A context over a simulated crowd (5 workers, ability 0.85) and an
    /// in-memory database. The quickest way to try the system out.
    pub fn in_memory_sim(seed: u64) -> Self {
        let platform = Arc::new(SimPlatform::quick(5, 0.85, seed));
        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        CrowdContext::new(platform, backend).expect("in-memory context construction")
    }

    /// Like [`in_memory_sim`](CrowdContext::in_memory_sim), but honoring
    /// the whole [`ExecutionConfig`] — including
    /// [`sim_shards`](ExecutionConfig::sim_shards), which partitions the
    /// simulated crowd so it can be driven on one thread per shard. The
    /// crowd scales with the shard count (5 workers *per shard*, ability
    /// 0.85), so every shard can meet the usual redundancy; `sim_shards:
    /// None` (or `Some(1)`) builds exactly the [`in_memory_sim`] crowd.
    ///
    /// [`in_memory_sim`]: CrowdContext::in_memory_sim
    pub fn in_memory_sim_with(seed: u64, config: ExecutionConfig) -> Result<Self> {
        config.validate()?;
        let shards = config.sim_shards.unwrap_or(1);
        // Worker ids are hash-partitioned across shards, so sequential ids
        // spread unevenly; pick ids until every shard has exactly 5
        // workers (deterministic — the partition depends only on the id
        // and the shard count).
        let mut per_shard = vec![0usize; shards];
        let mut workers = Vec::with_capacity(5 * shards);
        let mut id = 1u64;
        while workers.len() < 5 * shards {
            let s = SimPlatform::shard_index(id, shards);
            if per_shard[s] < 5 {
                per_shard[s] += 1;
                workers.push(WorkerProfile::with_ability(id, 0.85));
            }
            id += 1;
        }
        let platform = Arc::new(SimPlatform::new(
            SimConfig::new(WorkerPool::new(workers), seed).with_shards(shards),
        ));
        CrowdContext::with_config(platform, Arc::new(MemoryStore::new()), config)
    }

    /// A context over the given platform and a durable on-disk database —
    /// the file you would share with another researcher.
    pub fn on_disk(
        platform: Arc<dyn CrowdPlatform>,
        db_path: impl AsRef<Path>,
        sync: SyncPolicy,
    ) -> Result<Self> {
        CrowdContext::on_disk_with(platform, db_path, sync, ExecutionConfig::default())
    }

    /// Like [`on_disk`](CrowdContext::on_disk), but honoring the whole
    /// [`ExecutionConfig`] — including
    /// [`segment_policy`](ExecutionConfig::segment_policy), which sizes
    /// the database's log segments and sets its auto-compaction
    /// threshold. Both batching and segmentation are pure performance
    /// knobs: results are bit-identical under every setting.
    pub fn on_disk_with(
        platform: Arc<dyn CrowdPlatform>,
        db_path: impl AsRef<Path>,
        sync: SyncPolicy,
        config: ExecutionConfig,
    ) -> Result<Self> {
        config.validate()?;
        let backend: Arc<dyn Backend> =
            Arc::new(DiskStore::open_with(db_path, sync, config.segment_policy)?);
        CrowdContext::with_config(platform, backend, config)
    }

    /// Starts (or resumes) the experiment called `name`.
    ///
    /// If the database already holds a manifest for `name` — because the
    /// program ran before, crashed before, or the file came from another
    /// researcher — the CrowdData resumes from it; the subsequent
    /// `data`/`publish`/`collect` calls will then reuse every cached cell.
    pub fn crowddata(&self, name: &str) -> Result<CrowdData> {
        validate_experiment_name(name)?;
        let manifest = match self.store.manifests.get(name.as_bytes())? {
            Some(m) => m,
            None => {
                let m = Manifest::new(name);
                self.store.manifests.put(name.as_bytes(), &m)?;
                m
            }
        };
        Ok(CrowdData::resume(self.clone(), manifest))
    }

    /// Names of every experiment stored in this database.
    pub fn experiments(&self) -> Result<Vec<String>> {
        Ok(self
            .store
            .manifests
            .scan()?
            .into_iter()
            .map(|(_, m)| m.name)
            .collect())
    }

    /// Deletes an experiment: its manifest and every cached task/result.
    /// The platform-side project (if any) is left as-is, like the original
    /// system (PyBossa projects outlive local state).
    pub fn delete_experiment(&self, name: &str) -> Result<()> {
        let Some(manifest) = self.store.manifests.get(name.as_bytes())? else {
            return Ok(());
        };
        if let Some(fp) = &manifest.presenter_fingerprint {
            // scan_prefix returns full row keys (within the table), so they
            // can be removed directly.
            let prefix = ExperimentStore::prefix(name, fp);
            for (key, _) in self.store.tasks.scan_prefix(prefix.as_bytes())? {
                self.store.tasks.remove(&key)?;
            }
            for (key, _) in self.store.results.scan_prefix(prefix.as_bytes())? {
                self.store.results.remove(&key)?;
            }
        }
        self.store.manifests.remove(name.as_bytes())?;
        Ok(())
    }

    /// The platform this context publishes to.
    pub fn platform(&self) -> &Arc<dyn CrowdPlatform> {
        &self.platform
    }

    /// The execution policy + metrics threaded through `publish`/`collect`.
    pub fn exec(&self) -> &ExecutionContext {
        &self.exec
    }

    /// Rows per platform round-trip (see
    /// [`ExecutionConfig::batch_size`]).
    pub fn batch_size(&self) -> usize {
        self.exec.batch_size()
    }

    /// A snapshot of the round-trip counters accumulated by this context
    /// lineage (shared across clones and [`with_batch_size`] derivatives).
    ///
    /// [`with_batch_size`]: CrowdContext::with_batch_size
    pub fn batch_metrics(&self) -> BatchMetricsSnapshot {
        self.exec.metrics().snapshot()
    }

    /// The raw database backend (snapshots, stats).
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// The experiment tables.
    pub(crate) fn store(&self) -> &ExperimentStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_lifecycle() {
        let cc = CrowdContext::in_memory_sim(1);
        assert!(cc.experiments().unwrap().is_empty());
        let _cd = cc.crowddata("exp-a").unwrap();
        let _cd = cc.crowddata("exp-b").unwrap();
        let mut names = cc.experiments().unwrap();
        names.sort();
        assert_eq!(names, vec!["exp-a", "exp-b"]);
        cc.delete_experiment("exp-a").unwrap();
        assert_eq!(cc.experiments().unwrap(), vec!["exp-b"]);
        // Deleting a non-existent experiment is fine.
        cc.delete_experiment("ghost").unwrap();
    }

    #[test]
    fn invalid_names_rejected() {
        let cc = CrowdContext::in_memory_sim(1);
        assert!(cc.crowddata("").is_err());
        assert!(cc.crowddata("a/b").is_err());
    }

    #[test]
    fn sharded_in_memory_context() {
        // 5 shards with sequential worker ids would leave one shard with
        // only 2 workers (the hash partition is uneven); the constructor
        // must pick ids so every shard holds 5 and redundancy 3 publishes
        // on every shard.
        let cfg = ExecutionConfig::with_batch_size(8).with_sim_shards(5);
        let cc = CrowdContext::in_memory_sim_with(7, cfg).unwrap();
        assert_eq!(cc.batch_size(), 8);
        let cd = cc
            .crowddata("sharded")
            .unwrap()
            .data((0..40).map(|i| crate::value::Value::from(format!("obj{i}"))).collect())
            .unwrap()
            .presenter(crate::presenter::Presenter::image_label("label?", &["A", "B"]))
            .unwrap()
            .publish(3)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(cd.run_stats().results_collected, 40);
        // The collect status pass metered its completion probes.
        assert!(cc.batch_metrics().probe_calls >= 1);
        // An explicit zero shard count is rejected up front.
        let bad = ExecutionConfig::default().with_sim_shards(0);
        assert!(CrowdContext::in_memory_sim_with(7, bad).is_err());
    }

    #[test]
    fn on_disk_with_threads_the_segment_policy_through() {
        use reprowd_storage::SegmentPolicy;
        let dir = std::env::temp_dir().join(format!("reprowd-ctx-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("segmented.rwlog");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(reprowd_storage::manifest::manifest_path(&path));
        let platform = Arc::new(SimPlatform::quick(5, 0.9, 11));
        let cfg = ExecutionConfig::with_batch_size(4)
            .with_segment_policy(SegmentPolicy::new(512, 1.0));
        let cc = CrowdContext::on_disk_with(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            &path,
            SyncPolicy::Never,
            cfg,
        )
        .unwrap();
        let cd = cc
            .crowddata("seg")
            .unwrap()
            .data((0..12).map(|i| crate::value::Value::from(format!("obj{i}"))).collect())
            .unwrap()
            .presenter(crate::presenter::Presenter::image_label("label?", &["A", "B"]))
            .unwrap()
            .publish(3)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(cd.run_stats().results_collected, 12);
        // The tiny policy actually reached the store: the log rotated.
        assert!(cc.backend().stats().segments > 1, "stats: {:?}", cc.backend().stats());
        // An invalid policy is rejected up front.
        let bad = ExecutionConfig::default().with_segment_policy(SegmentPolicy::new(0, 0.5));
        assert!(CrowdContext::on_disk_with(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            dir.join("never-created.rwlog"),
            SyncPolicy::Never,
            bad,
        )
        .is_err());
    }

    #[test]
    fn reopening_is_resume_not_reset() {
        let cc = CrowdContext::in_memory_sim(1);
        let _ = cc.crowddata("exp").unwrap();
        // Same name twice: still one experiment.
        let _ = cc.crowddata("exp").unwrap();
        assert_eq!(cc.experiments().unwrap().len(), 1);
    }
}
