//! Core error type, aggregating the substrate errors.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the CrowdData layer.
#[derive(Debug)]
pub enum Error {
    /// The database layer failed.
    Storage(reprowd_storage::Error),
    /// The crowdsourcing platform failed (including injected faults).
    Platform(reprowd_platform::Error),
    /// The manipulation sequence is invalid in the current state, e.g.
    /// `publish` before `data`, or `majority_vote` before `collect`.
    State(String),
    /// A requested column does not exist (yet).
    MissingColumn(String),
    /// JSON (de)serialization failed.
    Json(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Platform(e) => write!(f, "platform: {e}"),
            Error::State(msg) => write!(f, "invalid state: {msg}"),
            Error::MissingColumn(c) => write!(f, "missing column {c:?}"),
            Error::Json(msg) => write!(f, "json: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            Error::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<reprowd_storage::Error> for Error {
    fn from(e: reprowd_storage::Error) -> Self {
        Error::Storage(e)
    }
}

impl From<reprowd_platform::Error> for Error {
    fn from(e: reprowd_platform::Error) -> Self {
        Error::Platform(e)
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Json(e.to_string())
    }
}

impl Error {
    /// True if the error is an injected platform fault (crash emulation) —
    /// crash-recovery tests use this to distinguish "the experiment
    /// crashed as planned" from real failures.
    pub fn is_injected_fault(&self) -> bool {
        matches!(self, Error::Platform(reprowd_platform::Error::Injected(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e: Error = reprowd_platform::Error::UnknownTask(4).into();
        assert!(e.to_string().contains("platform"));
        assert!(e.source().is_some());
        let e = Error::State("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
    }

    #[test]
    fn injected_fault_detection() {
        let e: Error = reprowd_platform::Error::Injected("budget".into()).into();
        assert!(e.is_injected_fault());
        let e: Error = reprowd_platform::Error::UnknownTask(1).into();
        assert!(!e.is_injected_fault());
    }
}
