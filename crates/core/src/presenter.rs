//! Presenters — the "web user interface" step of the paper's pipeline.
//!
//! Step 2 of Figure 2 is `.presenter(ImageLabel)`: choosing how the task is
//! shown to workers. A [`Presenter`] here is a declarative task template:
//! the question, the answer schema (choices / pair comparison / match
//! judgment), and a rendering into the task payload. Its
//! [`fingerprint`](Presenter::fingerprint) is part of every cache key, so
//! *changing the UI invalidates exactly the answers collected under the old
//! UI* — re-asking the crowd is semantically required when the question
//! changes, and only then.

use crate::hash::{fnv1a, hex};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// The answer schema of a task template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PresenterKind {
    /// Pick one label from a fixed list (image/text labeling).
    SingleChoice {
        /// The label strings, in canonical order (ties in majority vote
        /// break toward the earlier label).
        labels: Vec<String>,
    },
    /// Compare two objects and pick the preferred one (sort/max).
    PairCompare,
    /// Judge whether two records refer to the same entity (joins).
    MatchPair,
    /// Free-form text answer.
    FreeText,
}

/// A declarative task template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Presenter {
    /// Template name (shows up in lineage and the platform project).
    pub name: String,
    /// The question posed to workers.
    pub question: String,
    /// Answer schema.
    pub kind: PresenterKind,
}

impl Presenter {
    /// Labeling UI over explicit choices (the Figure 2 presenter).
    pub fn image_label(question: &str, labels: &[&str]) -> Self {
        Presenter {
            name: "image_label".into(),
            question: question.into(),
            kind: PresenterKind::SingleChoice {
                labels: labels.iter().map(|l| l.to_string()).collect(),
            },
        }
    }

    /// Labeling UI for text objects.
    pub fn text_label(question: &str, labels: &[&str]) -> Self {
        Presenter {
            name: "text_label".into(),
            question: question.into(),
            kind: PresenterKind::SingleChoice {
                labels: labels.iter().map(|l| l.to_string()).collect(),
            },
        }
    }

    /// Pairwise-comparison UI ("which is better?").
    pub fn pair_compare(question: &str) -> Self {
        Presenter {
            name: "pair_compare".into(),
            question: question.into(),
            kind: PresenterKind::PairCompare,
        }
    }

    /// Entity-match UI ("do these refer to the same thing?").
    pub fn match_pair(question: &str) -> Self {
        Presenter {
            name: "match_pair".into(),
            question: question.into(),
            kind: PresenterKind::MatchPair,
        }
    }

    /// Free-text UI.
    pub fn free_text(question: &str) -> Self {
        Presenter {
            name: "free_text".into(),
            question: question.into(),
            kind: PresenterKind::FreeText,
        }
    }

    /// The label list, if this presenter has a fixed label space.
    pub fn labels(&self) -> Option<&[String]> {
        match &self.kind {
            PresenterKind::SingleChoice { labels } => Some(labels),
            _ => None,
        }
    }

    /// The fixed answer space of this presenter, in canonical (tie-break)
    /// order — `None` for free text, whose space is only known from the
    /// collected answers. Streaming operators aggregate against this with
    /// [`majority_answer`](crate::pipeline::majority_answer); the classic
    /// [`CrowdData::answer_space`](crate::CrowdData::answer_space) is
    /// built on the same definition, so both paths break ties identically.
    pub fn static_answer_space(&self) -> Option<Vec<Value>> {
        match &self.kind {
            PresenterKind::SingleChoice { labels } => {
                Some(labels.iter().map(|l| Value::String(l.clone())).collect())
            }
            PresenterKind::MatchPair => Some(vec![Value::Bool(false), Value::Bool(true)]),
            PresenterKind::PairCompare => {
                Some(vec![Value::String("first".into()), Value::String("second".into())])
            }
            PresenterKind::FreeText => None,
        }
    }

    /// Stable fingerprint of the full template; part of every cache key.
    pub fn fingerprint(&self) -> String {
        let encoded = serde_json::to_string(self).expect("presenter serializes");
        hex(fnv1a(encoded.as_bytes()))
    }

    /// Renders the UI descriptor merged into a task payload for `object`.
    /// If the object carries a simulation answer model (`"_sim"`), it is
    /// lifted to the payload root where the platform's simulator looks.
    pub fn render(&self, object: &Value) -> Value {
        let mut payload = serde_json::json!({
            "object": object,
            "ui": {
                "presenter": self.name,
                "question": self.question,
                "kind": self.kind,
            },
        });
        if let Some(sim) = object.get("_sim") {
            payload["_sim"] = sim.clone();
        }
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::val;

    #[test]
    fn fingerprint_sensitive_to_every_field() {
        let base = Presenter::image_label("Is this a cat?", &["Yes", "No"]);
        let other_question = Presenter::image_label("Is this a dog?", &["Yes", "No"]);
        let other_labels = Presenter::image_label("Is this a cat?", &["Yes", "No", "Maybe"]);
        let other_order = Presenter::image_label("Is this a cat?", &["No", "Yes"]);
        assert_ne!(base.fingerprint(), other_question.fingerprint());
        assert_ne!(base.fingerprint(), other_labels.fingerprint());
        assert_ne!(base.fingerprint(), other_order.fingerprint());
        assert_eq!(
            base.fingerprint(),
            Presenter::image_label("Is this a cat?", &["Yes", "No"]).fingerprint()
        );
    }

    #[test]
    fn render_includes_object_and_ui() {
        let p = Presenter::image_label("Q?", &["A", "B"]);
        let payload = p.render(&val!({"url": "img.jpg"}));
        assert_eq!(payload["object"]["url"], "img.jpg");
        assert_eq!(payload["ui"]["question"], "Q?");
        assert_eq!(payload["ui"]["kind"]["labels"][0], "A");
        assert!(payload.get("_sim").is_none());
    }

    #[test]
    fn render_lifts_sim_field() {
        let p = Presenter::match_pair("Same?");
        let obj = val!({"left": "a", "right": "b", "_sim": {"kind": "match", "is_match": true, "ambiguity": 0.1}});
        let payload = p.render(&obj);
        assert_eq!(payload["_sim"]["kind"], "match");
    }

    #[test]
    fn builders_set_kinds() {
        assert!(matches!(
            Presenter::pair_compare("x").kind,
            PresenterKind::PairCompare
        ));
        assert!(matches!(Presenter::match_pair("x").kind, PresenterKind::MatchPair));
        assert!(matches!(Presenter::free_text("x").kind, PresenterKind::FreeText));
        assert_eq!(
            Presenter::text_label("x", &["l"]).labels().unwrap(),
            &["l".to_string()][..]
        );
        assert!(Presenter::free_text("x").labels().is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let p = Presenter::image_label("Q", &["Yes", "No"]);
        let s = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Presenter>(&s).unwrap(), p);
    }
}
