//! Lineage — the *examinable* requirement.
//!
//! The paper: "CrowdData not only contains complete lineage information
//! about crowdsourced answers" — when were the tasks published, which
//! workers did them (Figure 3, lines 11–16). Every cell of a CrowdData
//! table can produce a [`CellLineage`] tracing it back through the
//! derivation chain: aggregated label → task runs (worker, timestamps) →
//! published task (platform id, publish time) → source object.

use crate::crowddata::CrowdData;
use crate::error::{Error, Result};
use crate::value::Value;
use reprowd_platform::types::{Task, TaskRun, WorkerId};
use serde::{Deserialize, Serialize};

/// How a cell came to be.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Derivation {
    /// The input object itself (step 1).
    Source,
    /// Published as a crowdsourcing task (step 3).
    Published {
        /// The platform task record (contains `published_at`).
        task: Task,
    },
    /// Collected task runs (step 4).
    Collected {
        /// Every worker's run, in submission order.
        runs: Vec<TaskRun>,
    },
    /// Aggregated from runs by a quality-control method (step 5).
    Aggregated {
        /// Method name (`"mv"`, `"em"`, `"ds"`, `"wmv"`).
        method: String,
        /// The runs the aggregate consumed.
        inputs: Vec<TaskRun>,
        /// The aggregate value.
        output: Value,
    },
    /// Computed by a user-supplied `map` function.
    Mapped {
        /// The derived column name.
        column: String,
        /// The cell value.
        output: Value,
    },
}

/// Full lineage of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLineage {
    /// Experiment the cell belongs to.
    pub experiment: String,
    /// Row index.
    pub row: usize,
    /// The row's cache key hash.
    pub row_hash: String,
    /// The row's source object.
    pub object: Value,
    /// Column the cell lives in.
    pub column: String,
    /// The derivation.
    pub derivation: Derivation,
}

impl CellLineage {
    /// The workers who contributed to this cell, ascending, deduplicated
    /// (Figure 3's "which workers did the tasks?").
    pub fn workers(&self) -> Vec<WorkerId> {
        let runs = match &self.derivation {
            Derivation::Collected { runs } => runs,
            Derivation::Aggregated { inputs, .. } => inputs,
            _ => return Vec::new(),
        };
        let mut ws: Vec<WorkerId> = runs.iter().map(|r| r.worker_id).collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }

    /// When the underlying task was published, if this cell descends from
    /// one (Figure 3's "when were the tasks published?").
    pub fn published_at(&self) -> Option<u64> {
        match &self.derivation {
            Derivation::Published { task } => Some(task.published_at),
            _ => None,
        }
    }

    /// Human-readable one-cell report.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "experiment {:?} row {} column {:?}\n  object: {}\n",
            self.experiment,
            self.row,
            self.column,
            self.object
        );
        match &self.derivation {
            Derivation::Source => out.push_str("  source object (step 1)\n"),
            Derivation::Published { task } => {
                out.push_str(&format!(
                    "  task {} published at t={}ms (project {})\n",
                    task.id, task.published_at, task.project_id
                ));
            }
            Derivation::Collected { runs } => {
                for r in runs {
                    out.push_str(&format!(
                        "  worker {} answered {} (assigned t={}ms, submitted t={}ms)\n",
                        r.worker_id, r.answer, r.assigned_at, r.submitted_at
                    ));
                }
            }
            Derivation::Aggregated { method, inputs, output } => {
                out.push_str(&format!("  {} over {} runs -> {}\n", method, inputs.len(), output));
                for r in inputs {
                    out.push_str(&format!("    worker {} said {}\n", r.worker_id, r.answer));
                }
            }
            Derivation::Mapped { column, output } => {
                out.push_str(&format!("  map({column:?}) -> {output}\n"));
            }
        }
        out
    }
}

impl CrowdData {
    /// Lineage of the cell at (`row`, `column`).
    ///
    /// `column` may be `"object"`, `"task"`, `"result"`, or a derived
    /// column. Derived columns whose values came from an aggregator produce
    /// [`Derivation::Aggregated`] with the consumed runs attached.
    pub fn lineage(&self, row: usize, column: &str) -> Result<CellLineage> {
        let r = self
            .row(row)
            .ok_or_else(|| Error::State(format!("row {row} out of range")))?;
        let derivation = match column {
            "object" => Derivation::Source,
            "task" => {
                let stored = r.task.as_ref().ok_or_else(|| {
                    Error::MissingColumn(format!("row {row} has no task cell yet"))
                })?;
                Derivation::Published { task: stored.task.clone() }
            }
            "result" => {
                let stored = r.result.as_ref().ok_or_else(|| {
                    Error::MissingColumn(format!("row {row} has no result cell yet"))
                })?;
                Derivation::Collected { runs: stored.runs.clone() }
            }
            derived => {
                let cell = r
                    .derived
                    .get(derived)
                    .ok_or_else(|| Error::MissingColumn(derived.to_string()))?;
                match derived {
                    "mv" | "em" | "ds" | "wmv" => Derivation::Aggregated {
                        method: derived.to_string(),
                        inputs: r.result.as_ref().map(|s| s.runs.clone()).unwrap_or_default(),
                        output: cell.clone(),
                    },
                    other => Derivation::Mapped {
                        column: other.to_string(),
                        output: cell.clone(),
                    },
                }
            }
        };
        Ok(CellLineage {
            experiment: self.name().to_string(),
            row,
            row_hash: r.hash.clone(),
            object: r.object.clone(),
            column: column.to_string(),
            derivation,
        })
    }

    /// Lineage for every row of a column (the Figure 3 loop).
    pub fn column_lineage(&self, column: &str) -> Result<Vec<CellLineage>> {
        (0..self.len()).map(|i| self.lineage(i, column)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CrowdContext;
    use crate::presenter::Presenter;
    use crate::val;

    fn labeled(cc: &CrowdContext) -> CrowdData {
        let objects: Vec<Value> = (0..2)
            .map(|i| {
                val!({
                    "url": format!("img{i}.jpg"),
                    "_sim": {"kind": "label", "truth": 0, "labels": ["Yes", "No"], "difficulty": 0.0}
                })
            })
            .collect();
        cc.crowddata("lin")
            .unwrap()
            .data(objects)
            .unwrap()
            .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
            .unwrap()
            .publish(3)
            .unwrap()
            .collect()
            .unwrap()
            .majority_vote()
            .unwrap()
    }

    #[test]
    fn task_lineage_has_publish_time() {
        let cc = CrowdContext::in_memory_sim(20);
        let cd = labeled(&cc);
        let lin = cd.lineage(0, "task").unwrap();
        assert!(lin.published_at().is_some());
        assert!(lin.describe().contains("published at"));
    }

    #[test]
    fn result_lineage_names_all_workers() {
        let cc = CrowdContext::in_memory_sim(21);
        let cd = labeled(&cc);
        let lin = cd.lineage(0, "result").unwrap();
        let workers = lin.workers();
        assert_eq!(workers.len(), 3, "3 distinct workers: {workers:?}");
        assert!(lin.describe().contains("worker"));
    }

    #[test]
    fn aggregate_lineage_links_runs_to_output() {
        let cc = CrowdContext::in_memory_sim(22);
        let cd = labeled(&cc);
        let lin = cd.lineage(1, "mv").unwrap();
        match &lin.derivation {
            Derivation::Aggregated { method, inputs, output } => {
                assert_eq!(method, "mv");
                assert_eq!(inputs.len(), 3);
                assert_eq!(output, &val!("Yes"));
            }
            other => panic!("expected aggregated, got {other:?}"),
        }
        assert_eq!(lin.workers().len(), 3);
    }

    #[test]
    fn object_lineage_is_source() {
        let cc = CrowdContext::in_memory_sim(23);
        let cd = labeled(&cc);
        let lin = cd.lineage(0, "object").unwrap();
        assert_eq!(lin.derivation, Derivation::Source);
        assert_eq!(lin.published_at(), None);
        assert!(lin.workers().is_empty());
    }

    #[test]
    fn mapped_lineage() {
        let cc = CrowdContext::in_memory_sim(24);
        let cd = labeled(&cc).map("upper", |r| val!(r.object["url"].as_str().unwrap().to_uppercase())).unwrap();
        let lin = cd.lineage(0, "upper").unwrap();
        assert!(matches!(lin.derivation, Derivation::Mapped { .. }));
    }

    #[test]
    fn errors_on_missing_cells() {
        let cc = CrowdContext::in_memory_sim(25);
        let cd = cc.crowddata("lin2").unwrap().data(vec![val!(1)]).unwrap();
        assert!(cd.lineage(0, "task").is_err());
        assert!(cd.lineage(0, "mv").is_err());
        assert!(cd.lineage(5, "object").is_err());
    }

    #[test]
    fn column_lineage_covers_all_rows() {
        let cc = CrowdContext::in_memory_sim(26);
        let cd = labeled(&cc);
        let lins = cd.column_lineage("result").unwrap();
        assert_eq!(lins.len(), 2);
        // Every crowdsourced answer is traceable to a worker: the paper's
        // examinability claim, verbatim.
        for lin in &lins {
            assert!(!lin.workers().is_empty());
        }
    }

    #[test]
    fn lineage_serializes() {
        let cc = CrowdContext::in_memory_sim(27);
        let cd = labeled(&cc);
        let lin = cd.lineage(0, "mv").unwrap();
        let s = serde_json::to_string(&lin).unwrap();
        let back: CellLineage = serde_json::from_str(&s).unwrap();
        assert_eq!(back, lin);
    }
}
