//! CrowdData — the paper's central abstraction.
//!
//! "A key insight in designing Reprowd is to model a list of steps for
//! doing a crowdsourcing experiment as a sequence of manipulations of a
//! tabular dataset called CrowdData." Each step appends a column:
//!
//! | step | call | column | persisted? |
//! |------|------|--------|------------|
//! | 1. input data        | [`data`](CrowdData::data)             | `object` | no (recomputable) |
//! | 2. choose UI         | [`presenter`](CrowdData::presenter)   | —        | fingerprint in manifest |
//! | 3. publish tasks     | [`publish`](CrowdData::publish)       | `task`   | **yes** |
//! | 4. get results       | [`collect`](CrowdData::collect)       | `result` | **yes** |
//! | 5. quality control   | [`majority_vote`](CrowdData::majority_vote) etc. | `mv`/`em`/`ds` | no (recomputed) |
//!
//! The persisted columns are keyed by *content* — experiment name,
//! presenter fingerprint, row object hash — so any rerun (same machine
//! after a crash, or another researcher with the shared database file)
//! reuses exactly the still-valid crowd work and issues platform calls only
//! for genuinely new rows. [`RunStats`] exposes the reuse accounting the
//! experiments report.

use crate::context::CrowdContext;
use crate::error::{Error, Result};
use crate::hash::{hash_value, hex};
use crate::presenter::Presenter;
use crate::store::{ExperimentStore, Manifest, StoredResult, StoredTask};
use crate::value::{canonical, Value};
use reprowd_platform::types::{TaskId, TaskSpec};
use reprowd_quality::{
    majority_vote_matrix, weighted_majority_vote_matrix, DawidSkene, DsConfig, OneCoin,
    OneCoinConfig, TiePolicy, VoteMatrix, WorkerId,
};
use std::collections::{BTreeMap, HashMap};

/// Enforces the bulk-endpoint contract ("all-or-nothing, results in
/// request order"): a platform answering a bulk call with the wrong
/// cardinality would otherwise silently leave tail rows unpersisted.
pub(crate) fn check_bulk_len(op: &str, got: usize, requested: usize) -> Result<()> {
    if got != requested {
        return Err(Error::State(format!(
            "platform bulk contract violated: {op} returned {got} items for a \
             batch of {requested}"
        )));
    }
    Ok(())
}

/// One row of a CrowdData table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Position in the table.
    pub index: usize,
    /// Content hash of the object (hex), suffixed `-k` for the k-th
    /// duplicate occurrence. The row part of the cache key.
    pub hash: String,
    /// The input object (paper: the `object` column).
    pub object: Value,
    /// The published task, once step 3 ran for this row.
    pub task: Option<StoredTask>,
    /// The collected runs, once step 4 ran for this row.
    pub result: Option<StoredResult>,
    /// Derived (recomputed, non-persisted) cells by column name.
    pub derived: BTreeMap<String, Value>,
}

/// Cache-reuse accounting for the current CrowdData instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Tasks actually published to the platform by this instance.
    pub tasks_published: u64,
    /// Rows whose task cell came from the database.
    pub tasks_reused: u64,
    /// Result cells fetched from the platform by this instance.
    pub results_collected: u64,
    /// Rows whose result cell came from the database.
    pub results_reused: u64,
    /// Tasks re-published because the platform lost them (fresh platform
    /// instance after a crash of the *platform*, not the client).
    pub tasks_republished: u64,
}

impl RunStats {
    /// Folds another run's accounting into this one, field by field —
    /// every counter, including ones added later. Multi-round operators
    /// (e.g. categorize's escalation round) use this instead of
    /// hand-summing fields, which silently dropped any counter the sum
    /// didn't know about.
    pub fn merge(&mut self, other: RunStats) {
        let RunStats {
            tasks_published,
            tasks_reused,
            results_collected,
            results_reused,
            tasks_republished,
        } = other;
        self.tasks_published += tasks_published;
        self.tasks_reused += tasks_reused;
        self.results_collected += results_collected;
        self.results_reused += results_reused;
        self.tasks_republished += tasks_republished;
    }
}

impl std::ops::AddAssign for RunStats {
    fn add_assign(&mut self, other: RunStats) {
        self.merge(other);
    }
}

/// The tabular experiment. See the module docs for the step/column mapping.
pub struct CrowdData {
    ctx: CrowdContext,
    manifest: Manifest,
    rows: Vec<Row>,
    /// Whether `data`/`extend_data` ran (an *empty* dataset is legal and
    /// distinct from "step 1 never happened").
    data_set: bool,
    presenter: Option<Presenter>,
    n_assignments: Option<u32>,
    stats: RunStats,
}

impl CrowdData {
    /// Resumes (or starts) an experiment from its manifest. Internal — use
    /// [`CrowdContext::crowddata`].
    pub(crate) fn resume(ctx: CrowdContext, manifest: Manifest) -> Self {
        CrowdData {
            ctx,
            manifest,
            rows: Vec::new(),
            data_set: false,
            presenter: None,
            n_assignments: None,
            stats: RunStats::default(),
        }
    }

    // ---------------------------------------------------------- step 1

    /// Step 1: sets the input objects. Replaces any previously set rows.
    ///
    /// Duplicate objects are legal; each occurrence becomes its own row
    /// (and its own task) with a stable `-k` suffix on the content hash.
    pub fn data(mut self, objects: Vec<Value>) -> Result<Self> {
        self.rows = Self::rows_from_objects(objects);
        self.data_set = true;
        Ok(self)
    }

    /// Appends objects to the existing rows (Ally's Figure 3 move: extend
    /// the experiment; only the new rows will be crowdsourced).
    pub fn extend_data(mut self, objects: Vec<Value>) -> Result<Self> {
        self.data_set = true;
        let mut occurrences: HashMap<u64, usize> = HashMap::new();
        for row in &self.rows {
            let h = hash_value(&row.object);
            *occurrences.entry(h).or_insert(0) += 1;
        }
        for object in objects {
            let h = hash_value(&object);
            let occ = occurrences.entry(h).or_insert(0);
            let hash = if *occ == 0 { hex(h) } else { format!("{}-{}", hex(h), *occ) };
            *occ += 1;
            self.rows.push(Row {
                index: self.rows.len(),
                hash,
                object,
                task: None,
                result: None,
                derived: BTreeMap::new(),
            });
        }
        Ok(self)
    }

    fn rows_from_objects(objects: Vec<Value>) -> Vec<Row> {
        let mut occurrences: HashMap<u64, usize> = HashMap::new();
        objects
            .into_iter()
            .enumerate()
            .map(|(index, object)| {
                let h = hash_value(&object);
                let occ = occurrences.entry(h).or_insert(0);
                let hash = if *occ == 0 { hex(h) } else { format!("{}-{}", hex(h), *occ) };
                *occ += 1;
                Row { index, hash, object, task: None, result: None, derived: BTreeMap::new() }
            })
            .collect()
    }

    // ---------------------------------------------------------- step 2

    /// Step 2: chooses the task UI. The presenter's fingerprint becomes
    /// part of every cache key: changing the question or the label set
    /// invalidates exactly the cells collected under the old UI.
    pub fn presenter(mut self, presenter: Presenter) -> Result<Self> {
        let fp = presenter.fingerprint();
        if self.manifest.presenter_fingerprint.as_deref() != Some(fp.as_str()) {
            self.manifest.presenter_fingerprint = Some(fp);
            self.save_manifest()?;
        }
        self.presenter = Some(presenter);
        Ok(self)
    }

    // ---------------------------------------------------------- step 3

    /// Step 3: publishes one task per row that does not already have a
    /// cached task cell, each asking for `n_assignments` distinct workers.
    ///
    /// Cache-missing rows are published in batches of the context's
    /// [`batch_size`](crate::CrowdContext::batch_size): each batch is one
    /// bulk platform round-trip
    /// ([`publish_tasks`](reprowd_platform::CrowdPlatform::publish_tasks))
    /// followed by one atomic database write, and is recorded in the
    /// context's [`BatchMetrics`](crate::exec::BatchMetrics). Up to
    /// [`inflight_batches`](crate::exec::ExecutionConfig::inflight_batches)
    /// batch round-trips are kept in flight at once by the pipelined
    /// engine ([`crate::pipeline`]); the platform still observes them
    /// strictly in batch order and the database commits them strictly in
    /// batch order. Neither knob changes what gets published — ids,
    /// payloads, and collected answers are bit-identical for every batch
    /// size and every in-flight depth; batch size 1 reproduces the
    /// historical per-row pipeline exactly, API-call counts included.
    ///
    /// Crash safety: batches commit (all-or-nothing each) in order, so a
    /// crash mid-`publish` leaves a clean batch prefix in the database and
    /// repays at most the batches past the commit frontier — the
    /// scheduler lets work run up to `2 × inflight_batches` batches ahead
    /// of it (`inflight_batches` being worked plus as many awaiting their
    /// ordered commit) — on rerun; cached batches replay from the
    /// database with zero platform traffic. (If the process dies between
    /// the platform accepting a batch and the local write, the rerun
    /// publishes duplicate tasks for that window — the same exposure the
    /// original system has against PyBossa, bounded by
    /// `batch_size × 2·inflight_batches` rows; the stale tasks are simply
    /// never collected.)
    pub fn publish(mut self, n_assignments: u32) -> Result<Self> {
        if !self.data_set {
            return Err(Error::State("publish before data: call data(...) first".into()));
        }
        let presenter = self
            .presenter
            .clone()
            .ok_or_else(|| Error::State("publish before presenter: choose a UI first".into()))?;
        if n_assignments == 0 {
            return Err(Error::State("n_assignments must be positive".into()));
        }
        let fp = presenter.fingerprint();
        if self.n_assignments.is_none() {
            self.n_assignments = Some(n_assignments);
        }
        if self.manifest.n_assignments != Some(n_assignments) {
            self.manifest.n_assignments = Some(n_assignments);
            self.save_manifest()?;
        }

        // Pass 1: serve cache hits; remember the rows that genuinely need
        // the crowd, along with the cache key each will be stored under.
        let mut misses: Vec<(usize, String)> = Vec::new();
        for i in 0..self.rows.len() {
            if self.rows[i].task.is_some() {
                continue;
            }
            let key = ExperimentStore::row_key(&self.manifest.name, &fp, &self.rows[i].hash);
            if let Some(cached) = self.ctx.store().tasks.get(key.as_bytes())? {
                self.rows[i].task = Some(cached);
                self.stats.tasks_reused += 1;
                continue;
            }
            misses.push((i, key));
        }
        if misses.is_empty() {
            // Fully cached: zero platform traffic, the sharable guarantee.
            return Ok(self);
        }

        // Pass 2: bulk-publish the misses, one batch per round-trip.
        let pid = self.ensure_project(&presenter)?;
        let work: Vec<(usize, String, u32)> =
            misses.into_iter().map(|(i, key)| (i, key, n_assignments)).collect();
        let published = self.bulk_publish(&presenter, pid, &work)?;
        self.stats.tasks_published += published.len() as u64;
        Ok(self)
    }

    /// Bulk-publishes `work` — `(row index, cache key, redundancy)` — in
    /// batches of the context's batch size, with up to
    /// [`inflight_batches`](crate::exec::ExecutionConfig::inflight_batches)
    /// batch round-trips in flight at once (see [`crate::pipeline`]): the
    /// platform still observes the batches strictly in order (the issue
    /// gate serializes their effects), and each batch's atomic database
    /// write commits strictly in batch order, so results and the store
    /// are bit-identical to sequential execution at every depth. Sets each
    /// row's task cell and returns the published `(row index, task id)`
    /// pairs in input order. Shared by `publish` and `collect`'s lost-task
    /// republish path, so both always follow the same contract.
    fn bulk_publish(
        &mut self,
        presenter: &Presenter,
        pid: u64,
        work: &[(usize, String, u32)],
    ) -> Result<Vec<(usize, TaskId)>> {
        let rows = &self.rows;
        let ctx = &self.ctx;
        let mut cells: Vec<(usize, StoredTask)> = Vec::with_capacity(work.len());
        crate::pipeline::run_chunked(
            ctx.exec().inflight_batches(),
            ctx.exec().batch_size(),
            work,
            |slot, chunk: &[(usize, String, u32)], gate| {
                let specs: Vec<TaskSpec> = chunk
                    .iter()
                    .map(|&(i, _, n)| TaskSpec {
                        payload: presenter.render(&rows[i].object),
                        n_assignments: n,
                    })
                    .collect();
                let tasks = ctx.platform().publish_tasks_pipelined(pid, specs, gate, slot)?;
                check_bulk_len("publish_tasks", tasks.len(), chunk.len())?;
                Ok(tasks)
            },
            |chunk, tasks| {
                ctx.exec().metrics().record_publish(chunk.len() as u64);
                let stored: Vec<(String, StoredTask)> = chunk
                    .iter()
                    .zip(tasks)
                    .map(|(&(i, ref key, n), task)| {
                        let cell = StoredTask {
                            task,
                            object: rows[i].object.clone(),
                            n_assignments: n,
                        };
                        (key.clone(), cell)
                    })
                    .collect();
                ctx.store().put_task_batch(&stored)?;
                for (&(i, _, _), (_, cell)) in chunk.iter().zip(stored) {
                    cells.push((i, cell));
                }
                Ok(())
            },
        )?;
        let mut published = Vec::with_capacity(cells.len());
        for (i, cell) in cells {
            published.push((i, cell.task.id));
            self.rows[i].task = Some(cell);
        }
        Ok(published)
    }

    fn ensure_project(&mut self, presenter: &Presenter) -> Result<u64> {
        crate::pipeline::ensure_project(&self.ctx, &mut self.manifest, presenter)
    }

    // ---------------------------------------------------------- step 4

    /// Step 4: collects results. Rows with a cached result cell are served
    /// from the database (zero platform traffic); for the rest, the
    /// platform is driven until their tasks complete and the runs are
    /// fetched in batches of the context's
    /// [`batch_size`](crate::CrowdContext::batch_size) — one bulk
    /// round-trip
    /// ([`fetch_runs_bulk`](reprowd_platform::CrowdPlatform::fetch_runs_bulk))
    /// plus one atomic database write per batch, recorded in the context's
    /// [`BatchMetrics`](crate::exec::BatchMetrics).
    ///
    /// Crash safety mirrors [`publish`](CrowdData::publish): results land
    /// in the database batch by batch, so a crash mid-`collect` re-fetches
    /// at most the one batch in flight on rerun (the crowd work itself is
    /// never redone — the tasks stay collected on the platform).
    ///
    /// Completion is probed in bulk too
    /// ([`are_complete`](reprowd_platform::CrowdPlatform::are_complete),
    /// one probe per batch), so no stage of `collect` scales its platform
    /// round-trips linearly in rows. If the platform no longer knows a
    /// published task (the platform itself restarted — distinct from a
    /// client crash), the task is transparently re-published (also in
    /// batches) and counted in [`RunStats::tasks_republished`].
    pub fn collect(mut self) -> Result<Self> {
        let presenter = self
            .presenter
            .clone()
            .ok_or_else(|| Error::State("collect before presenter".into()))?;
        let fp = presenter.fingerprint();
        // Cache pass: serve cached results; remember candidate rows
        // (index, cache key, task id, redundancy) that need the platform.
        let mut candidates: Vec<(usize, String, TaskId, u32)> = Vec::new();
        for i in 0..self.rows.len() {
            if self.rows[i].result.is_some() {
                continue;
            }
            let key = ExperimentStore::row_key(&self.manifest.name, &fp, &self.rows[i].hash);
            if let Some(cached) = self.ctx.store().results.get(key.as_bytes())? {
                self.rows[i].result = Some(cached);
                self.stats.results_reused += 1;
                continue;
            }
            let Some(stored) = self.rows[i].task.as_ref() else {
                return Err(Error::State(format!(
                    "collect before publish: row {i} has no task"
                )));
            };
            candidates.push((i, key, stored.task.id, stored.n_assignments));
        }

        // Status pass: one bulk probe per batch tells us which tasks the
        // platform still knows (a platform restart loses tasks — distinct
        // from a client crash, whose state lives in our database). Probes
        // are read-only, so batches pipeline like every other phase.
        let mut pending: Vec<(usize, TaskId)> = Vec::new();
        let mut lost: Vec<(usize, String, u32)> = Vec::new();
        {
            let ctx = &self.ctx;
            crate::pipeline::run_chunked(
                ctx.exec().inflight_batches(),
                ctx.exec().batch_size(),
                &candidates,
                |slot, chunk: &[(usize, String, TaskId, u32)], gate| {
                    let ids: Vec<TaskId> = chunk.iter().map(|&(_, _, id, _)| id).collect();
                    let statuses = ctx.platform().are_complete_pipelined(&ids, gate, slot)?;
                    check_bulk_len("are_complete", statuses.len(), chunk.len())?;
                    Ok(statuses)
                },
                |chunk, statuses| {
                    ctx.exec().metrics().record_probe(chunk.len() as u64);
                    for ((i, key, id, n), status) in chunk.iter().cloned().zip(statuses) {
                        match status {
                            Some(_) => pending.push((i, id)),
                            None => lost.push((i, key, n)),
                        }
                    }
                    Ok(())
                },
            )?;
        }

        // Batch-republish rows whose tasks the platform lost.
        if !lost.is_empty() {
            let pid = self.ensure_project(&presenter)?;
            let republished = self.bulk_publish(&presenter, pid, &lost)?;
            self.stats.tasks_republished += republished.len() as u64;
            pending.extend(republished);
        }

        if pending.is_empty() {
            return Ok(self);
        }
        let ids: Vec<TaskId> = pending.iter().map(|&(_, id)| id).collect();
        self.ctx.platform().run_until_complete(&ids)?;
        // Fetch pass: read-only bulk fetches pipeline with up to `depth`
        // batches in flight; each batch's atomic result write commits in
        // batch order, so a crash still leaves a clean batch prefix and
        // re-fetches at most the batches that were in flight.
        let mut cells: Vec<(usize, StoredResult)> = Vec::with_capacity(pending.len());
        {
            let ctx = &self.ctx;
            let rows = &self.rows;
            let name = &self.manifest.name;
            crate::pipeline::run_chunked(
                ctx.exec().inflight_batches(),
                ctx.exec().batch_size(),
                &pending,
                |slot, chunk: &[(usize, TaskId)], gate| {
                    let chunk_ids: Vec<TaskId> = chunk.iter().map(|&(_, id)| id).collect();
                    let runs_per_task =
                        ctx.platform().fetch_runs_bulk_pipelined(&chunk_ids, gate, slot)?;
                    check_bulk_len("fetch_runs_bulk", runs_per_task.len(), chunk.len())?;
                    Ok(runs_per_task)
                },
                |chunk, runs_per_task| {
                    ctx.exec().metrics().record_fetch(chunk.len() as u64);
                    let stored: Vec<(String, StoredResult)> = chunk
                        .iter()
                        .zip(runs_per_task)
                        .map(|(&(i, _), runs)| {
                            let key = ExperimentStore::row_key(name, &fp, &rows[i].hash);
                            (key, StoredResult { runs })
                        })
                        .collect();
                    // One atomic write per batch, in batch order.
                    ctx.store().put_result_batch(&stored)?;
                    for (&(i, _), (_, cell)) in chunk.iter().zip(stored) {
                        cells.push((i, cell));
                    }
                    Ok(())
                },
            )?;
        }
        for (i, cell) in cells {
            self.rows[i].result = Some(cell);
            self.stats.results_collected += 1;
        }
        Ok(self)
    }

    // ---------------------------------------------------------- step 5

    /// The answer space of this experiment: the values votes are mapped
    /// onto, in canonical order. Fixed by the presenter where possible so
    /// tie-breaking is stable across runs.
    pub fn answer_space(&self) -> Result<Vec<Value>> {
        let presenter =
            self.presenter.as_ref().ok_or_else(|| Error::State("no presenter set".into()))?;
        if let Some(space) = presenter.static_answer_space() {
            return Ok(space);
        }
        // Free text: the space is whatever the crowd answered.
        let mut distinct: Vec<Value> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for row in &self.rows {
            if let Some(res) = &row.result {
                for run in &res.runs {
                    if seen.insert(canonical(&run.answer)) {
                        distinct.push(run.answer.clone());
                    }
                }
            }
        }
        distinct.sort_by_key(canonical);
        Ok(distinct)
    }

    /// Bridges the `result` column into a [`VoteMatrix`] over
    /// [`answer_space`](CrowdData::answer_space). Answers outside the space
    /// (malformed crowd input) are dropped, mirroring how the original
    /// system tolerates junk submissions.
    pub fn vote_matrix(&self) -> Result<(VoteMatrix, Vec<Value>)> {
        let space = self.answer_space()?;
        let index: HashMap<String, usize> =
            space.iter().enumerate().map(|(i, v)| (canonical(v), i)).collect();
        let mut matrix = VoteMatrix::new(space.len().max(1), self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            if let Some(res) = &row.result {
                for run in &res.runs {
                    if let Some(&label) = index.get(&canonical(&run.answer)) {
                        matrix.push_vote(i, run.worker_id, label);
                    }
                }
            }
        }
        Ok((matrix, space))
    }

    /// Step 5 (paper default): majority vote into the derived column `mv`.
    /// Ties break toward the earlier label of the answer space; unanswered
    /// rows get `null`.
    pub fn majority_vote(self) -> Result<Self> {
        let (matrix, space) = self.vote_matrix()?;
        let labels = majority_vote_matrix(&matrix, TiePolicy::LowestLabel);
        self.set_label_column("mv", &labels, &space)
    }

    /// One-coin EM aggregation into the derived column `em`.
    pub fn em_vote(self, config: &OneCoinConfig) -> Result<Self> {
        let (matrix, space) = self.vote_matrix()?;
        let model = OneCoin::fit(&matrix, config);
        let labels = model.labels(&matrix);
        self.set_label_column("em", &labels, &space)
    }

    /// Dawid–Skene aggregation into the derived column `ds`.
    pub fn dawid_skene(self, config: &DsConfig) -> Result<Self> {
        let (matrix, space) = self.vote_matrix()?;
        let model = DawidSkene::fit(&matrix, config);
        let labels = model.labels(&matrix);
        self.set_label_column("ds", &labels, &space)
    }

    /// Weighted majority vote into the derived column `wmv`.
    pub fn weighted_vote(
        self,
        weights: &HashMap<WorkerId, f64>,
        default_weight: f64,
    ) -> Result<Self> {
        let (matrix, space) = self.vote_matrix()?;
        let labels =
            weighted_majority_vote_matrix(&matrix, weights, default_weight, TiePolicy::LowestLabel);
        self.set_label_column("wmv", &labels, &space)
    }

    fn set_label_column(
        mut self,
        name: &str,
        labels: &[Option<usize>],
        space: &[Value],
    ) -> Result<Self> {
        for (row, label) in self.rows.iter_mut().zip(labels) {
            let cell = match label {
                Some(l) => space.get(*l).cloned().unwrap_or(Value::Null),
                None => Value::Null,
            };
            row.derived.insert(name.to_string(), cell);
        }
        Ok(self)
    }

    /// Adds a derived column computed by a pure function of each row.
    /// Like all derived columns it is *not* persisted — rerunning the
    /// program recomputes it, per the paper's recovery model.
    pub fn map(mut self, column: &str, f: impl Fn(&Row) -> Value) -> Result<Self> {
        if matches!(column, "object" | "task" | "result") {
            return Err(Error::State(format!("column name {column:?} is reserved")));
        }
        for row in self.rows.iter_mut() {
            let cell = f(row);
            row.derived.insert(column.to_string(), cell);
        }
        Ok(self)
    }

    // ---------------------------------------------------------- accessors

    /// The experiment name.
    pub fn name(&self) -> &str {
        &self.manifest.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows are set.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// One row.
    pub fn row(&self, index: usize) -> Option<&Row> {
        self.rows.get(index)
    }

    /// A full column as values: `"object"`, `"task"`, `"result"`, or any
    /// derived column. Missing cells are `null`.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        match name {
            "object" => Ok(self.rows.iter().map(|r| r.object.clone()).collect()),
            "task" => Ok(self
                .rows
                .iter()
                .map(|r| {
                    r.task
                        .as_ref()
                        .map(|t| serde_json::to_value(&t.task).unwrap_or(Value::Null))
                        .unwrap_or(Value::Null)
                })
                .collect()),
            "result" => Ok(self
                .rows
                .iter()
                .map(|r| {
                    r.result
                        .as_ref()
                        .map(|res| serde_json::to_value(&res.runs).unwrap_or(Value::Null))
                        .unwrap_or(Value::Null)
                })
                .collect()),
            other => {
                // An empty table has every column, all empty.
                if !self.rows.is_empty()
                    && !self.rows.iter().any(|r| r.derived.contains_key(other))
                {
                    return Err(Error::MissingColumn(other.to_string()));
                }
                Ok(self
                    .rows
                    .iter()
                    .map(|r| r.derived.get(other).cloned().unwrap_or(Value::Null))
                    .collect())
            }
        }
    }

    /// Cache-reuse statistics for this instance.
    pub fn run_stats(&self) -> RunStats {
        self.stats
    }

    /// Exports the whole table — objects, tasks, results, derived cells —
    /// as one self-describing JSON document, for examination outside the
    /// library (notebooks, diffing two researchers' runs, archival).
    pub fn export_json(&self) -> Result<Value> {
        let mut rows = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            rows.push(serde_json::json!({
                "index": row.index,
                "hash": row.hash,
                "object": row.object,
                "task": row.task.as_ref().map(|t| serde_json::to_value(&t.task)).transpose()?,
                "result": row
                    .result
                    .as_ref()
                    .map(|r| serde_json::to_value(&r.runs))
                    .transpose()?,
                "derived": row.derived,
            }));
        }
        Ok(serde_json::json!({
            "experiment": self.manifest.name,
            "presenter_fingerprint": self.manifest.presenter_fingerprint,
            "n_assignments": self.manifest.n_assignments,
            "rows": rows,
        }))
    }

    /// The presenter, if step 2 has run.
    pub fn current_presenter(&self) -> Option<&Presenter> {
        self.presenter.as_ref()
    }

    /// The manifest as persisted.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The owning context.
    pub fn context(&self) -> &CrowdContext {
        &self.ctx
    }

    fn save_manifest(&self) -> Result<()> {
        self.ctx
            .store()
            .manifests
            .put(self.manifest.name.as_bytes(), &self.manifest)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::val;
    use reprowd_platform::{CrowdPlatform, SimPlatform};
    use reprowd_storage::{Backend, MemoryStore};
    use std::sync::Arc;

    fn sim_ctx(seed: u64) -> (CrowdContext, Arc<SimPlatform>) {
        let platform = Arc::new(SimPlatform::quick(5, 1.0, seed));
        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        (CrowdContext::new(Arc::clone(&platform) as Arc<dyn CrowdPlatform>, backend).unwrap(), platform)
    }

    fn figure2(cc: &CrowdContext, name: &str) -> CrowdData {
        // The paper's Bob experiment over the simulated crowd: objects carry
        // the answer model a real crowd would infer by looking at the image.
        let objects: Vec<Value> = (0..3)
            .map(|i| {
                val!({
                    "url": format!("img{i}.jpg"),
                    "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.0}
                })
            })
            .collect();
        cc.crowddata(name)
            .unwrap()
            .data(objects)
            .unwrap()
            .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
            .unwrap()
            .publish(3)
            .unwrap()
            .collect()
            .unwrap()
            .majority_vote()
            .unwrap()
    }

    #[test]
    fn figure2_end_to_end() {
        let (cc, _) = sim_ctx(1);
        let cd = figure2(&cc, "bob");
        assert_eq!(cd.len(), 3);
        let mv = cd.column("mv").unwrap();
        // Perfect workers: majority equals truth.
        assert_eq!(mv, vec![val!("Yes"), val!("No"), val!("Yes")]);
        let stats = cd.run_stats();
        assert_eq!(stats.tasks_published, 3);
        assert_eq!(stats.results_collected, 3);
        assert_eq!(stats.tasks_reused, 0);
    }

    #[test]
    fn rerun_uses_zero_platform_calls() {
        let (cc, platform) = sim_ctx(2);
        let first = figure2(&cc, "bob");
        let calls_after_first = platform.api_calls();
        let second = figure2(&cc, "bob");
        // Identical results...
        assert_eq!(first.column("mv").unwrap(), second.column("mv").unwrap());
        assert_eq!(first.column("result").unwrap(), second.column("result").unwrap());
        // ...and not a single extra platform call.
        assert_eq!(platform.api_calls(), calls_after_first);
        let stats = second.run_stats();
        assert_eq!(stats.tasks_published, 0);
        assert_eq!(stats.tasks_reused, 3);
        assert_eq!(stats.results_reused, 3);
    }

    #[test]
    fn extending_only_crowdsources_the_delta() {
        let (cc, platform) = sim_ctx(3);
        let _ = figure2(&cc, "bob");
        let calls_before = platform.api_calls();
        // Ally extends Bob's experiment with two new images.
        let objects: Vec<Value> = (0..5)
            .map(|i| {
                val!({
                    "url": format!("img{i}.jpg"),
                    "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.0}
                })
            })
            .collect();
        let cd = cc
            .crowddata("bob")
            .unwrap()
            .data(objects)
            .unwrap()
            .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
            .unwrap()
            .publish(3)
            .unwrap()
            .collect()
            .unwrap()
            .majority_vote()
            .unwrap();
        let stats = cd.run_stats();
        assert_eq!(stats.tasks_reused, 3);
        assert_eq!(stats.tasks_published, 2);
        assert_eq!(stats.results_reused, 3);
        assert_eq!(stats.results_collected, 2);
        // Platform saw exactly the delta, batched: one bulk publish of the
        // 2 new rows + one bulk fetch of their runs.
        assert_eq!(platform.api_calls() - calls_before, 2);
        assert_eq!(cd.column("mv").unwrap().len(), 5);
    }

    #[test]
    fn changing_presenter_invalidates_cache() {
        let (cc, platform) = sim_ctx(4);
        let _ = figure2(&cc, "bob");
        let calls_before = platform.api_calls();
        let objects: Vec<Value> = (0..3)
            .map(|i| {
                val!({
                    "url": format!("img{i}.jpg"),
                    "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.0}
                })
            })
            .collect();
        let cd = cc
            .crowddata("bob")
            .unwrap()
            .data(objects)
            .unwrap()
            // Different question: the old answers are not valid for it.
            .presenter(Presenter::image_label("Is this a DOG?", &["Yes", "No"]))
            .unwrap()
            .publish(3)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(cd.run_stats().tasks_published, 3);
        assert!(platform.api_calls() > calls_before);
    }

    #[test]
    fn reordering_steps_keeps_cache_valid() {
        // Unlike TurKit's order-keyed cache, content keys survive
        // reordering of independent manipulations: publishing the same rows
        // in reverse object order reuses all cells.
        let (cc, platform) = sim_ctx(5);
        let objs = |rev: bool| {
            let mut v: Vec<Value> = (0..4)
                .map(|i| {
                    val!({
                        "url": format!("img{i}.jpg"),
                        "_sim": {"kind": "label", "truth": 0, "labels": ["Yes", "No"], "difficulty": 0.0}
                    })
                })
                .collect();
            if rev {
                v.reverse();
            }
            v
        };
        let p = Presenter::image_label("Q?", &["Yes", "No"]);
        let _ = cc
            .crowddata("exp")
            .unwrap()
            .data(objs(false))
            .unwrap()
            .presenter(p.clone())
            .unwrap()
            .publish(2)
            .unwrap()
            .collect()
            .unwrap();
        let calls = platform.api_calls();
        let cd = cc
            .crowddata("exp")
            .unwrap()
            .data(objs(true))
            .unwrap()
            .presenter(p)
            .unwrap()
            .publish(2)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(platform.api_calls(), calls, "reordered rerun must be free");
        assert_eq!(cd.run_stats().tasks_reused, 4);
    }

    #[test]
    fn duplicate_objects_get_distinct_tasks() {
        let (cc, _) = sim_ctx(6);
        let obj = val!({"url": "same.jpg", "_sim": {"kind": "label", "truth": 0, "labels": ["Yes", "No"], "difficulty": 0.0}});
        let cd = cc
            .crowddata("dups")
            .unwrap()
            .data(vec![obj.clone(), obj.clone(), obj])
            .unwrap()
            .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
            .unwrap()
            .publish(1)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(cd.run_stats().tasks_published, 3);
        let hashes: std::collections::HashSet<&String> =
            cd.rows().iter().map(|r| &r.hash).collect();
        assert_eq!(hashes.len(), 3, "duplicate rows must have distinct cache keys");
    }

    #[test]
    fn state_errors() {
        let (cc, _) = sim_ctx(7);
        // publish before data
        assert!(matches!(
            cc.crowddata("x").unwrap().publish(3),
            Err(Error::State(_))
        ));
        // publish before presenter
        assert!(matches!(
            cc.crowddata("x").unwrap().data(vec![val!(1)]).unwrap().publish(3),
            Err(Error::State(_))
        ));
        // collect before publish
        let cd = cc
            .crowddata("x")
            .unwrap()
            .data(vec![val!(1)])
            .unwrap()
            .presenter(Presenter::free_text("Q"))
            .unwrap();
        assert!(matches!(cd.collect(), Err(Error::State(_))));
        // zero redundancy
        let cd = cc
            .crowddata("y")
            .unwrap()
            .data(vec![val!(1)])
            .unwrap()
            .presenter(Presenter::free_text("Q"))
            .unwrap();
        assert!(matches!(cd.publish(0), Err(Error::State(_))));
    }

    #[test]
    fn map_adds_derived_column() {
        let (cc, _) = sim_ctx(8);
        let cd = cc
            .crowddata("m")
            .unwrap()
            .data(vec![val!({"n": 1}), val!({"n": 2})])
            .unwrap()
            .map("double", |row| val!(row.object["n"].as_i64().unwrap() * 2))
            .unwrap();
        assert_eq!(cd.column("double").unwrap(), vec![val!(2), val!(4)]);
        // Reserved names rejected.
        assert!(cd.map("task", |_| Value::Null).is_err());
    }

    #[test]
    fn missing_column_errors() {
        let (cc, _) = sim_ctx(9);
        let cd = cc.crowddata("c").unwrap().data(vec![val!(1)]).unwrap();
        assert!(matches!(cd.column("nope"), Err(Error::MissingColumn(_))));
        assert_eq!(cd.column("object").unwrap(), vec![val!(1)]);
        assert_eq!(cd.column("task").unwrap(), vec![Value::Null]);
        assert_eq!(cd.column("result").unwrap(), vec![Value::Null]);
    }

    #[test]
    fn lost_platform_tasks_are_republished_on_collect() {
        // The *client* keeps its database, but the platform is a fresh
        // instance (its state died). collect() must republish pending rows.
        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        let p1 = Arc::new(SimPlatform::quick(3, 1.0, 10));
        let cc1 =
            CrowdContext::new(Arc::clone(&p1) as Arc<dyn CrowdPlatform>, Arc::clone(&backend))
                .unwrap();
        let obj = val!({"url": "a.jpg", "_sim": {"kind": "label", "truth": 0, "labels": ["Yes", "No"], "difficulty": 0.0}});
        // Publish but do NOT collect.
        let _ = cc1
            .crowddata("exp")
            .unwrap()
            .data(vec![obj.clone()])
            .unwrap()
            .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
            .unwrap()
            .publish(2)
            .unwrap();
        // New platform, same database.
        let p2 = Arc::new(SimPlatform::quick(3, 1.0, 11));
        let cc2 =
            CrowdContext::new(Arc::clone(&p2) as Arc<dyn CrowdPlatform>, backend).unwrap();
        let cd = cc2
            .crowddata("exp")
            .unwrap()
            .data(vec![obj])
            .unwrap()
            .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
            .unwrap()
            .publish(2)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(cd.run_stats().tasks_republished, 1);
        assert_eq!(cd.rows()[0].result.as_ref().unwrap().runs.len(), 2);
    }

    #[test]
    fn bulk_contract_violation_is_an_error_not_truncation() {
        use reprowd_platform::types::{Project, ProjectId, SimTime, Task, TaskId, TaskRun};
        use reprowd_platform::MockPlatform;

        /// A misbehaving platform whose bulk publish drops the last task
        /// (the "partial accept" some real bulk APIs perform).
        struct ShortBulk(MockPlatform);

        impl CrowdPlatform for ShortBulk {
            fn name(&self) -> &str {
                "short-bulk"
            }
            fn create_project(&self, name: &str) -> reprowd_platform::Result<ProjectId> {
                self.0.create_project(name)
            }
            fn project(&self, id: ProjectId) -> reprowd_platform::Result<Project> {
                self.0.project(id)
            }
            fn publish_task(
                &self,
                project: ProjectId,
                spec: TaskSpec,
            ) -> reprowd_platform::Result<Task> {
                self.0.publish_task(project, spec)
            }
            fn publish_tasks(
                &self,
                project: ProjectId,
                specs: Vec<TaskSpec>,
            ) -> reprowd_platform::Result<Vec<Task>> {
                let mut tasks = self.0.publish_tasks(project, specs)?;
                tasks.pop();
                Ok(tasks)
            }
            fn task(&self, id: TaskId) -> reprowd_platform::Result<Task> {
                self.0.task(id)
            }
            fn fetch_runs(&self, task: TaskId) -> reprowd_platform::Result<Vec<TaskRun>> {
                self.0.fetch_runs(task)
            }
            fn is_complete(&self, task: TaskId) -> reprowd_platform::Result<bool> {
                self.0.is_complete(task)
            }
            fn step(&self) -> reprowd_platform::Result<bool> {
                self.0.step()
            }
            fn api_calls(&self) -> u64 {
                self.0.api_calls()
            }
            fn now(&self) -> SimTime {
                self.0.now()
            }
        }

        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        let cc = CrowdContext::new(Arc::new(ShortBulk(MockPlatform::echo())), backend).unwrap();
        let err = cc
            .crowddata("short")
            .unwrap()
            .data(vec![val!(1), val!(2), val!(3)])
            .unwrap()
            .presenter(Presenter::free_text("Q"))
            .unwrap()
            .publish(1)
            .err()
            .expect("short bulk response must surface as an error");
        assert!(
            err.to_string().contains("bulk contract violated"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn export_json_is_complete_and_self_describing() {
        let (cc, _) = sim_ctx(14);
        let cd = figure2(&cc, "export");
        let doc = cd.export_json().unwrap();
        assert_eq!(doc["experiment"], "export");
        assert_eq!(doc["rows"].as_array().unwrap().len(), 3);
        let row0 = &doc["rows"][0];
        assert!(row0["task"]["published_at"].is_number());
        assert_eq!(row0["result"].as_array().unwrap().len(), 3);
        assert_eq!(row0["derived"]["mv"], val!("Yes"));
        // The export round-trips through serde as plain JSON.
        let s = serde_json::to_string(&doc).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn vote_matrix_bridges_answers() {
        let (cc, _) = sim_ctx(12);
        let cd = figure2(&cc, "bridge");
        let (matrix, space) = cd.vote_matrix().unwrap();
        assert_eq!(matrix.n_items(), 3);
        assert_eq!(matrix.n_votes(), 9);
        assert_eq!(space, vec![val!("Yes"), val!("No")]);
    }

    #[test]
    fn aggregators_set_their_columns() {
        let (cc, _) = sim_ctx(13);
        let cd = figure2(&cc, "agg");
        let objects = cd.column("object").unwrap();
        let cd = cc
            .crowddata("agg")
            .unwrap()
            .data(objects)
            .unwrap()
            .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
            .unwrap()
            .publish(3)
            .unwrap()
            .collect()
            .unwrap()
            .em_vote(&OneCoinConfig::default())
            .unwrap()
            .dawid_skene(&DsConfig::default())
            .unwrap()
            .weighted_vote(&HashMap::new(), 1.0)
            .unwrap();
        for col in ["em", "ds", "wmv"] {
            let v = cd.column(col).unwrap();
            assert_eq!(v.len(), 3);
            assert!(v.iter().all(|x| !x.is_null()), "column {col} has nulls: {v:?}");
        }
    }
}
