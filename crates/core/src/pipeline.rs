//! The pipelined execution engine: overlapped platform round-trips with
//! deterministic, in-order commits.
//!
//! PR 2 batched `publish`/`collect`, but the batches themselves ran
//! strictly one after another — on any real crowd backend, where a
//! round-trip costs tens of milliseconds of wire latency, that latency is
//! paid serially. This module adds the missing overlap without giving up
//! one bit of reproducibility:
//!
//! * **A bounded-depth scheduler** (plain threads and channels): up to
//!   [`ExecutionConfig::inflight_batches`](crate::exec::ExecutionConfig::inflight_batches)
//!   batch jobs are in flight at once, with claim backpressure so resident
//!   work never outruns the commit frontier by more than the window.
//!   Depth 1 degenerates to an inline loop — bit-for-bit the sequential
//!   engine.
//! * **Ordered effects** (the platform crate's [`IssueGate`]): every
//!   platform call a job makes is numbered with a *slot*, and the call's
//!   effect — id
//!   allocation, clock ticks, budget charges, API accounting — waits its
//!   turn. The platform therefore observes the **exact call sequence a
//!   sequential run issues, at every depth**; only the wire time overlaps.
//!   This is why columns, cache contents, and call counts are bit-identical
//!   across in-flight depths: determinism is proved by call-sequence
//!   equality, not argued per platform.
//! * **Ordered commits**: completed jobs commit to the store strictly in
//!   job order, on the coordinating thread. A failure at job `k` cancels
//!   the issue gate for everything after `k` (see
//!   [`IssueGate::close_from`](reprowd_platform::IssueGate::close_from)),
//!   commits exactly the jobs before `k`, and reports `k`'s error — the
//!   same store prefix and, for errors raised by the platform calls
//!   themselves, the same platform state a sequential run stopping at `k`
//!   leaves. (Client-side post-checks that fail *after* a call returned
//!   cancel at the commit barrier instead, so up to the in-flight window
//!   of later batches may already be on the platform — the same bounded
//!   exposure as the documented crash window.)
//!
//! On top of the scheduler, [`run_stream`] fuses the whole
//! publish→wait→fetch→commit lifecycle per chunk and accepts the
//! candidates as an **iterator**, so operators (sort, max, CrowdER join)
//! can generate candidate pairs lazily: generation interleaves with
//! publishing, at most a window's worth of rows is resident, and a join
//! over 10⁴ records no longer materializes an O(n²) pair vector. The
//! streamed schedule issues each chunk's probe → publish → wait → fetch in
//! one fixed slot order, so streamed results are *also* bit-identical
//! across depths — the in-flight depth is a pure performance knob
//! everywhere.

use crate::context::CrowdContext;
use crate::crowddata::RunStats;
use crate::error::{Error, Result};
use crate::hash::{hash_value, hex};
use crate::presenter::Presenter;
use crate::store::{ExperimentStore, Manifest, StoredResult, StoredTask};
use crate::value::{canonical, Value};
use reprowd_platform::types::{TaskId, TaskSpec};
use reprowd_platform::IssueGate;
use reprowd_quality::{majority_vote_matrix, TiePolicy, VoteMatrix};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

// ---------------------------------------------------------------- driver

/// Worker → coordinator message: a finished job, or a source failure.
enum Msg<J, T> {
    Finished(usize, J, Result<T>),
    SourceFailed(usize, Error),
}

/// Runs jobs through the bounded-depth pipeline.
///
/// * `source(k)` produces job `k` (`None` = stream exhausted). Called in
///   ascending `k` under a lock, so stateful sources (iterators,
///   running hashes) see their pulls in order even though workers race to
///   claim.
/// * `work(k, &mut job)` performs the job's platform round-trips on a
///   worker thread; its gated calls must use slots
///   `[k·slots_per_job, (k+1)·slots_per_job)`.
/// * `commit(k, job, out)` runs on the calling thread, strictly in
///   ascending `k`.
///
/// On the first error (by job order): jobs before it are committed, the
/// gate is closed from that job's slots, and that error is returned.
pub(crate) fn run_windowed<J, T>(
    depth: usize,
    slots_per_job: u64,
    gate: &IssueGate,
    mut source: impl FnMut(usize) -> Result<Option<J>> + Send,
    work: impl Fn(usize, &mut J) -> Result<T> + Sync,
    mut commit: impl FnMut(usize, J, T) -> Result<()>,
) -> Result<()>
where
    J: Send,
    T: Send,
{
    if depth <= 1 {
        // The sequential engine, verbatim: claim, work, commit, repeat.
        let mut k = 0usize;
        while let Some(mut job) = source(k)? {
            let out = work(k, &mut job)?;
            commit(k, job, out)?;
            k += 1;
        }
        return Ok(());
    }

    struct SourceState<S> {
        next: usize,
        /// Jobs committed so far — claims may run at most `window` ahead
        /// of this (backpressure: bounds resident jobs, and with them the
        /// streaming operators' memory, by the in-flight window).
        committed: usize,
        done: bool,
        f: S,
    }
    let window = 2 * depth; // `depth` in work + `depth` awaiting commit
    let claims = Mutex::new(SourceState { next: 0, committed: 0, done: false, f: source });
    let claims_cv = std::sync::Condvar::new();
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Msg<J, T>>();

    std::thread::scope(|scope| {
        for _ in 0..depth {
            let tx = tx.clone();
            let claims = &claims;
            let claims_cv = &claims_cv;
            let abort = &abort;
            let work = &work;
            scope.spawn(move || loop {
                let claimed = {
                    let mut s = claims.lock().expect("pipeline claim lock");
                    loop {
                        if abort.load(Ordering::Relaxed) || s.done {
                            break;
                        }
                        if s.next < s.committed + window {
                            break;
                        }
                        s = claims_cv.wait(s).expect("pipeline claim wait");
                    }
                    if abort.load(Ordering::Relaxed) || s.done {
                        None
                    } else {
                        let k = s.next;
                        match (s.f)(k) {
                            Ok(Some(job)) => {
                                s.next += 1;
                                Some((k, job))
                            }
                            Ok(None) => {
                                s.done = true;
                                None
                            }
                            Err(e) => {
                                s.done = true;
                                let _ = tx.send(Msg::SourceFailed(k, e));
                                None
                            }
                        }
                    }
                };
                let Some((k, mut job)) = claimed else { return };
                let out = work(k, &mut job);
                let failed = out.is_err();
                let _ = tx.send(Msg::Finished(k, job, out));
                if failed {
                    return;
                }
            });
        }
        drop(tx);

        // Coordinator: buffer out-of-order completions, commit in order,
        // stop at the first error by job index.
        let mut buffer: BTreeMap<usize, (J, T)> = BTreeMap::new();
        let mut next_commit = 0usize;
        let mut first_err: Option<(usize, Error)> = None;
        let fail = |k: usize, e: Error, first_err: &mut Option<(usize, Error)>| {
            abort.store(true, Ordering::Relaxed);
            gate.close_from(k as u64 * slots_per_job);
            if first_err.as_ref().is_none_or(|(fk, _)| k < *fk) {
                *first_err = Some((k, e));
            }
            // Wake workers parked on the claim backpressure so they
            // observe the abort and exit.
            claims_cv.notify_all();
        };
        for msg in rx {
            match msg {
                Msg::Finished(k, job, Ok(out)) => {
                    buffer.insert(k, (job, out));
                }
                Msg::Finished(k, _, Err(e)) | Msg::SourceFailed(k, e) => {
                    fail(k, e, &mut first_err);
                }
            }
            let before = next_commit;
            while first_err.as_ref().is_none_or(|(fk, _)| next_commit < *fk) {
                let Some((job, out)) = buffer.remove(&next_commit) else { break };
                if let Err(e) = commit(next_commit, job, out) {
                    fail(next_commit, e, &mut first_err);
                    break;
                }
                next_commit += 1;
            }
            if next_commit != before {
                // Release claim backpressure for the committed jobs.
                claims.lock().expect("pipeline claim lock").committed = next_commit;
                claims_cv.notify_all();
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    })
}

/// The common chunked single-slot pipeline: splits `items` into
/// `batch_size` chunks, owns the issue gate, and runs each chunk through
/// `work` (one gated platform call, slot = chunk index) and `commit`
/// (strictly in chunk order). The classic publish, status, and fetch
/// passes are all instances of this shape.
pub(crate) fn run_chunked<I: Sync, T: Send>(
    depth: usize,
    batch_size: usize,
    items: &[I],
    work: impl Fn(u64, &[I], &IssueGate) -> Result<T> + Sync,
    mut commit: impl FnMut(&[I], T) -> Result<()>,
) -> Result<()> {
    let gate = IssueGate::new();
    let mut chunks = items.chunks(batch_size);
    run_windowed(
        depth,
        1,
        &gate,
        |_k| Ok(chunks.next()),
        |k, chunk: &mut &[I]| work(k as u64, chunk, &gate),
        |_k, chunk, out| commit(chunk, out),
    )
}

// ----------------------------------------------------------- shared bits

/// Resolves (or creates) the platform project an experiment publishes
/// into, persisting a newly created id into the manifest. Shared by the
/// classic `publish` path and the streaming runner so both follow the same
/// revalidation contract (a fresh platform instance may have lost the
/// recorded project).
pub(crate) fn ensure_project(
    cc: &CrowdContext,
    manifest: &mut Manifest,
    presenter: &Presenter,
) -> Result<u64> {
    if let Some(pid) = manifest.project_id {
        if cc.platform().project(pid).is_ok() {
            return Ok(pid);
        }
    }
    let pid = cc
        .platform()
        .create_project(&format!("{}:{}", manifest.name, presenter.name))?;
    manifest.project_id = Some(pid);
    cc.store().manifests.put(manifest.name.as_bytes(), manifest)?;
    Ok(pid)
}

/// Majority vote over one row's runs, against an explicit answer space —
/// the streaming counterpart of
/// [`CrowdData::majority_vote`](crate::CrowdData::majority_vote), with
/// identical semantics: answers outside the space are dropped, ties break
/// toward the earlier space entry, no votes yields `Null`.
pub fn majority_answer(runs: &[reprowd_platform::types::TaskRun], space: &[Value]) -> Value {
    let index: HashMap<String, usize> =
        space.iter().enumerate().map(|(i, v)| (canonical(v), i)).collect();
    let mut matrix = VoteMatrix::new(space.len().max(1), 1);
    for run in runs {
        if let Some(&label) = index.get(&canonical(&run.answer)) {
            matrix.push_vote(0, run.worker_id, label);
        }
    }
    match majority_vote_matrix(&matrix, TiePolicy::LowestLabel)[0] {
        Some(l) => space.get(l).cloned().unwrap_or(Value::Null),
        None => Value::Null,
    }
}

// ------------------------------------------------------------- streaming

/// What to run a streamed experiment as: the cache namespace, the task UI,
/// and the redundancy — the same three things the classic
/// `presenter(...).publish(n)` chain fixes.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Experiment name (cache namespace, same rules as
    /// [`CrowdContext::crowddata`](crate::CrowdContext::crowddata)).
    pub experiment: String,
    /// The task UI; its fingerprint keys the cache exactly as in the
    /// classic path, so streamed and classic runs of the same experiment
    /// share cells.
    pub presenter: Presenter,
    /// Workers per task.
    pub n_assignments: u32,
}

/// One collected row handed to the streaming sink, in input order.
#[derive(Debug, Clone)]
pub struct StreamedRow {
    /// Position of the candidate in the input stream.
    pub index: usize,
    /// The candidate object.
    pub object: Value,
    /// The collected (or cache-served) result cell.
    pub result: StoredResult,
}

/// Outcome accounting of a [`run_stream`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamReport {
    /// Cache-reuse statistics, same semantics as
    /// [`CrowdData::run_stats`](crate::CrowdData::run_stats).
    pub stats: RunStats,
    /// Rows streamed through (candidates consumed).
    pub rows: u64,
    /// Chunks the stream was split into.
    pub chunks: u64,
    /// High-water mark of rows resident in the pipeline at once (claimed
    /// but not yet committed) — the operators' memory-bound guarantee:
    /// bounded by the in-flight window, never by the candidate count.
    pub peak_inflight_rows: usize,
}

/// Per-row state as a chunk moves through its lifecycle.
struct StreamRow {
    index: usize,
    key: String,
    object: Value,
    /// Result served from the cache (skips the platform entirely).
    cached_result: Option<StoredResult>,
    /// The task cell: cached, or freshly published by this chunk.
    task: Option<StoredTask>,
    /// Task was published (or re-published) by this chunk → persist it.
    fresh: bool,
    /// The cached task was lost by the platform and re-published.
    republished: bool,
    /// Workers to ask if this row publishes: the stream's redundancy for
    /// fresh rows, but the *stored task's* redundancy when re-publishing
    /// a platform-lost task — matching the classic collect path, which
    /// republishes under the redundancy the cell was created with.
    redundancy: u32,
    /// The fetched result (for rows that went to the platform).
    fetched: Option<StoredResult>,
}

struct StreamChunk {
    rows: Vec<StreamRow>,
    probed: u64,
}

/// Streams `candidates` through the full publish→wait→fetch lifecycle and
/// hands each collected row to `sink`, in input order.
///
/// This is the operators' execution engine: candidates are pulled lazily
/// (generation interleaves with publishing), chunked by the context's
/// [`batch_size`](crate::CrowdContext::batch_size), and processed with up
/// to [`inflight_batches`](crate::exec::ExecutionConfig::inflight_batches)
/// chunks in flight. Caching, keys, lost-task republishing, and metrics
/// all match the classic `publish`/`collect` path — a streamed rerun of a
/// classic run (or vice versa) is served from the same cells.
///
/// Unlike the classic path, each chunk *waits for and fetches* its own
/// tasks before later chunks publish (one fixed slot order per chunk:
/// probe → publish → wait → fetch), so on a simulated crowd the answers
/// are those of a crowd that works chunk by chunk. The schedule is fixed
/// per `(stream, batch_size)`: results are bit-identical at every
/// in-flight depth, and reruns are free.
pub fn run_stream(
    cc: &CrowdContext,
    spec: &StreamSpec,
    candidates: impl Iterator<Item = Value> + Send,
    mut sink: impl FnMut(StreamedRow) -> Result<()>,
) -> Result<StreamReport> {
    crate::context::validate_experiment_name(&spec.experiment)?;
    if spec.n_assignments == 0 {
        return Err(Error::State("n_assignments must be positive".into()));
    }
    let fp = spec.presenter.fingerprint();
    let mut manifest = match cc.store().manifests.get(spec.experiment.as_bytes())? {
        Some(m) => m,
        None => Manifest::new(&spec.experiment),
    };
    if manifest.presenter_fingerprint.as_deref() != Some(fp.as_str())
        || manifest.n_assignments != Some(spec.n_assignments)
    {
        manifest.presenter_fingerprint = Some(fp.clone());
        manifest.n_assignments = Some(spec.n_assignments);
        cc.store().manifests.put(spec.experiment.as_bytes(), &manifest)?;
    }

    let batch_size = cc.exec().batch_size();
    let depth = cc.exec().inflight_batches();
    let gate = IssueGate::new();
    // The project is resolved lazily, once, by the first chunk that
    // actually publishes — a fully cached stream stays platform-free.
    let project: Mutex<(Manifest, Option<u64>)> = Mutex::new((manifest, None));
    let inflight = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);

    let mut report = StreamReport::default();
    let mut iter = candidates;
    let mut occurrences: HashMap<u64, usize> = HashMap::new();
    let mut next_index = 0usize;

    let name = spec.experiment.clone();
    let presenter = &spec.presenter;
    let n_assignments = spec.n_assignments;

    run_windowed(
        depth,
        4,
        &gate,
        // Source: pull one chunk of candidates, assigning keys with the
        // same content-hash + duplicate-suffix scheme as the classic
        // `data(...)` step (streamed and classic runs share the cache).
        |_k| {
            let mut rows = Vec::new();
            for object in iter.by_ref().take(batch_size) {
                let h = hash_value(&object);
                let occ = occurrences.entry(h).or_insert(0);
                let hash = if *occ == 0 { hex(h) } else { format!("{}-{}", hex(h), *occ) };
                *occ += 1;
                rows.push(StreamRow {
                    index: next_index,
                    key: ExperimentStore::row_key(&name, &fp, &hash),
                    object,
                    cached_result: None,
                    task: None,
                    fresh: false,
                    republished: false,
                    redundancy: n_assignments,
                    fetched: None,
                });
                next_index += 1;
            }
            if rows.is_empty() {
                return Ok(None);
            }
            let now = inflight.fetch_add(rows.len(), Ordering::Relaxed) + rows.len();
            peak.fetch_max(now, Ordering::Relaxed);
            Ok(Some(StreamChunk { rows, probed: 0 }))
        },
        // Work: the chunk's whole lifecycle, four gated slots.
        |k, chunk: &mut StreamChunk| {
            let base = k as u64 * 4;
            // Cache pass (reads only; keys are unique per row, so reads
            // racing earlier chunks' commits cannot observe this stream's
            // own rows half-written).
            for row in chunk.rows.iter_mut() {
                if let Some(res) = cc.store().results.get(row.key.as_bytes())? {
                    row.cached_result = Some(res);
                } else if let Some(task) = cc.store().tasks.get(row.key.as_bytes())? {
                    row.task = Some(task);
                } else {
                    row.fresh = true;
                }
            }
            // Slot 1: probe cached tasks — a restarted platform may have
            // lost them, exactly like the classic collect status pass.
            let probe_at: Vec<usize> = (0..chunk.rows.len())
                .filter(|&p| chunk.rows[p].task.is_some() && chunk.rows[p].cached_result.is_none())
                .collect();
            let ids: Vec<TaskId> = probe_at
                .iter()
                .map(|&p| chunk.rows[p].task.as_ref().expect("probed row has task").task.id)
                .collect();
            let statuses = cc.platform().are_complete_pipelined(&ids, &gate, base)?;
            crate::crowddata::check_bulk_len("are_complete", statuses.len(), ids.len())?;
            chunk.probed = ids.len() as u64;
            for (&p, status) in probe_at.iter().zip(statuses) {
                if status.is_none() {
                    let row = &mut chunk.rows[p];
                    // Republish under the lost cell's own redundancy, as
                    // the classic collect path does.
                    row.redundancy = row
                        .task
                        .take()
                        .expect("probed row has task")
                        .n_assignments;
                    row.fresh = true;
                    row.republished = true;
                }
            }
            // Slot 2: publish the rows that need the crowd.
            let publish_at: Vec<usize> =
                (0..chunk.rows.len()).filter(|&p| chunk.rows[p].fresh).collect();
            if publish_at.is_empty() {
                // Nothing to publish: advance the slot without a request.
                cc.platform().publish_tasks_pipelined(0, Vec::new(), &gate, base + 1)?;
            } else {
                let pid = {
                    let mut slot = project.lock().expect("stream project lock");
                    match slot.1 {
                        Some(pid) => pid,
                        None => {
                            let (manifest, cached) = &mut *slot;
                            let pid = ensure_project(cc, manifest, presenter)?;
                            *cached = Some(pid);
                            pid
                        }
                    }
                };
                let specs: Vec<TaskSpec> = publish_at
                    .iter()
                    .map(|&p| TaskSpec {
                        payload: presenter.render(&chunk.rows[p].object),
                        n_assignments: chunk.rows[p].redundancy,
                    })
                    .collect();
                let tasks = cc.platform().publish_tasks_pipelined(pid, specs, &gate, base + 1)?;
                crate::crowddata::check_bulk_len("publish_tasks", tasks.len(), publish_at.len())?;
                for (&p, task) in publish_at.iter().zip(tasks) {
                    let row = &mut chunk.rows[p];
                    row.task = Some(StoredTask {
                        task,
                        object: row.object.clone(),
                        n_assignments: row.redundancy,
                    });
                }
            }
            // Slots 3 and 4: wait for this chunk's tasks, then fetch them.
            let pending_at: Vec<usize> = (0..chunk.rows.len())
                .filter(|&p| chunk.rows[p].cached_result.is_none())
                .collect();
            let ids: Vec<TaskId> = pending_at
                .iter()
                .map(|&p| chunk.rows[p].task.as_ref().expect("pending row has task").task.id)
                .collect();
            cc.platform().run_until_complete_pipelined(&ids, &gate, base + 2)?;
            let runs_per_task = cc.platform().fetch_runs_bulk_pipelined(&ids, &gate, base + 3)?;
            crate::crowddata::check_bulk_len("fetch_runs_bulk", runs_per_task.len(), ids.len())?;
            for (&p, runs) in pending_at.iter().zip(runs_per_task) {
                chunk.rows[p].fetched = Some(StoredResult { runs });
            }
            Ok(())
        },
        // Commit: persist, meter, account, and hand rows to the sink — in
        // chunk order.
        |_k, chunk, ()| {
            let task_cells: Vec<(String, StoredTask)> = chunk
                .rows
                .iter()
                .filter(|r| r.fresh)
                .map(|r| (r.key.clone(), r.task.clone().expect("fresh row has task")))
                .collect();
            let result_cells: Vec<(String, StoredResult)> = chunk
                .rows
                .iter()
                .filter(|r| r.fetched.is_some())
                .map(|r| (r.key.clone(), r.fetched.clone().expect("checked")))
                .collect();
            if chunk.probed > 0 {
                cc.exec().metrics().record_probe(chunk.probed);
            }
            if !task_cells.is_empty() {
                cc.exec().metrics().record_publish(task_cells.len() as u64);
                cc.store().put_task_batch(&task_cells)?;
            }
            if !result_cells.is_empty() {
                cc.exec().metrics().record_fetch(result_cells.len() as u64);
                cc.store().put_result_batch(&result_cells)?;
            }
            inflight.fetch_sub(chunk.rows.len(), Ordering::Relaxed);
            report.chunks += 1;
            for row in chunk.rows {
                report.rows += 1;
                let result = match (row.cached_result, row.fetched) {
                    (Some(res), _) => {
                        // Same accounting as a classic cached rerun: both
                        // the task and the result cells were reused.
                        report.stats.results_reused += 1;
                        report.stats.tasks_reused += 1;
                        res
                    }
                    (None, Some(res)) => {
                        report.stats.results_collected += 1;
                        if row.republished {
                            // Classic lost-task accounting: the cached
                            // cell was reused, then re-published.
                            report.stats.tasks_reused += 1;
                            report.stats.tasks_republished += 1;
                        } else if row.fresh {
                            report.stats.tasks_published += 1;
                        } else {
                            report.stats.tasks_reused += 1;
                        }
                        res
                    }
                    (None, None) => {
                        return Err(Error::State(format!(
                            "streamed row {} finished without a result", row.index
                        )));
                    }
                };
                sink(StreamedRow { index: row.index, object: row.object, result })?;
            }
            Ok(())
        },
    )?;
    report.peak_inflight_rows = peak.load(Ordering::Relaxed);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::val;
    use reprowd_platform::Error as PlatformError;

    // ------------------------------------------------------- run_windowed

    #[test]
    fn commits_in_order_at_every_depth() {
        for depth in [1usize, 2, 4, 8] {
            let gate = IssueGate::new();
            let mut jobs = (0..17u64).collect::<Vec<_>>().into_iter();
            let committed = std::cell::RefCell::new(Vec::new());
            run_windowed(
                depth,
                1,
                &gate,
                |_k| Ok(jobs.next()),
                |k, job: &mut u64| {
                    // Effects in slot order even though workers race.
                    let turn = gate.turn(k as u64)?;
                    turn.complete();
                    Ok(*job * 2)
                },
                |k, job, out| {
                    assert_eq!(out, job * 2);
                    committed.borrow_mut().push(k);
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(*committed.borrow(), (0..17).collect::<Vec<_>>(), "depth {depth}");
        }
    }

    #[test]
    fn first_error_commits_exact_prefix_and_cancels_the_rest() {
        for depth in [1usize, 2, 4, 8] {
            let gate = IssueGate::new();
            let mut jobs = (0..12u64).collect::<Vec<_>>().into_iter();
            let committed = std::cell::RefCell::new(Vec::new());
            let err = run_windowed(
                depth,
                1,
                &gate,
                |_k| Ok(jobs.next()),
                |k, _job: &mut u64| {
                    let turn = gate.turn(k as u64)?;
                    if k == 5 {
                        // Failing inside the turn: drop cancels later slots.
                        drop(turn);
                        return Err(Error::State("job 5 exploded".into()));
                    }
                    turn.complete();
                    Ok(())
                },
                |k, _job, _out| {
                    committed.borrow_mut().push(k);
                    Ok(())
                },
            )
            .unwrap_err();
            assert!(err.to_string().contains("job 5 exploded"), "depth {depth}: {err}");
            assert_eq!(*committed.borrow(), vec![0, 1, 2, 3, 4], "depth {depth}");
        }
    }

    #[test]
    fn commit_error_stops_the_stream() {
        let gate = IssueGate::new();
        let mut jobs = (0..8u64).collect::<Vec<_>>().into_iter();
        let committed = std::cell::RefCell::new(0usize);
        let err = run_windowed(
            4,
            1,
            &gate,
            |_k| Ok(jobs.next()),
            |k, _job: &mut u64| {
                gate.turn(k as u64)?.complete();
                Ok(())
            },
            |k, _job, _out| {
                if k == 3 {
                    return Err(Error::State("commit 3 failed".into()));
                }
                *committed.borrow_mut() += 1;
                Ok(())
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("commit 3 failed"));
        assert_eq!(*committed.borrow(), 3);
    }

    #[test]
    fn source_error_reports_after_prior_jobs_commit() {
        let gate = IssueGate::new();
        let committed = std::cell::RefCell::new(Vec::new());
        let err = run_windowed(
            4,
            1,
            &gate,
            |k| {
                if k == 6 {
                    Err(Error::State("source died".into()))
                } else {
                    Ok(Some(k as u64))
                }
            },
            |k, _job: &mut u64| {
                gate.turn(k as u64)?.complete();
                Ok(())
            },
            |k, _job, _out| {
                committed.borrow_mut().push(k);
                Ok(())
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("source died"));
        assert_eq!(*committed.borrow(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_jobs_do_not_mask_the_real_error() {
        // Workers past the failure see Cancelled from the gate; the error
        // reported must be the real one at the lowest job index.
        let gate = IssueGate::new();
        let mut jobs = (0..10u64).collect::<Vec<_>>().into_iter();
        let err = run_windowed(
            8,
            1,
            &gate,
            |_k| Ok(jobs.next()),
            |k, _job: &mut u64| {
                let turn = gate.turn(k as u64)?;
                if k == 2 {
                    drop(turn);
                    return Err(Error::Platform(PlatformError::Injected("the real one".into())));
                }
                turn.complete();
                Ok(())
            },
            |_k, _job, _out| Ok(()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("the real one"), "got: {err}");
    }

    #[test]
    fn streamed_republish_keeps_the_stored_redundancy() {
        // Publish under redundancy 4, lose the platform, then stream the
        // same experiment asking for 2: the lost tasks must be
        // re-published with their stored redundancy (4), exactly like the
        // classic collect path.
        use crate::context::CrowdContext;
        use reprowd_platform::{CrowdPlatform, SimPlatform};
        use reprowd_storage::{Backend, MemoryStore};
        use std::sync::Arc;

        let db: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        let presenter = crate::presenter::Presenter::image_label("Q?", &["Yes", "No"]);
        let obj = |i: usize| {
            val!({
                "url": format!("img{i}.jpg"),
                "_sim": {"kind": "label", "truth": 0, "labels": ["Yes", "No"], "difficulty": 0.0}
            })
        };
        let p1 = Arc::new(SimPlatform::quick(5, 1.0, 9));
        let cc1 = CrowdContext::new(Arc::clone(&p1) as Arc<dyn CrowdPlatform>, Arc::clone(&db))
            .unwrap();
        let _ = cc1
            .crowddata("lost")
            .unwrap()
            .data((0..3).map(obj).collect())
            .unwrap()
            .presenter(presenter.clone())
            .unwrap()
            .publish(4)
            .unwrap();
        // Fresh platform instance: the published tasks are gone.
        let p2 = Arc::new(SimPlatform::quick(5, 1.0, 10));
        let cc2 = CrowdContext::new(Arc::clone(&p2) as Arc<dyn CrowdPlatform>, db).unwrap();
        let spec = StreamSpec {
            experiment: "lost".into(),
            presenter,
            n_assignments: 2,
        };
        let mut run_counts = Vec::new();
        let report = run_stream(&cc2, &spec, (0..3).map(obj), |row| {
            run_counts.push(row.result.runs.len());
            Ok(())
        })
        .unwrap();
        assert_eq!(report.stats.tasks_republished, 3);
        assert_eq!(run_counts, vec![4, 4, 4], "republished tasks keep redundancy 4");
    }

    // ---------------------------------------------------- majority_answer

    #[test]
    fn majority_answer_matches_classic_semantics() {
        use reprowd_platform::types::TaskRun;
        let space = vec![val!("first"), val!("second")];
        let run = |worker: u64, answer: Value| TaskRun {
            task_id: 1,
            worker_id: worker,
            answer,
            assigned_at: 0,
            submitted_at: 1,
        };
        // Clear majority.
        let runs = vec![run(1, val!("second")), run(2, val!("second")), run(3, val!("first"))];
        assert_eq!(majority_answer(&runs, &space), val!("second"));
        // Tie breaks toward the earlier space entry.
        let runs = vec![run(1, val!("first")), run(2, val!("second"))];
        assert_eq!(majority_answer(&runs, &space), val!("first"));
        // Junk answers are dropped; all-junk means no vote.
        let runs = vec![run(1, val!("garbage"))];
        assert_eq!(majority_answer(&runs, &space), Value::Null);
        assert_eq!(majority_answer(&[], &space), Value::Null);
    }
}
