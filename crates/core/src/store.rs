//! Persistence layout of an experiment.
//!
//! Three tables live in the [`CrowdContext`](crate::context::CrowdContext)
//! database:
//!
//! * `manifest` — one row per experiment: name, presenter fingerprint,
//!   platform project, redundancy. The version stamp guards shared files
//!   against schema drift.
//! * `task` — one row per published task, keyed by
//!   `<experiment>/<presenter-fingerprint>/<row-content-hash>`. This key is
//!   the whole fault-recovery story: it derives from *what was asked*, not
//!   from when or in which order.
//! * `result` — the collected task runs, same key.
//!
//! Only these hit the database; derived columns are recomputed, matching
//! the paper ("the other columns ... can be easily recovered through
//! re-computation").

use crate::error::Result;
use crate::value::Value;
use reprowd_platform::types::{Task, TaskRun};
use reprowd_storage::{Backend, Table};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Schema version stamped into manifests.
pub const SCHEMA_VERSION: u32 = 1;

/// Experiment-level metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Experiment name (the `crowddata("...")` argument).
    pub name: String,
    /// Schema version of the stored rows.
    pub version: u32,
    /// Fingerprint of the presenter the cached tasks were published under.
    pub presenter_fingerprint: Option<String>,
    /// Platform project the tasks live in (advisory: a fresh platform
    /// instance may not know it; `publish` revalidates).
    pub project_id: Option<u64>,
    /// Redundancy used at publish time.
    pub n_assignments: Option<u32>,
}

impl Manifest {
    /// A fresh manifest for `name`.
    pub fn new(name: &str) -> Self {
        Manifest {
            name: name.to_string(),
            version: SCHEMA_VERSION,
            presenter_fingerprint: None,
            project_id: None,
            n_assignments: None,
        }
    }
}

/// The persisted `task` cell of one row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTask {
    /// The platform's task record (id, payload, publish time, ...).
    pub task: Task,
    /// The row's object, kept alongside for lineage and re-publication.
    pub object: Value,
    /// Redundancy requested for this task.
    pub n_assignments: u32,
}

/// The persisted `result` cell of one row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredResult {
    /// All task runs, in submission order.
    pub runs: Vec<TaskRun>,
}

/// Handles to the three tables.
pub struct ExperimentStore {
    /// Experiment manifests by name.
    pub manifests: Table<Manifest>,
    /// Task cells by cache key.
    pub tasks: Table<StoredTask>,
    /// Result cells by cache key.
    pub results: Table<StoredResult>,
}

impl ExperimentStore {
    /// Binds the tables onto `backend`.
    pub fn open(backend: Arc<dyn Backend>) -> Result<Self> {
        Ok(ExperimentStore {
            manifests: Table::new(Arc::clone(&backend), "manifest")?,
            tasks: Table::new(Arc::clone(&backend), "task")?,
            results: Table::new(backend, "result")?,
        })
    }

    /// The cache-key prefix of an experiment + presenter combination.
    pub fn prefix(experiment: &str, presenter_fp: &str) -> String {
        format!("{experiment}/{presenter_fp}/")
    }

    /// Full cache key for a row.
    pub fn row_key(experiment: &str, presenter_fp: &str, row_hash: &str) -> String {
        format!("{experiment}/{presenter_fp}/{row_hash}")
    }

    /// Persists one publish batch worth of task cells **atomically** (one
    /// log record): after a crash, either the whole batch is on disk or
    /// none of it is, so recovery repays at most one batch of crowd work.
    pub fn put_task_batch(&self, rows: &[(String, StoredTask)]) -> Result<()> {
        self.tasks.put_many(rows.iter().map(|(k, v)| (k.as_bytes(), v)))?;
        Ok(())
    }

    /// Persists one collect batch worth of result cells atomically.
    pub fn put_result_batch(&self, rows: &[(String, StoredResult)]) -> Result<()> {
        self.results.put_many(rows.iter().map(|(k, v)| (k.as_bytes(), v)))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::val;
    use reprowd_platform::types::TaskStatus;
    use reprowd_storage::MemoryStore;

    fn store() -> ExperimentStore {
        ExperimentStore::open(Arc::new(MemoryStore::new())).unwrap()
    }

    fn task(id: u64) -> StoredTask {
        StoredTask {
            task: Task {
                id,
                project_id: 1,
                payload: val!({"q": id}),
                n_assignments: 3,
                published_at: 7,
                status: TaskStatus::Open,
            },
            object: val!({"q": id}),
            n_assignments: 3,
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let s = store();
        let mut m = Manifest::new("exp1");
        m.project_id = Some(9);
        s.manifests.put(b"exp1", &m).unwrap();
        assert_eq!(s.manifests.get(b"exp1").unwrap(), Some(m));
        assert_eq!(s.manifests.get(b"exp2").unwrap(), None);
    }

    #[test]
    fn task_keyed_by_content() {
        let s = store();
        let key = ExperimentStore::row_key("exp1", "fp", "abc123");
        s.tasks.put(key.as_bytes(), &task(5)).unwrap();
        assert!(s.tasks.get(key.as_bytes()).unwrap().is_some());
        // Different presenter fingerprint = different key space.
        let other = ExperimentStore::row_key("exp1", "fp2", "abc123");
        assert!(s.tasks.get(other.as_bytes()).unwrap().is_none());
    }

    #[test]
    fn batch_puts_land_atomically_per_call() {
        let s = store();
        let tasks: Vec<(String, StoredTask)> = (0..4u64)
            .map(|i| (ExperimentStore::row_key("exp", "fp", &format!("h{i}")), task(i)))
            .collect();
        s.put_task_batch(&tasks).unwrap();
        assert_eq!(s.tasks.len().unwrap(), 4);
        assert_eq!(s.tasks.get(tasks[2].0.as_bytes()).unwrap(), Some(task(2)));
        let results: Vec<(String, StoredResult)> = (0..4u64)
            .map(|i| {
                (ExperimentStore::row_key("exp", "fp", &format!("h{i}")),
                 StoredResult { runs: Vec::new() })
            })
            .collect();
        s.put_result_batch(&results).unwrap();
        assert_eq!(s.results.len().unwrap(), 4);
        // Empty batches are no-ops.
        s.put_task_batch(&[]).unwrap();
        s.put_result_batch(&[]).unwrap();
        assert_eq!(s.tasks.len().unwrap(), 4);
    }

    #[test]
    fn prefix_scan_isolates_experiments() {
        let s = store();
        for (exp, h) in [("a", "1"), ("a", "2"), ("b", "1")] {
            let key = ExperimentStore::row_key(exp, "fp", h);
            s.tasks.put(key.as_bytes(), &task(1)).unwrap();
        }
        let hits = s.tasks.scan_prefix(ExperimentStore::prefix("a", "fp").as_bytes()).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn result_roundtrip() {
        let s = store();
        let r = StoredResult {
            runs: vec![TaskRun {
                task_id: 5,
                worker_id: 2,
                answer: val!("Yes"),
                assigned_at: 1,
                submitted_at: 2,
            }],
        };
        s.results.put(b"k", &r).unwrap();
        assert_eq!(s.results.get(b"k").unwrap(), Some(r));
    }
}
