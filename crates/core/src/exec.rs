//! Execution policy and metrics of the batched publish/collect pipeline.
//!
//! [`publish`](crate::CrowdData::publish) and
//! [`collect`](crate::CrowdData::collect) do not talk to the platform one
//! row at a time: rows that miss the cache are partitioned into chunks of
//! [`ExecutionConfig::batch_size`] and each chunk becomes **one** platform
//! round-trip (bulk publish or bulk fetch) followed by **one** atomic
//! database write. The [`ExecutionContext`] carries that policy plus the
//! [`BatchMetrics`] accounting of every round-trip issued, so experiments
//! can assert round-trip counts directly instead of inferring them from
//! platform internals.
//!
//! Batch size is a pure performance knob: collected results are
//! bit-identical for every batch size (see
//! [`CrowdPlatform::publish_tasks`](reprowd_platform::CrowdPlatform::publish_tasks)
//! for the platform-side contract that makes this hold), and `batch_size
//! == 1` reproduces the historical per-row pipeline exactly, API-call
//! counts included.

use crate::error::{Error, Result};
use reprowd_storage::SegmentPolicy;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of rows per platform round-trip.
///
/// Large enough that E1-scale workloads (n=1000) collapse from ~2000
/// round-trips to ~20; small enough that a crash between batches repays at
/// most 100 rows of crowd work.
pub const DEFAULT_BATCH_SIZE: usize = 100;

/// Default number of batches in flight at once (see
/// [`ExecutionConfig::inflight_batches`]).
///
/// Four overlapped round-trips recover most of the wire-latency loss on a
/// remote platform (E15) while keeping the crash-exposure window — batches
/// accepted by the platform but not yet committed locally — small.
pub const DEFAULT_INFLIGHT_BATCHES: usize = 4;

/// Tunable execution policy of a [`CrowdContext`](crate::CrowdContext).
// `PartialEq` only: `segment_policy` carries an f64 threshold, and a
// NaN-bearing (invalid, but constructible) policy must not pretend to
// uphold `Eq`'s reflexivity contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionConfig {
    /// Rows per platform round-trip in `publish`/`collect`. Must be ≥ 1;
    /// `1` reproduces the per-row pipeline bit-for-bit.
    pub batch_size: usize,
    /// Batch round-trips kept in flight at once by the pipelined execution
    /// engine (see [`crate::pipeline`]). Must be ≥ 1; `1` reproduces the
    /// sequential one-batch-at-a-time engine bit-for-bit, and *every*
    /// depth yields bit-identical columns, cache contents, and call counts
    /// — the platform observes the same ordered call sequence regardless
    /// (the [`IssueGate`](reprowd_platform::IssueGate) contract), so depth
    /// is a pure wall-clock knob. It pays off on latency-bound platforms;
    /// on the in-process simulators it is overhead-neutral.
    pub inflight_batches: usize,
    /// Shard count for contexts that build their own simulated platform
    /// (e.g. [`CrowdContext::in_memory_sim_with`]); `None` means the
    /// platform default (one shard). Must be ≥ 1 when set. Ignored when
    /// the caller supplies a ready-made platform. Like the simulator
    /// itself, the shard count is part of the reproducibility key: results
    /// are bit-identical per `(seed, shard_count)`, and different shard
    /// counts are different (but equally deterministic) crowds.
    ///
    /// [`CrowdContext::in_memory_sim_with`]: crate::CrowdContext::in_memory_sim_with
    pub sim_shards: Option<usize>,
    /// Rotation/compaction policy for contexts that open their own
    /// on-disk database (e.g.
    /// [`CrowdContext::on_disk_with`](crate::CrowdContext::on_disk_with)).
    /// Ignored when the caller supplies a ready-made backend. Like
    /// `batch_size`, this is a pure performance knob: segment boundaries
    /// never change the visible contents of the store.
    pub segment_policy: SegmentPolicy,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            batch_size: DEFAULT_BATCH_SIZE,
            inflight_batches: DEFAULT_INFLIGHT_BATCHES,
            sim_shards: None,
            segment_policy: SegmentPolicy::default(),
        }
    }
}

impl ExecutionConfig {
    /// A config with the given batch size.
    pub fn with_batch_size(batch_size: usize) -> Self {
        ExecutionConfig { batch_size, ..ExecutionConfig::default() }
    }

    /// Sets the number of batches kept in flight (builder style).
    pub fn with_inflight_batches(mut self, depth: usize) -> Self {
        self.inflight_batches = depth;
        self
    }

    /// Sets the simulated platform's shard count (builder style).
    pub fn with_sim_shards(mut self, shards: usize) -> Self {
        self.sim_shards = Some(shards);
        self
    }

    /// Sets the on-disk segment rotation/compaction policy (builder style).
    pub fn with_segment_policy(mut self, policy: SegmentPolicy) -> Self {
        self.segment_policy = policy;
        self
    }

    /// Rejects invalid configurations (`batch_size == 0`, an explicit
    /// shard count of 0, or an impossible segment policy).
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(Error::State("batch_size must be at least 1".into()));
        }
        if self.inflight_batches == 0 {
            return Err(Error::State("inflight_batches must be at least 1".into()));
        }
        if self.sim_shards == Some(0) {
            return Err(Error::State("sim_shards must be at least 1 when set".into()));
        }
        self.segment_policy.validate().map_err(|e| Error::State(e.to_string()))?;
        Ok(())
    }
}

/// Cumulative round-trip accounting, shared by every clone of a
/// [`CrowdContext`](crate::CrowdContext) and every experiment run on it.
///
/// Counters only ever increase (they survive cache-hit runs unchanged,
/// since cached rows issue no round-trips); diff two [`snapshot`]s to
/// meter a region, the way the E12 bench does.
///
/// [`snapshot`]: BatchMetrics::snapshot
#[derive(Debug, Default)]
pub struct BatchMetrics {
    publish_calls: AtomicU64,
    publish_rows: AtomicU64,
    fetch_calls: AtomicU64,
    fetch_rows: AtomicU64,
    probe_calls: AtomicU64,
    probe_rows: AtomicU64,
}

impl BatchMetrics {
    /// Records one bulk-publish round-trip carrying `rows` tasks.
    pub(crate) fn record_publish(&self, rows: u64) {
        self.publish_calls.fetch_add(1, Ordering::Relaxed);
        self.publish_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records one bulk-fetch round-trip carrying `rows` results.
    pub(crate) fn record_fetch(&self, rows: u64) {
        self.fetch_calls.fetch_add(1, Ordering::Relaxed);
        self.fetch_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records one bulk completion probe covering `rows` tasks. Probes are
    /// free on the platform's `api_calls` meter (they request no crowd
    /// work), so this ledger is the only place a remote adapter's polling
    /// round-trips would show up.
    pub(crate) fn record_probe(&self, rows: u64) {
        self.probe_calls.fetch_add(1, Ordering::Relaxed);
        self.probe_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> BatchMetricsSnapshot {
        BatchMetricsSnapshot {
            publish_calls: self.publish_calls.load(Ordering::Relaxed),
            publish_rows: self.publish_rows.load(Ordering::Relaxed),
            fetch_calls: self.fetch_calls.load(Ordering::Relaxed),
            fetch_rows: self.fetch_rows.load(Ordering::Relaxed),
            probe_calls: self.probe_calls.load(Ordering::Relaxed),
            probe_rows: self.probe_rows.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`BatchMetrics`]; supports subtraction so a
/// region of interest can be metered as `after.since(&before)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchMetricsSnapshot {
    /// Bulk-publish round-trips issued.
    pub publish_calls: u64,
    /// Task rows carried by those publish round-trips.
    pub publish_rows: u64,
    /// Bulk-fetch round-trips issued.
    pub fetch_calls: u64,
    /// Result rows carried by those fetch round-trips.
    pub fetch_rows: u64,
    /// Bulk completion probes issued (`are_complete`, one per batch).
    /// Free on the platform's `api_calls` meter — see
    /// [`is_complete`](reprowd_platform::CrowdPlatform::is_complete) — but
    /// a wall-clock round-trip on a remote adapter, so metered here.
    pub probe_calls: u64,
    /// Task rows covered by those probes.
    pub probe_rows: u64,
}

impl BatchMetricsSnapshot {
    /// Total batched round-trips that *request crowd work* (publish +
    /// fetch; completion probes are metered separately as
    /// [`probe_calls`](BatchMetricsSnapshot::probe_calls)). Project
    /// creation is accounted by the platform's own [`api_calls`] counter,
    /// not here.
    ///
    /// [`api_calls`]: reprowd_platform::CrowdPlatform::api_calls
    pub fn round_trips(&self) -> u64 {
        self.publish_calls + self.fetch_calls
    }

    /// Mean rows per publish round-trip (0.0 if none were issued).
    pub fn rows_per_publish_call(&self) -> f64 {
        if self.publish_calls == 0 {
            0.0
        } else {
            self.publish_rows as f64 / self.publish_calls as f64
        }
    }

    /// Mean rows per fetch round-trip (0.0 if none were issued).
    pub fn rows_per_fetch_call(&self) -> f64 {
        if self.fetch_calls == 0 {
            0.0
        } else {
            self.fetch_rows as f64 / self.fetch_calls as f64
        }
    }

    /// The counter deltas accumulated since `earlier` was taken.
    pub fn since(&self, earlier: &BatchMetricsSnapshot) -> BatchMetricsSnapshot {
        BatchMetricsSnapshot {
            publish_calls: self.publish_calls - earlier.publish_calls,
            publish_rows: self.publish_rows - earlier.publish_rows,
            fetch_calls: self.fetch_calls - earlier.fetch_calls,
            fetch_rows: self.fetch_rows - earlier.fetch_rows,
            probe_calls: self.probe_calls - earlier.probe_calls,
            probe_rows: self.probe_rows - earlier.probe_rows,
        }
    }
}

/// Execution policy + metrics, owned by a
/// [`CrowdContext`](crate::CrowdContext) and threaded through every
/// `publish`/`collect` it runs.
///
/// Clones share the metrics (one ledger per context lineage) but carry
/// their own copy of the config, which is how
/// [`CrowdContext::with_batch_size`](crate::CrowdContext::with_batch_size)
/// derives a re-tuned context without forking the accounting.
#[derive(Debug, Clone, Default)]
pub struct ExecutionContext {
    config: ExecutionConfig,
    metrics: Arc<BatchMetrics>,
}

impl ExecutionContext {
    /// Builds an execution context from a validated config.
    pub fn new(config: ExecutionConfig) -> Result<Self> {
        config.validate()?;
        Ok(ExecutionContext { config, metrics: Arc::default() })
    }

    /// A copy with a different batch size (every other policy knob is
    /// kept), sharing this context's metrics.
    pub fn retuned(&self, batch_size: usize) -> Result<Self> {
        self.retuned_config(ExecutionConfig { batch_size, ..self.config.clone() })
    }

    /// A copy with an arbitrary re-tuned config, sharing this context's
    /// metrics (one ledger per context lineage).
    pub fn retuned_config(&self, config: ExecutionConfig) -> Result<Self> {
        config.validate()?;
        Ok(ExecutionContext { config, metrics: Arc::clone(&self.metrics) })
    }

    /// Rows per platform round-trip.
    pub fn batch_size(&self) -> usize {
        self.config.batch_size
    }

    /// Batch round-trips kept in flight at once.
    pub fn inflight_batches(&self) -> usize {
        self.config.inflight_batches
    }

    /// The active config.
    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// The shared round-trip ledger.
    pub fn metrics(&self) -> &BatchMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_batch_size_rejected() {
        assert!(ExecutionContext::new(ExecutionConfig::with_batch_size(0)).is_err());
        assert!(ExecutionContext::default().retuned(0).is_err());
        assert!(ExecutionConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_inflight_batches_rejected_and_retuning_preserves_depth() {
        assert!(ExecutionConfig::default().with_inflight_batches(0).validate().is_err());
        assert_eq!(ExecutionConfig::default().inflight_batches, DEFAULT_INFLIGHT_BATCHES);
        let ec = ExecutionContext::new(
            ExecutionConfig::with_batch_size(7).with_inflight_batches(2),
        )
        .unwrap();
        assert_eq!(ec.inflight_batches(), 2);
        // Re-tuning the batch size keeps the depth (and vice versa).
        assert_eq!(ec.retuned(3).unwrap().inflight_batches(), 2);
        let deeper = ec
            .retuned_config(ExecutionConfig { inflight_batches: 8, ..ec.config().clone() })
            .unwrap();
        assert_eq!(deeper.batch_size(), 7);
        assert_eq!(deeper.inflight_batches(), 8);
    }

    #[test]
    fn zero_sim_shards_rejected_but_unset_is_fine() {
        assert!(ExecutionConfig::default().with_sim_shards(0).validate().is_err());
        assert!(ExecutionConfig::default().with_sim_shards(4).validate().is_ok());
        assert_eq!(ExecutionConfig::default().sim_shards, None);
    }

    #[test]
    fn retuning_preserves_other_knobs() {
        let ec = ExecutionContext::new(
            ExecutionConfig::with_batch_size(7)
                .with_sim_shards(3)
                .with_segment_policy(SegmentPolicy::new(4096, 0.25)),
        )
        .unwrap();
        let re = ec.retuned(2).unwrap();
        assert_eq!(re.batch_size(), 2);
        assert_eq!(re.config().sim_shards, Some(3));
        assert_eq!(re.config().segment_policy, SegmentPolicy::new(4096, 0.25));
    }

    #[test]
    fn invalid_segment_policy_rejected() {
        let bad = ExecutionConfig::default().with_segment_policy(SegmentPolicy::new(0, 0.5));
        assert!(bad.validate().is_err());
        let bad = ExecutionConfig::default().with_segment_policy(SegmentPolicy::new(1024, 2.0));
        assert!(bad.validate().is_err());
        assert_eq!(ExecutionConfig::default().segment_policy, SegmentPolicy::default());
    }

    #[test]
    fn probe_metrics_are_separate_from_round_trips() {
        let m = BatchMetrics::default();
        m.record_publish(10);
        m.record_probe(10);
        m.record_probe(10);
        m.record_fetch(10);
        let snap = m.snapshot();
        assert_eq!(snap.probe_calls, 2);
        assert_eq!(snap.probe_rows, 20);
        // Probes never inflate the crowd-work round-trip count.
        assert_eq!(snap.round_trips(), 2);
    }

    #[test]
    fn retuned_shares_metrics() {
        let a = ExecutionContext::new(ExecutionConfig::with_batch_size(7)).unwrap();
        let b = a.retuned(3).unwrap();
        assert_eq!(a.batch_size(), 7);
        assert_eq!(b.batch_size(), 3);
        a.metrics().record_publish(5);
        b.metrics().record_fetch(5);
        let snap = a.metrics().snapshot();
        assert_eq!(snap, b.metrics().snapshot());
        assert_eq!(snap.publish_calls, 1);
        assert_eq!(snap.fetch_rows, 5);
    }

    #[test]
    fn snapshot_arithmetic() {
        let m = BatchMetrics::default();
        m.record_publish(100);
        m.record_publish(50);
        m.record_fetch(100);
        let before = m.snapshot();
        m.record_fetch(50);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.round_trips(), 1);
        assert_eq!(delta.fetch_rows, 50);
        assert_eq!(before.rows_per_publish_call(), 75.0);
        assert_eq!(m.snapshot().rows_per_fetch_call(), 75.0);
        assert_eq!(BatchMetricsSnapshot::default().rows_per_publish_call(), 0.0);
        assert_eq!(BatchMetricsSnapshot::default().rows_per_fetch_call(), 0.0);
    }
}
