//! # reprowd-core
//!
//! The paper's contribution: **CrowdData** — a crowdsourcing experiment
//! modeled as a sequence of manipulations of a tabular dataset — and
//! **CrowdContext**, the entry point tying a crowdsourcing platform, a
//! database, and quality control together (paper Figure 1).
//!
//! The five steps of the paper's running example (Figure 2) map to the
//! builder chain:
//!
//! ```
//! use reprowd_core::context::CrowdContext;
//! use reprowd_core::presenter::Presenter;
//! use reprowd_core::val;
//!
//! let cc = CrowdContext::in_memory_sim(42);
//! let cd = cc.crowddata("image-label").unwrap()
//!     .data(vec![val!("img1.jpg"), val!("img2.jpg"), val!("img3.jpg")]).unwrap() // 1. input
//!     .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"])).unwrap() // 2. UI
//!     .publish(3).unwrap()        // 3. publish to the platform
//!     .collect().unwrap()         // 4. gather crowd answers
//!     .majority_vote().unwrap();  // 5. quality control
//! assert_eq!(cd.column("mv").unwrap().len(), 3);
//! ```
//!
//! Two properties fall out of the design, and both are load-bearing for
//! reproducibility:
//!
//! * **Sharable** (fault recovery): every `task` and `result` cell is
//!   persisted in the [`CrowdContext`]'s database under a *content-derived*
//!   key — experiment name, presenter fingerprint, and the hash of the row's
//!   object (see [`hash`]). Re-running any prefix of the program, after a
//!   crash or on another researcher's machine, replays from the database
//!   and issues **zero** new platform calls for cached work. Keys do not
//!   depend on call order, which is exactly where TurKit's crash-and-rerun
//!   model breaks (see [`turkit`] for the faithful baseline and the
//!   experiment that demonstrates the difference).
//! * **Examinable** (lineage): every cell can explain itself — which task
//!   produced it, published when, answered by whom, aggregated how
//!   ([`lineage`]). Derived columns (e.g. majority vote) are *not*
//!   persisted; they are recomputed deterministically, mirroring the
//!   paper's design where only `task`/`result` columns hit the database.

#![warn(missing_docs)]

pub mod context;
pub mod crowddata;
pub mod error;
pub mod exec;
pub mod hash;
pub mod lineage;
pub mod pipeline;
pub mod presenter;
pub mod store;
pub mod turkit;
pub mod value;

pub use context::CrowdContext;
pub use crowddata::CrowdData;
pub use error::{Error, Result};
pub use exec::{BatchMetrics, BatchMetricsSnapshot, ExecutionConfig, ExecutionContext};
pub use lineage::{CellLineage, Derivation};
pub use pipeline::{majority_answer, run_stream, StreamReport, StreamSpec, StreamedRow};
pub use presenter::Presenter;
pub use turkit::CrashAndRerun;
pub use value::Value;
