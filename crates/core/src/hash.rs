//! Stable content hashing for cache keys.
//!
//! `std`'s hashers are randomized per process; cache keys must instead be
//! identical across runs, machines, and the researcher receiving the shared
//! database file. FNV-1a (64-bit) over the canonical encoding is simple,
//! fast for short keys, and fully specified here — no dependency drift can
//! silently invalidate every cache.

use crate::value::{canonical, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable hash of a JSON value via its canonical encoding.
pub fn hash_value(value: &Value) -> u64 {
    fnv1a(canonical(value).as_bytes())
}

/// Fixed-width lowercase hex of a hash (sortable, filename-safe).
pub fn hex(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::val;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn value_hash_stability() {
        // Key order must not matter; content must.
        let a: Value = serde_json::from_str(r#"{"x":1,"y":2}"#).unwrap();
        let b: Value = serde_json::from_str(r#"{"y":2,"x":1}"#).unwrap();
        assert_eq!(hash_value(&a), hash_value(&b));
        assert_ne!(hash_value(&a), hash_value(&val!({"x": 1, "y": 3})));
    }

    #[test]
    fn hex_is_fixed_width_sortable() {
        assert_eq!(hex(0).len(), 16);
        assert_eq!(hex(u64::MAX), "ffffffffffffffff");
        assert!(hex(1) < hex(255));
    }

    #[test]
    fn pinned_value_hash_regression() {
        // If this hash ever changes, every existing shared database file's
        // cache keys break. Pin it.
        assert_eq!(hash_value(&val!("img1.jpg")), fnv1a(b"\"img1.jpg\""));
    }
}
