//! Cell values and canonical encoding.
//!
//! CrowdData cells hold JSON values (`serde_json::Value`): the database file
//! a researcher ships must be self-describing, and JSON is what the
//! original system stored in SQLite. `serde_json`'s default object map is a
//! `BTreeMap`, so serializing a [`Value`] yields a *canonical* byte string
//! (keys sorted) — which is what makes content-hashed cache keys stable
//! across runs and machines.

/// The cell/object type of CrowdData tables.
pub type Value = serde_json::Value;

/// Builds a [`Value`] literal (re-export of `serde_json::json!` under a
/// domain name, used throughout examples and the paper's Figure 2 port).
#[macro_export]
macro_rules! val {
    ($($t:tt)*) => {
        ::serde_json::json!($($t)*)
    };
}

/// Canonical string encoding of a value (sorted object keys, no
/// insignificant whitespace). Equal values encode equally; this is the
/// input to cache-key hashing.
pub fn canonical(value: &Value) -> String {
    serde_json::to_string(value).expect("serde_json::Value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sorts_object_keys() {
        let a: Value = serde_json::from_str(r#"{"b":1,"a":2}"#).unwrap();
        let b: Value = serde_json::from_str(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(canonical(&a), canonical(&b));
        assert_eq!(canonical(&a), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn canonical_distinguishes_values() {
        assert_ne!(canonical(&val!(1)), canonical(&val!("1")));
        assert_ne!(canonical(&val!([1, 2])), canonical(&val!([2, 1])));
        assert_ne!(canonical(&val!(null)), canonical(&val!(0)));
    }

    #[test]
    fn val_macro_builds_values() {
        let v = val!({"url": "img1.jpg", "n": 3});
        assert_eq!(v["url"], "img1.jpg");
        assert_eq!(v["n"], 3);
        assert_eq!(val!("x"), Value::String("x".into()));
    }
}
