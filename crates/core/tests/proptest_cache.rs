//! Property tests for the paper's central invariants, over randomized
//! experiment shapes:
//!
//! 1. **Zero-cost rerun**: for any object set and redundancy, rerunning the
//!    pipeline issues no platform calls and reproduces the columns exactly.
//! 2. **Permutation invariance**: rerunning with the objects in any order
//!    is also free, and answers follow their objects.
//! 3. **Monotone extension**: extending the object set only pays for the
//!    delta.

use proptest::prelude::*;
use reprowd_core::context::CrowdContext;
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;
use reprowd_platform::{CrowdPlatform, SimPlatform};
use reprowd_storage::MemoryStore;
use std::sync::Arc;

fn objects_strategy() -> impl Strategy<Value = Vec<(String, usize)>> {
    // (url, truth) pairs; small space so duplicates occur.
    prop::collection::vec(
        ("img[a-f]{1,3}", 0usize..2).prop_map(|(url, truth)| (url, truth)),
        1..12,
    )
}

fn to_values(objs: &[(String, usize)]) -> Vec<Value> {
    objs.iter()
        .map(|(url, truth)| {
            serde_json::json!({
                "url": url,
                "_sim": {"kind": "label", "truth": truth, "labels": ["Yes", "No"], "difficulty": 0.0}
            })
        })
        .collect()
}

fn make_ctx(seed: u64) -> (CrowdContext, Arc<SimPlatform>) {
    let platform = Arc::new(SimPlatform::quick(6, 0.9, seed));
    let cc = CrowdContext::new(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
    )
    .unwrap();
    (cc, platform)
}

fn run(
    cc: &CrowdContext,
    objects: Vec<Value>,
    redundancy: u32,
) -> reprowd_core::CrowdData {
    cc.crowddata("prop")
        .unwrap()
        .data(objects)
        .unwrap()
        .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
        .unwrap()
        .publish(redundancy)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn rerun_is_free_and_identical(
        objs in objects_strategy(),
        redundancy in 1u32..4,
        seed in 0u64..1000,
    ) {
        let (cc, platform) = make_ctx(seed);
        let first = run(&cc, to_values(&objs), redundancy);
        let calls = platform.api_calls();
        let second = run(&cc, to_values(&objs), redundancy);
        prop_assert_eq!(platform.api_calls(), calls, "rerun must be free");
        prop_assert_eq!(first.column("mv").unwrap(), second.column("mv").unwrap());
        prop_assert_eq!(first.column("result").unwrap(), second.column("result").unwrap());
        prop_assert_eq!(second.run_stats().tasks_published, 0);
    }

    #[test]
    fn permuted_rerun_is_free_and_consistent(
        objs in objects_strategy(),
        seed in 0u64..1000,
    ) {
        let (cc, platform) = make_ctx(seed);
        let first = run(&cc, to_values(&objs), 2);
        let calls = platform.api_calls();

        let mut rev = objs.clone();
        rev.reverse();
        let second = run(&cc, to_values(&rev), 2);
        prop_assert_eq!(platform.api_calls(), calls, "permuted rerun must be free");

        // Answers follow objects: compare per *occurrence* of each object.
        // Reversal maps the k-th occurrence (of m) of a value to the
        // (m-1-k)-th in the reversed list, so compare sorted multisets per
        // distinct object instead of positions.
        use std::collections::HashMap;
        let group = |cd: &reprowd_core::CrowdData| {
            let mut map: HashMap<String, Vec<String>> = HashMap::new();
            let mv = cd.column("mv").unwrap();
            for (row, v) in cd.rows().iter().zip(mv) {
                map.entry(row.object["url"].as_str().unwrap().to_string())
                    .or_default()
                    .push(v.to_string());
            }
            for answers in map.values_mut() {
                answers.sort();
            }
            map
        };
        prop_assert_eq!(group(&first), group(&second));
    }

    #[test]
    fn extension_pays_only_for_the_delta(
        objs in objects_strategy(),
        extra in objects_strategy(),
        seed in 0u64..1000,
    ) {
        let (cc, _) = make_ctx(seed);
        let first = run(&cc, to_values(&objs), 2);
        prop_assert_eq!(first.run_stats().tasks_published as usize, objs.len());

        // Extended run: prefix unchanged, `extra` appended.
        let mut all = objs.clone();
        all.extend(extra.clone());
        let second = run(&cc, to_values(&all), 2);
        let s = second.run_stats();
        prop_assert_eq!(s.tasks_reused as usize, objs.len(), "prefix must be cached");
        // Appended objects that duplicate a prefix object at the same
        // occurrence index are also cache hits, so published <= extra.
        prop_assert!(s.tasks_published as usize <= extra.len());
        prop_assert_eq!(
            (s.tasks_published + s.tasks_reused) as usize,
            all.len()
        );
    }
}
