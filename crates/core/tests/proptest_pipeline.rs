//! Property tests of the pipelined execution engine's central claim: the
//! in-flight depth is a **pure wall-clock knob**. For any experiment shape,
//! every depth must produce bit-identical columns, bit-identical raw cache
//! contents, identical `BatchMetrics`, and identical platform API-call
//! counts — both for the classic `publish`/`collect` path and for the
//! streaming runner.

use proptest::prelude::*;
use reprowd_core::context::CrowdContext;
use reprowd_core::exec::ExecutionConfig;
use reprowd_core::pipeline::{run_stream, StreamSpec, StreamedRow};
use reprowd_core::presenter::Presenter;
use reprowd_core::value::Value;
use reprowd_core::CrowdData;
use reprowd_platform::{CrowdPlatform, SimPlatform};
use reprowd_storage::MemoryStore;
use std::sync::Arc;

fn objects_strategy() -> impl Strategy<Value = Vec<(String, usize)>> {
    // (url, truth) pairs; small space so duplicate objects occur.
    prop::collection::vec(("img[a-d]{1,2}", 0usize..2), 1..40)
}

fn to_values(objs: &[(String, usize)]) -> Vec<Value> {
    objs.iter()
        .map(|(url, truth)| {
            serde_json::json!({
                "url": url,
                "_sim": {"kind": "label", "truth": truth, "labels": ["Yes", "No"], "difficulty": 0.0}
            })
        })
        .collect()
}

fn ctx(depth: usize, batch: usize, seed: u64) -> (CrowdContext, Arc<SimPlatform>) {
    let platform = Arc::new(SimPlatform::quick(6, 0.9, seed));
    let cc = CrowdContext::with_config(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
        ExecutionConfig::with_batch_size(batch).with_inflight_batches(depth),
    )
    .unwrap();
    (cc, platform)
}

fn classic(cc: &CrowdContext, objects: Vec<Value>, redundancy: u32) -> CrowdData {
    cc.crowddata("prop")
        .unwrap()
        .data(objects)
        .unwrap()
        .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
        .unwrap()
        .publish(redundancy)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap()
}

/// The whole observable outcome of a classic run: columns, raw store
/// bytes, round-trip metrics, platform call count.
type Observed = (Vec<Value>, Vec<Value>, Vec<Value>, Vec<(Vec<u8>, Vec<u8>)>, String, u64);

fn observe(cc: &CrowdContext, platform: &SimPlatform, cd: &CrowdData) -> Observed {
    (
        cd.column("task").unwrap(),
        cd.column("result").unwrap(),
        cd.column("mv").unwrap(),
        cc.backend().scan_prefix(b"").unwrap(),
        format!("{:?}", cc.batch_metrics()),
        platform.api_calls(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Classic publish/collect: depths 2, 4, 8 reproduce depth 1 exactly —
    /// columns, cache bytes, metrics, and API calls.
    #[test]
    fn classic_path_is_depth_invariant(
        objs in objects_strategy(),
        redundancy in 1u32..4,
        batch in 1usize..7,
        seed in 0u64..500,
    ) {
        let (cc1, p1) = ctx(1, batch, seed);
        let sequential = classic(&cc1, to_values(&objs), redundancy);
        let reference = observe(&cc1, &p1, &sequential);
        for depth in [2usize, 4, 8] {
            let (cc, p) = ctx(depth, batch, seed);
            let cd = classic(&cc, to_values(&objs), redundancy);
            let got = observe(&cc, &p, &cd);
            prop_assert_eq!(&got, &reference, "depth {} diverged from sequential", depth);
        }
    }

    /// The streaming runner: same candidates, every depth — identical rows
    /// (in identical sink order), identical cache bytes, identical calls.
    #[test]
    fn streaming_path_is_depth_invariant(
        objs in objects_strategy(),
        batch in 1usize..7,
        seed in 0u64..500,
    ) {
        let spec = |_: usize| StreamSpec {
            experiment: "prop-stream".into(),
            presenter: Presenter::image_label("Q?", &["Yes", "No"]),
            n_assignments: 2,
        };
        let run = |depth: usize| {
            let (cc, platform) = ctx(depth, batch, seed);
            let mut rows: Vec<(usize, String, String)> = Vec::new();
            let report = run_stream(
                &cc,
                &spec(depth),
                to_values(&objs).into_iter(),
                |row: StreamedRow| {
                    rows.push((
                        row.index,
                        row.object.to_string(),
                        serde_json::to_string(&row.result.runs).unwrap(),
                    ));
                    Ok(())
                },
            )
            .unwrap();
            (
                rows,
                cc.backend().scan_prefix(b"").unwrap(),
                format!("{:?}", cc.batch_metrics()),
                platform.api_calls(),
                report.stats,
            )
        };
        let reference = run(1);
        // Rows arrive in input order regardless of depth.
        prop_assert!(reference.0.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        for depth in [2usize, 4, 8] {
            let got = run(depth);
            prop_assert_eq!(&got, &reference, "stream depth {} diverged", depth);
        }
    }

    /// Streamed runs and classic runs share one cache: a streamed rerun of
    /// a classic experiment is platform-free, and vice versa.
    #[test]
    fn streamed_and_classic_runs_share_the_cache(
        objs in objects_strategy(),
        seed in 0u64..500,
    ) {
        let (cc, platform) = ctx(4, 5, seed);
        let _ = classic(&cc, to_values(&objs), 2);
        let calls = platform.api_calls();
        let report = run_stream(
            &cc,
            &StreamSpec {
                experiment: "prop".into(),
                presenter: Presenter::image_label("Q?", &["Yes", "No"]),
                n_assignments: 2,
            },
            to_values(&objs).into_iter(),
            |_row| Ok(()),
        )
        .unwrap();
        prop_assert_eq!(platform.api_calls(), calls, "streamed rerun must be free");
        prop_assert_eq!(report.stats.results_reused, objs.len() as u64);
        prop_assert_eq!(report.stats.tasks_published, 0);
    }
}
