//! Crash-recovery and concurrency tests for the segmented log engine:
//!
//! 1. Truncating a multi-segment database at *every byte offset* of its
//!    last (active) segment yields the state of some batch-aligned prefix
//!    of the committed writes — never a torn batch, never lost sealed data.
//! 2. `get`/`scan_prefix`/writes complete while a large compaction is in
//!    flight (the rewrite holds no store lock).
//! 3. A CRC-valid record whose payload does not decode is a torn tail,
//!    not a bricked database.
//! 4. A legacy single-file database opens as-is and is migrated to the
//!    segmented layout by its first compaction.
//! 5. Orphaned temp/segment files from crashed compactions are swept on
//!    open; a rotation interrupted between manifest write and rename is
//!    completed on open.

use reprowd_storage::crc::crc32;
use reprowd_storage::manifest::{manifest_path, Manifest};
use reprowd_storage::record::{read_record, ReadOutcome, HEADER_LEN};
use reprowd_storage::{Backend, Batch, DiskStore, SegmentPolicy, SyncPolicy};
use std::collections::BTreeMap;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("reprowd-segrec-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    DiskStore::destroy(&p).unwrap();
    p
}

fn dump(store: &DiskStore) -> BTreeMap<Vec<u8>, Vec<u8>> {
    store.scan_prefix(&[]).unwrap().into_iter().collect()
}

/// Byte offsets at which each record of the file at `path` starts.
fn record_offsets(path: &Path) -> Vec<u64> {
    let bytes = std::fs::read(path).unwrap();
    let mut cur = Cursor::new(bytes);
    let mut offsets = Vec::new();
    let mut offset = 0u64;
    while let ReadOutcome::Record(p) = read_record(&mut cur, offset).unwrap() {
        offsets.push(offset);
        offset += (HEADER_LEN + p.len()) as u64;
    }
    offsets
}

#[test]
fn truncation_sweep_of_last_segment_yields_a_batch_prefix() {
    let path = tmp("sweep.rwlog");
    let policy = SegmentPolicy::new(160, 1.0); // tiny segments, no auto-compaction
    let mut prefix_states: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = vec![BTreeMap::new()];
    {
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        let mut model = BTreeMap::new();
        for i in 0..14u32 {
            let mut b = Batch::new();
            for j in 0..2u32 {
                let (k, v) = (format!("b{i:02}/k{j}"), format!("value-{i:02}-{j}"));
                model.insert(k.clone().into_bytes(), v.clone().into_bytes());
                b.set(k.into_bytes(), v.into_bytes());
            }
            store.apply_batch(b).unwrap();
            prefix_states.push(model.clone());
        }
        assert!(store.stats().segments > 2, "workload must span several segments");
        store.flush().unwrap();
    }
    let pristine = std::fs::read(&path).unwrap();
    assert!(!pristine.is_empty(), "the active segment must hold records");

    let mut matched_indices = Vec::new();
    for cut in 0..=pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        let state = dump(&store);
        let idx = prefix_states.iter().position(|s| s == &state).unwrap_or_else(|| {
            panic!("cut at {cut}/{} is not any batch-aligned prefix", pristine.len())
        });
        matched_indices.push(idx);
    }
    // Sealed segments are untouched by the sweep: even a fully truncated
    // active segment keeps every batch that was sealed.
    assert!(matched_indices[0] > 0, "sealed batches lost by truncating the active segment");
    // More surviving bytes never means less surviving data, and the full
    // file recovers the full state.
    assert!(matched_indices.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*matched_indices.last().unwrap(), prefix_states.len() - 1);
}

#[test]
fn reads_and_writes_complete_while_compaction_is_in_flight() {
    let path = tmp("concurrent.rwlog");
    let policy = SegmentPolicy::new(64 * 1024, 1.0);
    let store =
        Arc::new(DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap());
    let value = vec![0xABu8; 128];
    // Two rounds over the same keys: ~50% garbage, several MB to rewrite.
    for _round in 0..2 {
        for i in 0..20_000u32 {
            store.set(format!("key/{i:06}").as_bytes(), &value).unwrap();
        }
    }
    assert!(store.stats().segments > 10);

    let compactor = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.compact().unwrap())
    };
    let mut reads_during = 0u64;
    let mut i = 0u32;
    while !compactor.is_finished() {
        let key = format!("key/{:06}", i % 20_000);
        assert_eq!(store.get(key.as_bytes()).unwrap().as_deref(), Some(&value[..]));
        assert!(!store.scan_prefix(format!("key/{:04}", i % 100).as_bytes()).unwrap().is_empty());
        store.set(format!("live/{i:06}").as_bytes(), b"written-during-compaction").unwrap();
        reads_during += 1;
        i += 1;
    }
    let saved = compactor.join().unwrap();
    assert!(saved > 0, "the 50%-garbage log must shrink");
    assert!(
        reads_during > 0,
        "reads/writes must make progress while the rewrite runs"
    );
    // Nothing was lost: neither old keys nor keys written mid-compaction.
    assert_eq!(store.scan_prefix(b"key/").unwrap().len(), 20_000);
    assert_eq!(store.scan_prefix(b"live/").unwrap().len(), i as usize);
    drop(store);
    let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
    assert_eq!(store.scan_prefix(b"key/").unwrap().len(), 20_000);
    assert_eq!(store.scan_prefix(b"live/").unwrap().len(), i as usize);
}

#[test]
fn crc_valid_but_undecodable_record_is_a_torn_tail_not_a_bricked_db() {
    let path = tmp("undecodable.rwlog");
    {
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        store.set(b"k1", b"v1").unwrap();
        store.set(b"k2", b"v2").unwrap();
        store.set(b"k3", b"v3").unwrap();
    }
    // Corrupt the SECOND record's payload, then re-CRC it so the framing
    // layer accepts it: only `Batch::decode` can notice the damage.
    let offsets = record_offsets(&path);
    assert_eq!(offsets.len(), 3);
    let mut bytes = std::fs::read(&path).unwrap();
    let start = offsets[1] as usize;
    let len = u32::from_le_bytes(bytes[start + 1..start + 5].try_into().unwrap()) as usize;
    let payload = &mut bytes[start + HEADER_LEN..start + HEADER_LEN + len];
    payload.fill(0xFF); // an op count of u32::MAX with no ops behind it
    let crc = crc32(&bytes[start + HEADER_LEN..start + HEADER_LEN + len]);
    bytes[start + 5..start + 9].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    // The open must succeed (not brick), keep k1, and report why the rest
    // of the log was discarded.
    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    assert_eq!(store.get(b"k1").unwrap().as_deref(), Some(&b"v1"[..]));
    assert_eq!(store.get(b"k2").unwrap(), None);
    assert_eq!(store.get(b"k3").unwrap(), None);
    let report = store.recovery_report();
    assert!(report.truncated_bytes > 0);
    let reason = report.truncate_reason.as_deref().unwrap();
    assert!(reason.contains("replay rejected"), "reason: {reason}");
    // And the store is usable again.
    store.set(b"k4", b"v4").unwrap();
    drop(store);
    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    assert_eq!(store.recovery_report().truncated_bytes, 0);
    assert_eq!(store.get(b"k4").unwrap().as_deref(), Some(&b"v4"[..]));
}

#[test]
fn corruption_in_a_sealed_segment_refuses_the_open() {
    // Sealed segments are fsynced before the manifest references them, so
    // damage there is bitrot mid-history, not a crash artifact. Silently
    // truncating it and replaying later segments could resurrect deleted
    // keys — the open must refuse instead.
    let path = tmp("sealed-corrupt.rwlog");
    let policy = SegmentPolicy::new(256, 1.0);
    {
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        for i in 0..60u32 {
            store.set(format!("k/{i:03}").as_bytes(), b"0123456789abcdef").unwrap();
        }
        assert!(store.stats().segments > 2);
    }
    // Flip a payload byte in the FIRST sealed segment.
    let first_sealed = {
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        store.segment_files()[0].clone()
    };
    assert_ne!(first_sealed, path);
    let mut bytes = std::fs::read(&first_sealed).unwrap();
    bytes[HEADER_LEN + 2] ^= 0xFF;
    std::fs::write(&first_sealed, &bytes).unwrap();

    let err = match DiskStore::open_with(&path, SyncPolicy::Never, policy) {
        Ok(_) => panic!("open over a damaged sealed segment must fail"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("damaged mid-history"), "{err}");
    // The damaged file was not truncated behind the user's back.
    assert_eq!(std::fs::read(&first_sealed).unwrap().len(), bytes.len());
}

#[test]
fn legacy_single_file_database_opens_and_migrates_on_compaction() {
    let path = tmp("legacy.rwlog");
    // A pre-segmentation database: the default policy never rotates at
    // this size, so this is byte-for-byte the old single-file format.
    {
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for round in 0..10 {
            for i in 0..40u32 {
                store
                    .set(format!("key/{i:03}").as_bytes(), format!("round-{round}").as_bytes())
                    .unwrap();
            }
        }
        assert!(!manifest_path(&path).exists());
    }
    let legacy_bytes = std::fs::metadata(&path).unwrap().len();

    // Opening with a segmented policy leaves the file alone...
    let policy = SegmentPolicy::new(1024, 1.0);
    let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
    assert_eq!(store.recovery_report().segments, 1);
    assert_eq!(store.stats().live_keys, 40);
    // ...and the first compaction migrates it: live data moves into
    // sealed segments, the manifest appears, the old fat file is replaced
    // by a fresh (empty) active segment.
    let saved = store.compact().unwrap();
    assert!(saved > 0);
    assert!(manifest_path(&path).exists());
    assert!(std::fs::metadata(&path).unwrap().len() < legacy_bytes);
    assert!(store.stats().log_bytes < legacy_bytes);
    for i in 0..40u32 {
        assert_eq!(
            store.get(format!("key/{i:03}").as_bytes()).unwrap().as_deref(),
            Some(&b"round-9"[..])
        );
    }
    drop(store);
    // The migrated database reopens under any policy.
    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    assert_eq!(store.stats().live_keys, 40);
}

#[test]
fn orphaned_temp_and_segment_files_are_swept_on_open() {
    let path = tmp("sweep-orphans.rwlog");
    {
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        store.set(b"k", b"v").unwrap();
    }
    // Debris a crash could leave behind: a pre-segmentation compaction
    // temp, an uncommitted segment, a manifest temp.
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let dir = path.parent().unwrap();
    let orphans = [
        dir.join(format!("{name}.compact")),
        dir.join(format!("{name}.000099.seg")),
        dir.join(format!("{name}.manifest.tmp")),
    ];
    for o in &orphans {
        std::fs::write(o, b"debris").unwrap();
    }
    // An unrelated user file must survive the sweep.
    let keeper = dir.join(format!("{name}.bak"));
    std::fs::write(&keeper, b"keep me").unwrap();

    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    for o in &orphans {
        assert!(!o.exists(), "orphan {} must be swept", o.display());
    }
    assert!(keeper.exists());
    assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    std::fs::remove_file(keeper).unwrap();
}

#[test]
fn interrupted_rotation_is_completed_on_open() {
    let path = tmp("interrupted.rwlog");
    {
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        store.set(b"sealed-key", b"sealed-value").unwrap();
    }
    // Simulate a crash between the rotation's manifest write and its
    // rename: the manifest claims segment 000001 but the data still sits
    // in the base file.
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let seg_name = format!("{name}.000001.seg");
    Manifest { next_seq: 2, sealed: vec![seg_name.clone()] }
        .store(&manifest_path(&path))
        .unwrap();
    assert!(!path.parent().unwrap().join(&seg_name).exists());

    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    // Open finished the rename and started a fresh active segment.
    assert!(path.parent().unwrap().join(&seg_name).exists());
    assert_eq!(store.get(b"sealed-key").unwrap().as_deref(), Some(&b"sealed-value"[..]));
    assert_eq!(store.recovery_report().segments, 2);
    store.set(b"after", b"recovery").unwrap();
    drop(store);
    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    assert_eq!(store.stats().live_keys, 2);
}

#[test]
fn interrupted_rotation_with_torn_tail_recovers_leniently() {
    // The file an open renames to complete an interrupted rotation was
    // the ACTIVE file when the crash hit, so it may end in a torn write.
    // It must get the active segment's truncate-the-tail treatment, not
    // replay_sealed's hard "damaged mid-history" refusal.
    let path = tmp("interrupted-torn.rwlog");
    {
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        store.set(b"good", b"value").unwrap();
    }
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xDB, 0x01]).unwrap(); // partial record header
    }
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let seg_name = format!("{name}.000001.seg");
    Manifest { next_seq: 2, sealed: vec![seg_name.clone()] }
        .store(&manifest_path(&path))
        .unwrap();

    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    assert_eq!(store.get(b"good").unwrap().as_deref(), Some(&b"value"[..]));
    let report = store.recovery_report();
    assert!(report.truncated_bytes > 0, "torn tail must be truncated, not fatal");
    assert!(path.parent().unwrap().join(&seg_name).exists());
    store.set(b"after", b"ok").unwrap();
    drop(store);
    let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
    assert_eq!(store.stats().live_keys, 2);
}

#[test]
fn scan_prefix_is_bit_identical_across_layouts() {
    // The same operation sequence through a legacy-style single file, a
    // segmented store (with a mid-stream compaction and reopen), and the
    // in-memory reference must scan identically.
    let legacy_path = tmp("parity-legacy.rwlog");
    let seg_path = tmp("parity-seg.rwlog");
    let legacy = DiskStore::open(&legacy_path, SyncPolicy::Never).unwrap();
    let memory = reprowd_storage::MemoryStore::new();
    let policy = SegmentPolicy::new(512, 0.5);
    let mut seg = DiskStore::open_with(&seg_path, SyncPolicy::Never, policy).unwrap();

    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for step in 0..600u32 {
        let key = format!("k/{:02}", rng() % 40);
        if rng() % 4 == 0 {
            legacy.delete(key.as_bytes()).unwrap();
            memory.delete(key.as_bytes()).unwrap();
            seg.delete(key.as_bytes()).unwrap();
        } else {
            let value = format!("v-{step}-{}", rng() % 1000);
            legacy.set(key.as_bytes(), value.as_bytes()).unwrap();
            memory.set(key.as_bytes(), value.as_bytes()).unwrap();
            seg.set(key.as_bytes(), value.as_bytes()).unwrap();
        }
        if step == 300 {
            seg.compact().unwrap();
            seg = DiskStore::open_with(&seg_path, SyncPolicy::Never, policy).unwrap();
        }
    }
    for prefix in [&b""[..], b"k/", b"k/1", b"k/39", b"nope"] {
        let want = memory.scan_prefix(prefix).unwrap();
        assert_eq!(legacy.scan_prefix(prefix).unwrap(), want, "legacy, prefix {prefix:?}");
        assert_eq!(seg.scan_prefix(prefix).unwrap(), want, "segmented, prefix {prefix:?}");
    }
}
