//! Property-based tests for the storage engine's core invariants:
//!
//! 1. A `DiskStore` replayed from disk equals the in-memory model of the
//!    operations applied to it (durability / replay fidelity).
//! 2. Truncating the log at *any* byte position yields the state of some
//!    prefix of the applied batches — never a partially-applied batch
//!    (atomicity under torn writes).
//! 3. `scan_prefix` equals a filter over the model map.

use proptest::prelude::*;
use reprowd_storage::{Backend, Batch, DiskStore, SyncPolicy};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_path() -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("reprowd-storage-proptest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{}.rwlog", COUNTER.fetch_add(1, Ordering::Relaxed)))
}

/// One logical mutation in a generated scenario.
#[derive(Debug, Clone)]
enum ModelOp {
    Set(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Batch(Vec<(bool, Vec<u8>, Vec<u8>)>), // (is_set, key, value)
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small key space so overwrites and deletes actually collide.
    prop::collection::vec(prop::num::u8::ANY, 1..6)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::num::u8::ANY, 0..32)
}

fn op_strategy() -> impl Strategy<Value = ModelOp> {
    prop_oneof![
        (key_strategy(), value_strategy()).prop_map(|(k, v)| ModelOp::Set(k, v)),
        key_strategy().prop_map(ModelOp::Delete),
        prop::collection::vec((any::<bool>(), key_strategy(), value_strategy()), 1..5)
            .prop_map(ModelOp::Batch),
    ]
}

fn apply_to_model(model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &ModelOp) {
    match op {
        ModelOp::Set(k, v) => {
            model.insert(k.clone(), v.clone());
        }
        ModelOp::Delete(k) => {
            model.remove(k);
        }
        ModelOp::Batch(items) => {
            for (is_set, k, v) in items {
                if *is_set {
                    model.insert(k.clone(), v.clone());
                } else {
                    model.remove(k);
                }
            }
        }
    }
}

fn apply_to_store(store: &DiskStore, op: &ModelOp) {
    match op {
        ModelOp::Set(k, v) => store.set(k, v).unwrap(),
        ModelOp::Delete(k) => store.delete(k).unwrap(),
        ModelOp::Batch(items) => {
            let mut b = Batch::new();
            for (is_set, k, v) in items {
                if *is_set {
                    b.set(k.clone(), v.clone());
                } else {
                    b.delete(k.clone());
                }
            }
            store.apply_batch(b).unwrap();
        }
    }
}

fn dump_store(store: &DiskStore) -> BTreeMap<Vec<u8>, Vec<u8>> {
    store.scan_prefix(&[]).unwrap().into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Replaying the log reproduces exactly the model state.
    #[test]
    fn reopen_equals_model(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let path = tmp_path();
        let mut model = BTreeMap::new();
        {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            for op in &ops {
                apply_to_store(&store, op);
                apply_to_model(&mut model, op);
            }
            // Live view agrees before the crash/reopen too.
            prop_assert_eq!(&dump_store(&store), &model);
        }
        let reopened = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        prop_assert_eq!(dump_store(&reopened), model);
        std::fs::remove_file(&path).ok();
    }

    /// Chopping the log anywhere produces the state of a batch-aligned prefix.
    #[test]
    fn truncation_is_batch_atomic(
        ops in prop::collection::vec(op_strategy(), 1..25),
        cut_fraction in 0.0f64..1.0,
    ) {
        let path = tmp_path();
        // Build the set of valid prefix states.
        let mut prefix_states = Vec::with_capacity(ops.len() + 1);
        let mut model = BTreeMap::new();
        prefix_states.push(model.clone());
        {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            for op in &ops {
                apply_to_store(&store, op);
                apply_to_model(&mut model, op);
                prefix_states.push(model.clone());
            }
        }
        // Torn write: truncate the file at an arbitrary byte.
        let full_len = std::fs::metadata(&path).unwrap().len();
        let cut = (full_len as f64 * cut_fraction) as u64;
        {
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
        }
        let reopened = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        let state = dump_store(&reopened);
        prop_assert!(
            prefix_states.contains(&state),
            "post-truncation state is not any batch prefix (cut at {} of {})",
            cut,
            full_len
        );
        std::fs::remove_file(&path).ok();
    }

    /// scan_prefix == model filter, for random prefixes.
    #[test]
    fn scan_prefix_equals_model_filter(
        ops in prop::collection::vec(op_strategy(), 0..40),
        prefix in prop::collection::vec(prop::num::u8::ANY, 0..3),
    ) {
        let path = tmp_path();
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            apply_to_store(&store, op);
            apply_to_model(&mut model, op);
        }
        let got = store.scan_prefix(&prefix).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(got, want);
        std::fs::remove_file(&path).ok();
    }

    /// Compaction never changes the visible state.
    #[test]
    fn compaction_preserves_state(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let path = tmp_path();
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for op in &ops {
            apply_to_store(&store, op);
        }
        let before = dump_store(&store);
        store.compact().unwrap();
        prop_assert_eq!(&dump_store(&store), &before);
        drop(store);
        let reopened = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        prop_assert_eq!(dump_store(&reopened), before);
        std::fs::remove_file(&path).ok();
    }
}
