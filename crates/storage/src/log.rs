//! The append-only log file underlying [`DiskStore`](crate::kv::DiskStore).
//!
//! A [`LogFile`] is a single file of CRC-framed records (see [`crate::record`]).
//! Opening a log replays it from the start; if the file ends in a torn or
//! corrupt record (the signature of a crash mid-append), the tail is
//! truncated so that the file is again a clean sequence of records.

use crate::error::Result;
use crate::record::{encode, read_record, ReadOutcome};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// What `LogFile::open` found and did while replaying an existing file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Number of intact records replayed.
    pub records: u64,
    /// Bytes of torn tail removed, if any.
    pub truncated_bytes: u64,
    /// Reason the tail was considered torn (empty if the file was clean).
    pub truncate_reason: Option<String>,
}

/// Replays a **sealed** (immutable) log file without opening it for
/// writing, returning `(records, bytes)` on success.
///
/// Sealed segments are fully fsynced before the manifest ever references
/// them, so — unlike the active segment — a torn or undecodable record
/// here is *not* a normal crash artifact: it is real on-disk corruption
/// in the middle of history. Silently truncating it and replaying later
/// segments would recover a state that was never any prefix of the
/// database (e.g. resurrecting a key whose delete was in the damaged
/// region), so it is reported as a hard [`Error::Corrupt`] instead.
///
/// [`Error::Corrupt`]: crate::error::Error::Corrupt
pub fn replay_sealed<F>(path: &Path, mut replay: F) -> Result<(u64, u64)>
where
    F: FnMut(&[u8]) -> Result<()>,
{
    let file = OpenOptions::new().read(true).open(path)?;
    let mut reader = BufReader::new(file);
    let mut records = 0u64;
    let mut offset = 0u64;
    loop {
        match read_record(&mut reader, offset)? {
            ReadOutcome::Record(payload) => {
                replay(&payload)?;
                offset += (crate::record::HEADER_LEN + payload.len()) as u64;
                records += 1;
            }
            ReadOutcome::Eof => return Ok((records, offset)),
            ReadOutcome::Torn { offset: torn_at, reason } => {
                return Err(crate::error::Error::Corrupt {
                    offset: torn_at,
                    reason: format!(
                        "sealed segment {} is damaged mid-history: {reason}",
                        path.display()
                    ),
                })
            }
        }
    }
}

/// A single append-only file of framed records.
pub struct LogFile {
    path: PathBuf,
    file: File,
    /// Current logical end of the log (== file length after recovery).
    len: u64,
}

impl LogFile {
    /// Opens (or creates) the log at `path`, replaying existing records into
    /// `replay` and truncating any torn tail.
    ///
    /// A record that is CRC-valid but that `replay` rejects (e.g. a
    /// payload `Batch::decode` cannot parse) is treated exactly like a
    /// torn tail: the log is truncated from that record's start and the
    /// rejection is reported as the truncate reason. Failing the open
    /// instead would permanently brick the database over its final write —
    /// a worse outcome than the at-most-one-record loss every crash
    /// already admits. `replay` must therefore only return `Err` for
    /// undecodable payloads, never for conditions worth aborting the open.
    pub fn open<F>(path: &Path, mut replay: F) -> Result<(Self, OpenReport)>
    where
        F: FnMut(&[u8]) -> Result<()>,
    {
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(path)?;
        let mut report = OpenReport::default();
        let file_len = file.metadata()?.len();

        file.seek(SeekFrom::Start(0))?;
        let mut reader = BufReader::new(&mut file);
        let mut offset: u64 = 0;
        loop {
            let record_start = offset;
            match read_record(&mut reader, record_start)? {
                ReadOutcome::Record(payload) => match replay(&payload) {
                    Ok(()) => {
                        offset = record_start + (crate::record::HEADER_LEN + payload.len()) as u64;
                        report.records += 1;
                    }
                    Err(e) => {
                        report.truncated_bytes = file_len - record_start;
                        report.truncate_reason =
                            Some(format!("replay rejected record at offset {record_start}: {e}"));
                        break;
                    }
                },
                ReadOutcome::Eof => break,
                ReadOutcome::Torn { offset: torn_at, reason } => {
                    report.truncated_bytes = file_len - torn_at;
                    report.truncate_reason = Some(reason);
                    break;
                }
            }
        }
        drop(reader);

        if report.truncated_bytes > 0 {
            file.set_len(offset)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((LogFile { path: path.to_path_buf(), file, len: offset }, report))
    }

    /// Appends one framed record; returns the offset it was written at.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let framed = encode(payload)?;
        let at = self.len;
        self.file.write_all(&framed)?;
        self.len += framed.len() as u64;
        Ok(at)
    }

    /// Forces all appended data to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// A second handle to the underlying file, for syncing it without
    /// holding whatever lock guards the `LogFile` itself.
    pub(crate) fn sync_handle(&self) -> Result<File> {
        Ok(self.file.try_clone()?)
    }

    /// Logical length in bytes (only intact records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reprowd-log-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = fs::remove_file(&p);
        p
    }

    fn collect_open(path: &Path) -> (Vec<Vec<u8>>, OpenReport, LogFile) {
        let mut seen = Vec::new();
        let (log, report) = LogFile::open(path, |p| {
            seen.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        (seen, report, log)
    }

    #[test]
    fn append_then_replay() {
        let path = tmp("append_then_replay.log");
        {
            let (mut log, _) = LogFile::open(&path, |_| Ok(())).unwrap();
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
            log.append(b"three").unwrap();
            log.sync().unwrap();
        }
        let (seen, report, _log) = collect_open(&path);
        assert_eq!(seen, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert_eq!(report.records, 3);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_reusable() {
        let path = tmp("torn_tail.log");
        {
            let (mut log, _) = LogFile::open(&path, |_| Ok(())).unwrap();
            log.append(b"good-1").unwrap();
            log.append(b"good-2").unwrap();
        }
        // Simulate a crash mid-append: append garbage bytes (a partial record).
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xDB, 0xFF]).unwrap(); // magic + 1 byte of length
        }
        let (seen, report, mut log) = collect_open(&path);
        assert_eq!(seen.len(), 2);
        assert_eq!(report.records, 2);
        assert!(report.truncated_bytes > 0);
        assert!(report.truncate_reason.is_some());

        // The truncated log accepts new appends and replays cleanly.
        log.append(b"good-3").unwrap();
        drop(log);
        let (seen, report, _log) = collect_open(&path);
        assert_eq!(seen.len(), 3);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn corrupt_middle_byte_truncates_from_there() {
        let path = tmp("corrupt_middle.log");
        let second_offset;
        {
            let (mut log, _) = LogFile::open(&path, |_| Ok(())).unwrap();
            log.append(b"aaaa").unwrap();
            second_offset = log.append(b"bbbb").unwrap();
            log.append(b"cccc").unwrap();
        }
        // Flip a payload byte of the second record: it and everything after fall off.
        {
            use std::io::{Seek as _, SeekFrom, Write as _};
            let mut f = OpenOptions::new().read(true).write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(second_offset + crate::record::HEADER_LEN as u64)).unwrap();
            f.write_all(&[0xEE]).unwrap();
        }
        let (seen, report, _log) = collect_open(&path);
        assert_eq!(seen, vec![b"aaaa".to_vec()]);
        assert_eq!(report.records, 1);
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn empty_log_opens_clean() {
        let path = tmp("empty.log");
        let (seen, report, log) = collect_open(&path);
        assert!(seen.is_empty());
        assert_eq!(report, OpenReport::default());
        assert!(log.is_empty());
    }

    #[test]
    fn replay_sealed_is_strict_about_corruption() {
        let path = tmp("sealed_strict.log");
        {
            let (mut log, _) = LogFile::open(&path, |_| Ok(())).unwrap();
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
            log.sync().unwrap();
        }
        let mut seen = Vec::new();
        let (records, bytes) = replay_sealed(&path, |p| {
            seen.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(records, 2);
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        assert_eq!(seen.len(), 2);
        // Flip a payload byte: a sealed segment must refuse to replay, and
        // must NOT be truncated in place (the evidence is preserved).
        let len_before = fs::metadata(&path).unwrap().len();
        {
            use std::io::{Seek as _, SeekFrom, Write as _};
            let mut f = OpenOptions::new().read(true).write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(crate::record::HEADER_LEN as u64)).unwrap();
            f.write_all(&[0xEE]).unwrap();
        }
        let err = replay_sealed(&path, |_| Ok(())).unwrap_err();
        assert!(err.to_string().contains("damaged mid-history"), "{err}");
        assert_eq!(fs::metadata(&path).unwrap().len(), len_before);
    }

    #[test]
    fn replay_rejection_truncates_instead_of_failing_open() {
        let path = tmp("replay_reject.log");
        {
            let (mut log, _) = LogFile::open(&path, |_| Ok(())).unwrap();
            log.append(b"good").unwrap();
            log.append(b"poison").unwrap();
            log.append(b"after-poison").unwrap();
        }
        // The open must succeed, keep everything before the rejected
        // record, and drop it plus everything after.
        let mut seen = Vec::new();
        let (log, report) = LogFile::open(&path, |p| {
            if p == b"poison" {
                return Err(crate::error::Error::Corrupt {
                    offset: 0,
                    reason: "undecodable payload".into(),
                });
            }
            seen.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![b"good".to_vec()]);
        assert_eq!(report.records, 1);
        assert!(report.truncated_bytes > 0);
        let reason = report.truncate_reason.unwrap();
        assert!(reason.contains("replay rejected"), "{reason}");
        // The file was physically truncated at the rejected record.
        assert_eq!(log.len(), (crate::record::HEADER_LEN + 4) as u64);
        drop(log);
        let (seen, report, _log) = collect_open(&path);
        assert_eq!(seen.len(), 1);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn append_offsets_are_monotonic() {
        let path = tmp("offsets.log");
        let (mut log, _) = LogFile::open(&path, |_| Ok(())).unwrap();
        let a = log.append(b"x").unwrap();
        let b = log.append(b"yy").unwrap();
        let c = log.append(b"zzz").unwrap();
        assert!(a < b && b < c);
        assert_eq!(log.len(), c + (crate::record::HEADER_LEN + 3) as u64);
    }
}
