//! Typed tables over a [`Backend`].
//!
//! CrowdData persists its `task` and `result` columns as rows of structured
//! data. A [`Table`] namespaces keys as `t/<table-name>/<row-key>` and
//! (de)serializes values as JSON — self-describing on disk, so a researcher
//! receiving a shared database file can inspect it with standard tools,
//! mirroring the examinability goal of the paper.

use crate::batch::Batch;
use crate::error::{Error, Result};
use crate::kv::Backend;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::marker::PhantomData;
use std::sync::Arc;

/// Separator between namespace components. Table names may not contain it.
const SEP: u8 = b'/';

/// A typed view over a slice of a [`Backend`]'s key space.
pub struct Table<T> {
    backend: Arc<dyn Backend>,
    prefix: Vec<u8>,
    name: String,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Table<T> {
    fn clone(&self) -> Self {
        Table {
            backend: Arc::clone(&self.backend),
            prefix: self.prefix.clone(),
            name: self.name.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: Serialize + DeserializeOwned> Table<T> {
    /// Binds a table named `name` onto `backend`.
    ///
    /// Returns an error if `name` contains the `/` namespace separator.
    pub fn new(backend: Arc<dyn Backend>, name: &str) -> Result<Self> {
        if name.as_bytes().contains(&SEP) {
            return Err(Error::InvalidArgument(format!(
                "table name {name:?} may not contain '/'"
            )));
        }
        let mut prefix = Vec::with_capacity(name.len() + 3);
        prefix.push(b't');
        prefix.push(SEP);
        prefix.extend_from_slice(name.as_bytes());
        prefix.push(SEP);
        Ok(Table { backend, prefix, name: name.to_string(), _marker: PhantomData })
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn full_key(&self, key: &[u8]) -> Vec<u8> {
        let mut k = Vec::with_capacity(self.prefix.len() + key.len());
        k.extend_from_slice(&self.prefix);
        k.extend_from_slice(key);
        k
    }

    /// Inserts or overwrites the row at `key`.
    pub fn put(&self, key: &[u8], row: &T) -> Result<()> {
        let value = serde_json::to_vec(row)?;
        self.backend.set(&self.full_key(key), &value)
    }

    /// Fetches the row at `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<T>> {
        match self.backend.get(&self.full_key(key))? {
            Some(bytes) => Ok(Some(serde_json::from_slice(&bytes)?)),
            None => Ok(None),
        }
    }

    /// True if a row exists at `key`.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        self.backend.contains(&self.full_key(key))
    }

    /// Removes the row at `key` (no-op if absent).
    pub fn remove(&self, key: &[u8]) -> Result<()> {
        self.backend.delete(&self.full_key(key))
    }

    /// All `(row-key, row)` pairs, ascending by key.
    pub fn scan(&self) -> Result<Vec<(Vec<u8>, T)>> {
        self.scan_prefix(&[])
    }

    /// All rows whose key starts with `key_prefix`, ascending by key.
    pub fn scan_prefix(&self, key_prefix: &[u8]) -> Result<Vec<(Vec<u8>, T)>> {
        let full = self.full_key(key_prefix);
        let mut out = Vec::new();
        for (k, v) in self.backend.scan_prefix(&full)? {
            let row_key = k[self.prefix.len()..].to_vec();
            out.push((row_key, serde_json::from_slice(&v)?));
        }
        Ok(out)
    }

    /// Number of rows in the table (via a scan — intended for tests and
    /// small tables, not hot paths).
    pub fn len(&self) -> Result<usize> {
        Ok(self.backend.scan_prefix(&self.prefix)?.len())
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Inserts or overwrites many rows **atomically**: all of them are
    /// staged into one [`Batch`] and applied as a single log record, so a
    /// crash mid-write leaves either every row or none of them. This is
    /// the write path of the batched publish/collect pipeline — one
    /// durable write per platform round-trip instead of one per row.
    ///
    /// An empty iterator is a no-op that never touches the backend.
    pub fn put_many<'a, I>(&self, rows: I) -> Result<()>
    where
        T: 'a,
        I: IntoIterator<Item = (&'a [u8], &'a T)>,
    {
        let mut batch = Batch::new();
        for (key, row) in rows {
            self.stage_put(&mut batch, key, row)?;
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.backend.apply_batch(batch)
    }

    /// Stages a put into `batch` without touching the backend; apply with
    /// [`Backend::apply_batch`] for multi-row atomicity.
    pub fn stage_put(&self, batch: &mut Batch, key: &[u8], row: &T) -> Result<()> {
        let value = serde_json::to_vec(row)?;
        batch.set(self.full_key(key), value);
        Ok(())
    }

    /// Stages a removal into `batch`.
    pub fn stage_remove(&self, batch: &mut Batch, key: &[u8]) {
        batch.delete(self.full_key(key));
    }

    /// The backend this table writes through (to apply staged batches).
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct TaskRow {
        id: u64,
        question: String,
        answers: Vec<String>,
    }

    fn table() -> Table<TaskRow> {
        Table::new(Arc::new(MemoryStore::new()), "tasks").unwrap()
    }

    fn row(id: u64) -> TaskRow {
        TaskRow { id, question: format!("is image {id} a cat?"), answers: vec!["Yes".into()] }
    }

    #[test]
    fn put_get_remove() {
        let t = table();
        assert_eq!(t.get(b"1").unwrap(), None);
        t.put(b"1", &row(1)).unwrap();
        assert_eq!(t.get(b"1").unwrap(), Some(row(1)));
        assert!(t.contains(b"1").unwrap());
        t.remove(b"1").unwrap();
        assert_eq!(t.get(b"1").unwrap(), None);
    }

    #[test]
    fn tables_are_isolated_namespaces() {
        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        let tasks: Table<TaskRow> = Table::new(Arc::clone(&backend), "tasks").unwrap();
        let results: Table<TaskRow> = Table::new(Arc::clone(&backend), "results").unwrap();
        tasks.put(b"1", &row(1)).unwrap();
        assert_eq!(results.get(b"1").unwrap(), None);
        assert_eq!(results.len().unwrap(), 0);
        assert_eq!(tasks.len().unwrap(), 1);
    }

    #[test]
    fn name_with_separator_rejected() {
        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        assert!(Table::<TaskRow>::new(backend, "bad/name").is_err());
    }

    #[test]
    fn prefix_scan_on_row_keys() {
        let t = table();
        t.put(b"exp1/row1", &row(1)).unwrap();
        t.put(b"exp1/row2", &row(2)).unwrap();
        t.put(b"exp2/row1", &row(3)).unwrap();
        let hits = t.scan_prefix(b"exp1/").unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, b"exp1/row1".to_vec());
        assert_eq!(t.scan().unwrap().len(), 3);
    }

    #[test]
    fn staged_batch_is_atomic_unit() {
        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        let t: Table<TaskRow> = Table::new(Arc::clone(&backend), "tasks").unwrap();
        let mut batch = Batch::new();
        t.stage_put(&mut batch, b"1", &row(1)).unwrap();
        t.stage_put(&mut batch, b"2", &row(2)).unwrap();
        t.stage_remove(&mut batch, b"1");
        assert_eq!(t.len().unwrap(), 0); // nothing applied yet
        backend.apply_batch(batch).unwrap();
        assert_eq!(t.get(b"1").unwrap(), None);
        assert_eq!(t.get(b"2").unwrap(), Some(row(2)));
    }

    #[test]
    fn put_many_writes_all_rows_in_one_batch() {
        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        let t: Table<TaskRow> = Table::new(Arc::clone(&backend), "tasks").unwrap();
        let rows: Vec<(Vec<u8>, TaskRow)> =
            (0..5u64).map(|i| (format!("k{i}").into_bytes(), row(i))).collect();
        t.put_many(rows.iter().map(|(k, r)| (k.as_slice(), r))).unwrap();
        assert_eq!(t.len().unwrap(), 5);
        assert_eq!(t.get(b"k3").unwrap(), Some(row(3)));
        // Empty input is a no-op.
        t.put_many(std::iter::empty::<(&[u8], &TaskRow)>()).unwrap();
        assert_eq!(t.len().unwrap(), 5);
    }

    #[test]
    fn corrupt_value_surfaces_codec_error() {
        let backend: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        let t: Table<TaskRow> = Table::new(Arc::clone(&backend), "tasks").unwrap();
        backend.set(b"t/tasks/1", b"not json").unwrap();
        assert!(matches!(t.get(b"1"), Err(Error::Codec(_))));
    }

    #[test]
    fn is_empty_reflects_state() {
        let t = table();
        assert!(t.is_empty().unwrap());
        t.put(b"1", &row(1)).unwrap();
        assert!(!t.is_empty().unwrap());
    }
}
