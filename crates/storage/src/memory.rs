//! Volatile [`Backend`] used by tests and benchmarks.
//!
//! Shares the scan/batch semantics of [`DiskStore`](crate::kv::DiskStore)
//! but keeps everything in a `BTreeMap`. Useful for measuring the *cost* of
//! durability (experiment E9) and for exercising CrowdData logic without
//! touching the filesystem.

use crate::batch::{Batch, Op};
use crate::error::Result;
use crate::kv::{scan_map_prefix, Backend, StoreStats};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// In-memory store with the same semantics as [`DiskStore`]
/// minus durability.
///
/// [`DiskStore`]: crate::kv::DiskStore
#[derive(Default)]
pub struct MemoryStore {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    writes: u64,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the full contents out (test helper).
    pub fn dump(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let inner = self.inner.lock();
        inner.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

impl Backend for MemoryStore {
    fn set(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.map.insert(key.to_vec(), value.to_vec());
        inner.writes += 1;
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.inner.lock().map.get(key).cloned())
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.map.remove(key);
        inner.writes += 1;
        Ok(())
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(scan_map_prefix(&self.inner.lock().map, prefix, Vec::clone))
    }

    fn apply_batch(&self, batch: Batch) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writes += 1;
        for op in batch.into_ops() {
            match op {
                Op::Set { key, value } => {
                    inner.map.insert(key, value);
                }
                Op::Delete { key } => {
                    inner.map.remove(&key);
                }
            }
        }
        Ok(())
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.inner.lock().map.contains_key(key))
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            live_keys: inner.map.len(),
            log_bytes: 0,
            segments: 0,
            writes: inner.writes,
            garbage_ratio: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let s = MemoryStore::new();
        s.set(b"k", b"v").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        s.delete(b"k").unwrap();
        assert_eq!(s.get(b"k").unwrap(), None);
    }

    #[test]
    fn scan_prefix_matches_disk_semantics() {
        let s = MemoryStore::new();
        for k in ["a/1", "a/2", "b/1"] {
            s.set(k.as_bytes(), b"").unwrap();
        }
        let hits = s.scan_prefix(b"a/").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn batch_applies_in_order() {
        let s = MemoryStore::new();
        let mut b = Batch::new();
        b.set(b"k".to_vec(), b"1".to_vec());
        b.delete(b"k".to_vec());
        b.set(b"k".to_vec(), b"2".to_vec());
        s.apply_batch(b).unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"2"[..]));
    }

    #[test]
    fn stats_and_dump() {
        let s = MemoryStore::new();
        s.set(b"a", b"1").unwrap();
        s.set(b"b", b"2").unwrap();
        let stats = s.stats();
        assert_eq!(stats.live_keys, 2);
        assert_eq!(stats.log_bytes, 0);
        assert_eq!(s.dump().len(), 2);
    }

    #[test]
    fn flush_is_noop() {
        let s = MemoryStore::new();
        s.flush().unwrap();
    }
}
