//! Error and result types for the storage layer.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong inside the storage layer.
#[derive(Debug)]
pub enum Error {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A record failed its CRC or framing check.
    ///
    /// During recovery this is handled internally (the log is truncated at
    /// the torn tail); surfacing it from any other path indicates real
    /// on-disk corruption beyond the final record.
    Corrupt {
        /// Byte offset of the offending record within the log file.
        offset: u64,
        /// Human-readable description of the framing violation.
        reason: String,
    },
    /// A value could not be (de)serialized by the typed [`Table`] layer.
    ///
    /// [`Table`]: crate::table::Table
    Codec(String),
    /// The store was asked for something structurally impossible, e.g. a
    /// record larger than [`MAX_RECORD_LEN`](crate::record::MAX_RECORD_LEN).
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "storage I/O error: {e}"),
            Error::Corrupt { offset, reason } => {
                write!(f, "corrupt record at offset {offset}: {reason}")
            }
            Error::Codec(msg) => write!(f, "codec error: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Codec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io() {
        let e = Error::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_corrupt_mentions_offset() {
        let e = Error::Corrupt { offset: 77, reason: "bad crc".into() };
        let s = e.to_string();
        assert!(s.contains("77") && s.contains("bad crc"));
    }

    #[test]
    fn source_of_io_error_is_inner() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
        let e = Error::Codec("y".into());
        assert!(e.source().is_none());
    }
}
