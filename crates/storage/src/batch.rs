//! Atomic multi-operation batches.
//!
//! Publishing one crowdsourcing task writes several keys (the task row, the
//! project's task index, counters). If the process dies between those writes
//! the store must not be left half-updated — the paper's rerun-after-crash
//! guarantee assumes each *step* is all-or-nothing. A [`Batch`] is encoded as
//! a single log record, so recovery sees either the whole batch or none of it.
//!
//! ## Wire format
//!
//! ```text
//! batch   := count:u32 op*
//! op      := SET(0x01) klen:u32 key vlen:u32 value
//!          | DEL(0x02) klen:u32 key
//! ```
//!
//! A single `set`/`delete` is stored as a one-op batch, keeping the replay
//! path uniform.

use crate::error::{Error, Result};

/// One mutation inside a [`Batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert or overwrite `key` with `value`.
    Set {
        /// Key to write.
        key: Vec<u8>,
        /// Value to store under `key`.
        value: Vec<u8>,
    },
    /// Remove `key` (a no-op if absent).
    Delete {
        /// Key to remove.
        key: Vec<u8>,
    },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Set { key, .. } | Op::Delete { key } => key,
        }
    }
}

const TAG_SET: u8 = 0x01;
const TAG_DEL: u8 = 0x02;

/// An ordered group of operations applied atomically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    ops: Vec<Op>,
}

impl Batch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Batch { ops: Vec::new() }
    }

    /// Creates a batch expecting roughly `n` operations.
    pub fn with_capacity(n: usize) -> Self {
        Batch { ops: Vec::with_capacity(n) }
    }

    /// Queues an insert/overwrite.
    pub fn set(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(Op::Set { key: key.into(), value: value.into() });
        self
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(Op::Delete { key: key.into() });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations, in application order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Consumes the batch, yielding its operations.
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }

    /// Serializes the batch to the wire format described in the module docs.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(
            4 + self
                .ops
                .iter()
                .map(|op| match op {
                    Op::Set { key, value } => 9 + key.len() + value.len(),
                    Op::Delete { key } => 5 + key.len(),
                })
                .sum::<usize>(),
        );
        buf.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match op {
                Op::Set { key, value } => {
                    buf.push(TAG_SET);
                    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
                    buf.extend_from_slice(key);
                    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    buf.extend_from_slice(value);
                }
                Op::Delete { key } => {
                    buf.push(TAG_DEL);
                    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
                    buf.extend_from_slice(key);
                }
            }
        }
        buf
    }

    /// Parses a batch from the wire format.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut cursor = Cursor { buf, pos: 0 };
        let count = cursor.u32()? as usize;
        let mut ops = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let tag = cursor.u8()?;
            match tag {
                TAG_SET => {
                    let key = cursor.bytes()?;
                    let value = cursor.bytes()?;
                    ops.push(Op::Set { key, value });
                }
                TAG_DEL => {
                    let key = cursor.bytes()?;
                    ops.push(Op::Delete { key });
                }
                other => {
                    return Err(Error::Corrupt {
                        offset: cursor.pos as u64,
                        reason: format!("unknown batch op tag 0x{other:02x}"),
                    })
                }
            }
        }
        if cursor.pos != buf.len() {
            return Err(Error::Corrupt {
                offset: cursor.pos as u64,
                reason: format!("{} trailing bytes after batch", buf.len() - cursor.pos),
            });
        }
        Ok(Batch { ops })
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.short("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let s = self.buf.get(self.pos..end).ok_or_else(|| self.short("u32"))?;
        self.pos = end;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or_else(|| self.short("length overflow"))?;
        let s = self.buf.get(self.pos..end).ok_or_else(|| self.short("bytes body"))?;
        self.pos = end;
        Ok(s.to_vec())
    }

    fn short(&self, what: &str) -> Error {
        Error::Corrupt { offset: self.pos as u64, reason: format!("batch decode: short read at {what}") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        let b = Batch::new();
        assert_eq!(Batch::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn roundtrip_mixed_ops() {
        let mut b = Batch::new();
        b.set(b"k1".to_vec(), b"v1".to_vec());
        b.delete(b"k2".to_vec());
        b.set(b"".to_vec(), b"".to_vec()); // empty key and value are legal
        b.set(b"k3".to_vec(), vec![0u8; 1024]);
        let decoded = Batch::decode(&b.encode()).unwrap();
        assert_eq!(decoded, b);
        assert_eq!(decoded.len(), 4);
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(0x7F);
        assert!(Batch::decode(&buf).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut b = Batch::new();
        b.set(b"k".to_vec(), b"v".to_vec());
        let mut buf = b.encode();
        buf.push(0x00);
        assert!(Batch::decode(&buf).is_err());
    }

    #[test]
    fn decode_rejects_truncation_at_every_point() {
        let mut b = Batch::new();
        b.set(b"key-one".to_vec(), b"value-one".to_vec());
        b.delete(b"key-two".to_vec());
        let buf = b.encode();
        for cut in 0..buf.len() {
            assert!(Batch::decode(&buf[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn builder_is_chainable_and_ordered() {
        let mut b = Batch::new();
        b.set(b"a".to_vec(), b"1".to_vec()).delete(b"a".to_vec()).set(b"a".to_vec(), b"2".to_vec());
        let ops = b.ops();
        assert!(matches!(&ops[0], Op::Set { .. }));
        assert!(matches!(&ops[1], Op::Delete { .. }));
        assert!(matches!(&ops[2], Op::Set { value, .. } if value == b"2"));
    }

    #[test]
    fn op_key_accessor() {
        let s = Op::Set { key: b"k".to_vec(), value: b"v".to_vec() };
        let d = Op::Delete { key: b"q".to_vec() };
        assert_eq!(s.key(), b"k");
        assert_eq!(d.key(), b"q");
    }
}
