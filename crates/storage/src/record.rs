//! Record framing for the append-only log.
//!
//! Every record on disk is laid out as:
//!
//! ```text
//! +-------+-----------+-----------+-------------+
//! | magic | len (u32) | crc (u32) | payload ... |
//! +-------+-----------+-----------+-------------+
//!   1 B      4 B LE       4 B LE      len bytes
//! ```
//!
//! The CRC covers only the payload. A record whose magic byte, length,
//! or CRC does not check out marks the *torn tail* of the log: recovery
//! keeps everything before it and truncates the rest. This is what lets a
//! Reprowd experiment be killed at any instant and rerun safely.

use crate::crc::crc32;
use crate::error::{Error, Result};
use std::io::Read;

/// First byte of every record; guards against replaying a file that is not a
/// Reprowd log (or an offset that landed mid-payload).
pub const MAGIC: u8 = 0xDB;

/// Header bytes preceding every payload: magic + len + crc.
pub const HEADER_LEN: usize = 1 + 4 + 4;

/// Upper bound on a single record payload (64 MiB). Protects recovery from
/// allocating absurd buffers when the length field itself is corrupt.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// Serializes `payload` into the on-disk frame.
pub fn encode(payload: &[u8]) -> Result<Vec<u8>> {
    if payload.len() > MAX_RECORD_LEN {
        return Err(Error::InvalidArgument(format!(
            "record payload of {} bytes exceeds MAX_RECORD_LEN ({MAX_RECORD_LEN})",
            payload.len()
        )));
    }
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.push(MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Outcome of attempting to read one record from a stream.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-valid record.
    Record(Vec<u8>),
    /// Clean end of file exactly on a record boundary.
    Eof,
    /// The stream ends in a torn or corrupt record starting at this offset;
    /// the log should be truncated to `offset`.
    Torn {
        /// Byte offset the offending record starts at.
        offset: u64,
        /// Human-readable description of the framing violation.
        reason: String,
    },
}

/// Reads a single record starting at `offset` (used for error reporting).
///
/// Never returns `Err` for tail corruption — that is a normal crash artifact
/// reported as [`ReadOutcome::Torn`]. `Err` is reserved for real I/O
/// failures.
pub fn read_record<R: Read>(reader: &mut R, offset: u64) -> Result<ReadOutcome> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(reader, &mut header)? {
        FillResult::Empty => return Ok(ReadOutcome::Eof),
        FillResult::Partial(n) => {
            return Ok(ReadOutcome::Torn {
                offset,
                reason: format!("partial header: {n} of {HEADER_LEN} bytes"),
            })
        }
        FillResult::Full => {}
    }
    if header[0] != MAGIC {
        return Ok(ReadOutcome::Torn {
            offset,
            reason: format!("bad magic byte 0x{:02x}", header[0]),
        });
    }
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    let crc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    if len > MAX_RECORD_LEN {
        return Ok(ReadOutcome::Torn {
            offset,
            reason: format!("length {len} exceeds MAX_RECORD_LEN"),
        });
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(reader, &mut payload)? {
        FillResult::Full => {}
        FillResult::Empty | FillResult::Partial(_) => {
            return Ok(ReadOutcome::Torn { offset, reason: format!("truncated payload (wanted {len} bytes)") })
        }
    }
    let actual = crc32(&payload);
    if actual != crc {
        return Ok(ReadOutcome::Torn {
            offset,
            reason: format!("crc mismatch: stored 0x{crc:08x}, computed 0x{actual:08x}"),
        });
    }
    Ok(ReadOutcome::Record(payload))
}

enum FillResult {
    Full,
    Empty,
    Partial(usize),
}

/// Like `read_exact` but distinguishes "no bytes at all" (clean EOF) from
/// "some bytes then EOF" (torn write).
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<FillResult> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 { FillResult::Empty } else { FillResult::Partial(filled) })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(FillResult::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: &[u8]) -> Vec<u8> {
        let framed = encode(payload).unwrap();
        let mut cur = Cursor::new(framed);
        match read_record(&mut cur, 0).unwrap() {
            ReadOutcome::Record(p) => p,
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_various_sizes() {
        for size in [0usize, 1, 7, 255, 4096] {
            let payload: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
            assert_eq!(roundtrip(&payload), payload);
        }
    }

    #[test]
    fn eof_on_empty_stream() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_record(&mut cur, 0).unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn torn_header_detected() {
        let framed = encode(b"hello").unwrap();
        for cut in 1..HEADER_LEN {
            let mut cur = Cursor::new(framed[..cut].to_vec());
            match read_record(&mut cur, 0).unwrap() {
                ReadOutcome::Torn { offset: 0, .. } => {}
                other => panic!("cut={cut}: expected torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn torn_payload_detected() {
        let framed = encode(b"hello world").unwrap();
        let cut = HEADER_LEN + 3;
        let mut cur = Cursor::new(framed[..cut].to_vec());
        assert!(matches!(read_record(&mut cur, 0).unwrap(), ReadOutcome::Torn { .. }));
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut framed = encode(b"hello world").unwrap();
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        let mut cur = Cursor::new(framed);
        match read_record(&mut cur, 0).unwrap() {
            ReadOutcome::Torn { reason, .. } => assert!(reason.contains("crc")),
            other => panic!("expected torn, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut framed = encode(b"x").unwrap();
        framed[0] = 0x00;
        let mut cur = Cursor::new(framed);
        match read_record(&mut cur, 42).unwrap() {
            ReadOutcome::Torn { offset, reason } => {
                assert_eq!(offset, 42);
                assert!(reason.contains("magic"));
            }
            other => panic!("expected torn, got {other:?}"),
        }
    }

    #[test]
    fn insane_length_field_rejected_without_alloc() {
        // Craft a header claiming a payload of u32::MAX bytes.
        let mut framed = vec![MAGIC];
        framed.extend_from_slice(&u32::MAX.to_le_bytes());
        framed.extend_from_slice(&0u32.to_le_bytes());
        let mut cur = Cursor::new(framed);
        match read_record(&mut cur, 0).unwrap() {
            ReadOutcome::Torn { reason, .. } => assert!(reason.contains("MAX_RECORD_LEN")),
            other => panic!("expected torn, got {other:?}"),
        }
    }

    #[test]
    fn oversized_encode_rejected() {
        // Don't actually allocate 64 MiB; rely on the length check.
        let payload = vec![0u8; MAX_RECORD_LEN + 1];
        assert!(encode(&payload).is_err());
    }

    #[test]
    fn sequential_records_stream() {
        let mut stream = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; i + 1]).collect();
        for p in &payloads {
            stream.extend_from_slice(&encode(p).unwrap());
        }
        let mut cur = Cursor::new(stream);
        for expected in &payloads {
            match read_record(&mut cur, 0).unwrap() {
                ReadOutcome::Record(p) => assert_eq!(&p, expected),
                other => panic!("expected record, got {other:?}"),
            }
        }
        assert!(matches!(read_record(&mut cur, 0).unwrap(), ReadOutcome::Eof));
    }
}
