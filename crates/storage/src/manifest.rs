//! The segment manifest: the small file that makes a segmented database
//! one logical unit.
//!
//! A [`DiskStore`](crate::kv::DiskStore) whose log has been rotated at
//! least once keeps its sealed segments as sibling files of the base path
//! (`<db>.000001.seg`, `<db>.000002.seg`, …). The manifest —
//! `<db>.manifest` — records, in **replay order**, which segment files
//! belong to the database, plus the monotonically increasing sequence
//! counter used to name the next segment. The base path itself is always
//! the *active* segment and is deliberately **not** listed: a database
//! that has never rotated therefore has no manifest at all and remains a
//! single plain log file, byte-compatible with the pre-segmented format.
//!
//! ## Crash safety
//!
//! The manifest is replaced atomically: the new content is written to
//! `<db>.manifest.tmp`, fsynced, renamed over `<db>.manifest`, and the
//! parent directory is fsynced so the rename itself survives power loss.
//! Readers therefore always observe either the old or the new manifest,
//! never a mix. The payload is framed with the same CRC record format as
//! log records ([`crate::record`]), so a damaged manifest is detected
//! rather than replayed.
//!
//! ## Replay-order invariant
//!
//! For any key, a record in a later manifest position supersedes every
//! record in an earlier position. Rotation appends the just-sealed
//! segment at the end; compaction replaces a *prefix* of the list with
//! the segments it rewrote. Both preserve the invariant, which is what
//! lets compaction drop delete tombstones entirely (see
//! [`DiskStore::compact`](crate::kv::DiskStore::compact)).

use crate::error::{Error, Result};
use crate::record::{encode, read_record, ReadOutcome};
use std::fs::{self, File, OpenOptions};
use std::io::{Cursor, Write};
use std::path::{Path, PathBuf};

/// On-disk manifest format version.
const VERSION: u8 = 1;

/// The parsed contents of a `<db>.manifest` file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Next value of the segment file-name sequence counter. Strictly
    /// greater than the sequence number embedded in any file the database
    /// has ever created, so names are never reused (a crash can leave
    /// orphaned segment files behind; the sweep on open relies on their
    /// names never colliding with live ones).
    pub next_seq: u64,
    /// File names (not paths — segments always live next to the base
    /// file) of the sealed segments, in replay order.
    pub sealed: Vec<String>,
}

/// Returns the manifest path for a database base path
/// (`<db>.manifest`, appended — not substituted — so `db.rwlog` maps to
/// `db.rwlog.manifest`).
pub fn manifest_path(base: &Path) -> PathBuf {
    sibling(base, "manifest")
}

/// Returns `<base>.<suffix>` by appending to the file name (unlike
/// `Path::with_extension`, which would replace `.rwlog`).
pub fn sibling(base: &Path, suffix: &str) -> PathBuf {
    let mut name = base.file_name().unwrap_or_default().to_os_string();
    name.push(".");
    name.push(suffix);
    base.with_file_name(name)
}

impl Manifest {
    /// Loads the manifest at `path`, returning `None` if the file does not
    /// exist (a single-file database) and an error if it exists but does
    /// not parse — unlike a torn log tail, a damaged manifest is not a
    /// normal crash artifact and must not be silently ignored.
    pub fn load(path: &Path) -> Result<Option<Manifest>> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut cur = Cursor::new(bytes);
        let payload = match read_record(&mut cur, 0)? {
            ReadOutcome::Record(p) => p,
            ReadOutcome::Eof | ReadOutcome::Torn { .. } => {
                return Err(Error::Corrupt {
                    offset: 0,
                    reason: format!("manifest {} is not a valid record", path.display()),
                })
            }
        };
        Manifest::decode(&payload)
    }

    /// Atomically replaces the manifest at `path` (temp file + rename +
    /// parent-directory fsync).
    pub fn store(&self, path: &Path) -> Result<()> {
        let tmp = sibling(path, "tmp"); // "<db>.manifest.tmp"
        {
            let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            f.write_all(&encode(&self.encode())?)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        fsync_parent_dir(path)?;
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(
            1 + 8 + 4 + self.sealed.iter().map(|n| 4 + n.len()).sum::<usize>(),
        );
        buf.push(VERSION);
        buf.extend_from_slice(&self.next_seq.to_le_bytes());
        buf.extend_from_slice(&(self.sealed.len() as u32).to_le_bytes());
        for name in &self.sealed {
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        buf
    }

    fn decode(buf: &[u8]) -> Result<Option<Manifest>> {
        let corrupt = |reason: &str| Error::Corrupt { offset: 0, reason: format!("manifest: {reason}") };
        if buf.len() < 13 {
            return Err(corrupt("payload too short"));
        }
        if buf[0] != VERSION {
            return Err(corrupt(&format!("unknown version {}", buf[0])));
        }
        let next_seq = u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes")) as usize;
        let mut sealed = Vec::with_capacity(count.min(1 << 16));
        let mut pos: usize = 13;
        for _ in 0..count {
            let len_end = pos.checked_add(4).ok_or_else(|| corrupt("name length overflow"))?;
            let len = u32::from_le_bytes(
                buf.get(pos..len_end).ok_or_else(|| corrupt("short name length"))?.try_into().expect("4 bytes"),
            ) as usize;
            let end = len_end.checked_add(len).ok_or_else(|| corrupt("name overflow"))?;
            let name = buf.get(len_end..end).ok_or_else(|| corrupt("short name body"))?;
            sealed.push(
                String::from_utf8(name.to_vec()).map_err(|_| corrupt("non-utf8 segment name"))?,
            );
            pos = end;
        }
        if pos != buf.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Some(Manifest { next_seq, sealed }))
    }
}

/// The directory containing `path` (`.` for bare relative file names).
pub(crate) fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// fsyncs the directory containing `child`, making a just-completed
/// create/rename/delete of `child` itself durable. Without this a power
/// failure can undo a "completed" rename even though the file's *contents*
/// were synced — the directory entry is its own piece of mutable state.
pub fn fsync_parent_dir(child: &Path) -> Result<()> {
    File::open(parent_dir(child))?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("reprowd-manifest-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmp("m1.manifest");
        let m = Manifest {
            next_seq: 7,
            sealed: vec!["db.000001.seg".into(), "db.000004.seg".into()],
        };
        m.store(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), Some(m));
    }

    #[test]
    fn missing_is_none() {
        assert_eq!(Manifest::load(&tmp("absent.manifest")).unwrap(), None);
    }

    #[test]
    fn empty_sealed_list_roundtrips() {
        let path = tmp("m2.manifest");
        let m = Manifest { next_seq: 1, sealed: vec![] };
        m.store(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), Some(m));
    }

    #[test]
    fn store_replaces_atomically() {
        let path = tmp("m3.manifest");
        Manifest { next_seq: 1, sealed: vec!["a.seg".into()] }.store(&path).unwrap();
        Manifest { next_seq: 2, sealed: vec!["b.seg".into()] }.store(&path).unwrap();
        let m = Manifest::load(&path).unwrap().unwrap();
        assert_eq!(m.sealed, vec!["b.seg".to_string()]);
        // No temp file left behind.
        assert!(!sibling(&path, "tmp").exists());
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_a_reset() {
        let path = tmp("m4.manifest");
        fs::write(&path, b"not a manifest").unwrap();
        assert!(Manifest::load(&path).is_err());
    }

    #[test]
    fn sibling_appends_not_replaces() {
        let p = PathBuf::from("/x/db.rwlog");
        assert_eq!(manifest_path(&p), PathBuf::from("/x/db.rwlog.manifest"));
    }
}
