//! The key-value store: [`Backend`] trait and the durable [`DiskStore`].
//!
//! `DiskStore` keeps the full live key set in memory (a `BTreeMap`, so
//! prefix scans are ordered) and makes every mutation durable by appending a
//! one-record [`Batch`] to a **segmented log** (see [`crate::segment`]):
//! writes go to the active segment at the base path, which is sealed into a
//! numbered `.seg` sibling once it reaches
//! [`SegmentPolicy::max_segment_bytes`]; a CRC-framed manifest
//! ([`crate::manifest`]) fixes the replay order. Compaction rewrites only
//! garbage-heavy sealed segments and never holds the store lock for the
//! rewrite, so multi-GB answer databases neither grow without bound nor
//! stall readers behind a full-database rewrite. A database that never
//! rotates remains one plain log file — the format the paper's "share the
//! database file" workflow (and [`DiskStore::snapshot`]) emits.

use crate::batch::{Batch, Op};
use crate::error::{Error, Result};
use crate::log::LogFile;
use crate::manifest::{fsync_parent_dir, manifest_path, parent_dir, Manifest};
use crate::segment::{is_sweepable, segment_file_name, SealedSegment, SegStats, SegmentPolicy};
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};

/// When the log is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync automatically; the OS flushes when it pleases. Fastest,
    /// used for benchmarks and tests. Data still survives *process* crashes
    /// (the file is written), just not OS/power failures.
    Never,
    /// fsync after every logical write (single op or batch). Slowest,
    /// survives power failure.
    Always,
    /// fsync after every `n` logical writes.
    EveryN(u32),
}

/// What recovery found when opening a [`DiskStore`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Log records (batches) replayed, across all segments.
    pub records: u64,
    /// Segment files replayed (sealed segments plus the active one).
    pub segments: usize,
    /// Bytes of torn tail discarded from the **active** segment (or from a
    /// segment this open renamed to complete an interrupted rotation —
    /// the two files where a torn tail is a normal crash artifact;
    /// corruption in any other sealed segment fails the open instead).
    pub truncated_bytes: u64,
    /// Why a tail was discarded, if one was.
    pub truncate_reason: Option<String>,
    /// Live keys after replay.
    pub live_keys: usize,
}

/// Point-in-time statistics about a store.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Live keys currently visible.
    pub live_keys: usize,
    /// Bytes occupied by the log on disk, across all segments (0 for
    /// memory stores).
    pub log_bytes: u64,
    /// Segment files (sealed + active; 0 for memory stores).
    pub segments: usize,
    /// Total logical write operations applied since open.
    pub writes: u64,
    /// Fraction of logged operations that are dead — superseded,
    /// deleted, or delete tombstones — in [0, 1]. Only meaningful for
    /// disk stores.
    pub garbage_ratio: f64,
}

/// The storage abstraction consumed by the rest of Reprowd.
///
/// Implementations must be thread-safe: `CrowdContext` is shared across
/// operator pipelines.
pub trait Backend: Send + Sync {
    /// Inserts or overwrites one key.
    fn set(&self, key: &[u8], value: &[u8]) -> Result<()>;
    /// Fetches a key's current value.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;
    /// Removes a key. Removing an absent key is not an error.
    fn delete(&self, key: &[u8]) -> Result<()>;
    /// Returns all `(key, value)` pairs whose key starts with `prefix`,
    /// in ascending key order.
    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
    /// Applies all operations in `batch` atomically.
    fn apply_batch(&self, batch: Batch) -> Result<()>;
    /// Returns true if `key` is present (default: via `get`).
    fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }
    /// Forces buffered writes to stable storage.
    fn flush(&self) -> Result<()>;
    /// Current statistics.
    fn stats(&self) -> StoreStats;
}

/// A live map entry: the value plus the session-local id of the segment
/// holding its current on-disk record (what compaction uses to tell live
/// records from garbage).
struct Slot {
    value: Vec<u8>,
    seg: u64,
}

struct DiskInner {
    map: BTreeMap<Vec<u8>, Slot>,
    /// The segment currently accepting appends (always at the base path).
    active: LogFile,
    /// Session-local id of the active segment.
    active_id: u64,
    /// Sealed segments in replay order (mirrors the manifest).
    sealed: Vec<SealedSegment>,
    /// Per-segment op accounting, keyed by session-local segment id.
    seg_stats: HashMap<u64, SegStats>,
    /// Persisted file-name sequence counter (see [`Manifest::next_seq`]).
    next_seq: u64,
    /// Session-local segment id allocator.
    next_mem_id: u64,
    writes_since_sync: u32,
    writes_total: u64,
}

impl DiskInner {
    fn total_bytes(&self) -> u64 {
        self.active.len() + self.sealed.iter().map(|s| s.bytes).sum::<u64>()
    }

    fn garbage_ratio_over(&self, segs: impl Iterator<Item = u64>) -> f64 {
        let (mut ops, mut live) = (0u64, 0u64);
        for id in segs {
            if let Some(st) = self.seg_stats.get(&id) {
                ops += st.ops;
                live += st.live_ops;
            }
        }
        if ops == 0 {
            0.0
        } else {
            1.0 - live as f64 / ops as f64
        }
    }
}

/// Durable [`Backend`] backed by a segmented append-only log.
///
/// See the [crate docs](crate) for the durability guarantees and
/// [`crate::segment`] for the on-disk layout. Until the first rotation the
/// whole database is a single plain log file at the base path, fully
/// compatible with databases written before segmentation existed — a
/// legacy single-file log simply opens as the (large) active segment and
/// is split into sealed segments by the first rotation or compaction.
pub struct DiskStore {
    inner: Mutex<DiskInner>,
    /// Serializes compactions; held across the (lock-free) rewrite so the
    /// sealed prefix cannot change under a second compactor.
    compact_lock: Mutex<()>,
    policy: SyncPolicy,
    segment_policy: SegmentPolicy,
    path: PathBuf,
    recovery: RecoveryReport,
}

impl DiskStore {
    /// Opens (creating if needed) the store at `path` with the default
    /// [`SegmentPolicy`], replaying the log and truncating any torn tail.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self> {
        DiskStore::open_with(path, policy, SegmentPolicy::default())
    }

    /// Opens (creating if needed) the store at `path`.
    ///
    /// Recovery, in order: a rotation interrupted between the manifest
    /// write and the rename is completed; orphaned segment/temp files not
    /// claimed by the manifest are swept; every manifest-listed segment is
    /// replayed in order and then the active segment. Only the active
    /// segment (and a just-completed-rotation segment, which *was* the
    /// active one at crash time) truncates a torn tail — that is the
    /// normal crash artifact. Damage in any other sealed segment is
    /// mid-history corruption and refuses the open (see
    /// [`crate::log::replay_sealed`]).
    pub fn open_with(
        path: impl AsRef<Path>,
        policy: SyncPolicy,
        segment_policy: SegmentPolicy,
    ) -> Result<Self> {
        segment_policy.validate()?;
        let path = path.as_ref().to_path_buf();
        let base_name = base_name(&path)?;
        let dir = parent_dir(&path);
        let manifest = Manifest::load(&manifest_path(&path))?;

        // Complete a rotation the crash interrupted: the manifest names the
        // sealed segment first (intent), then the base file is renamed onto
        // that name. If the last listed segment is missing but the base
        // file exists, the rename never happened — finish it now. The
        // completed segment was the *active* file when the crash hit, so —
        // unlike a true sealed segment — it may legitimately end in a torn
        // tail (e.g. a failed rotation rolled back in memory but not on
        // disk, then unsynced appends continued); it gets the active
        // segment's lenient truncate-the-tail replay below.
        let mut completed_rotation: Option<String> = None;
        if let Some(m) = &manifest {
            if let Some(last) = m.sealed.last() {
                let seg_path = dir.join(last);
                if !seg_path.exists() {
                    if path.exists() {
                        std::fs::rename(&path, &seg_path)?;
                        fsync_parent_dir(&path)?;
                        completed_rotation = Some(last.clone());
                    } else {
                        return Err(Error::Corrupt {
                            offset: 0,
                            reason: format!(
                                "manifest lists segment {last} but neither it nor the active file exists"
                            ),
                        });
                    }
                }
            }
        }

        // Sweep files a crash orphaned: segments written but never
        // committed to the manifest, pre-segmentation `.compact` temps,
        // and manifest temp files.
        let claimed: HashSet<&str> = manifest
            .as_ref()
            .map(|m| m.sealed.iter().map(String::as_str).collect())
            .unwrap_or_default();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if is_sweepable(&base_name, name) && !claimed.contains(name) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }

        // Replay: sealed segments in manifest order, then the active file.
        let mut map = BTreeMap::new();
        let mut seg_stats = HashMap::new();
        let mut sealed = Vec::new();
        let mut recovery = RecoveryReport::default();
        let mut next_mem_id: u64 = 0;
        if let Some(m) = &manifest {
            for name in &m.sealed {
                let seg_path = dir.join(name);
                if !seg_path.exists() {
                    return Err(Error::Corrupt {
                        offset: 0,
                        reason: format!("manifest lists segment {name} but it does not exist"),
                    });
                }
                let id = next_mem_id;
                next_mem_id += 1;
                // Sealed segments were fully fsynced before the manifest
                // referenced them: corruption here is damage mid-history,
                // not a crash artifact, and refuses the open (see
                // `replay_sealed`). Two files get the lenient
                // truncate-the-tail treatment instead: the active segment,
                // and a segment this open just renamed to complete an
                // interrupted rotation — that file was the active one when
                // the crash hit, so a torn tail there is crash-normal.
                let (records, bytes) = if completed_rotation.as_deref() == Some(name.as_str()) {
                    let (log, report) = LogFile::open(&seg_path, |payload| {
                        replay_record(&mut map, &mut seg_stats, id, payload)
                    })?;
                    recovery.truncated_bytes += report.truncated_bytes;
                    if recovery.truncate_reason.is_none() {
                        recovery.truncate_reason =
                            report.truncate_reason.map(|r| format!("{name}: {r}"));
                    }
                    (report.records, log.len())
                } else {
                    crate::log::replay_sealed(&seg_path, |payload| {
                        replay_record(&mut map, &mut seg_stats, id, payload)
                    })?
                };
                recovery.records += records;
                recovery.segments += 1;
                sealed.push(SealedSegment { id, name: name.clone(), bytes });
            }
        }
        let active_id = next_mem_id;
        next_mem_id += 1;
        let (active, report) = LogFile::open(&path, |payload| {
            replay_record(&mut map, &mut seg_stats, active_id, payload)
        })?;
        recovery.records += report.records;
        recovery.segments += 1;
        recovery.truncated_bytes += report.truncated_bytes;
        if recovery.truncate_reason.is_none() {
            recovery.truncate_reason = report.truncate_reason;
        }
        recovery.live_keys = map.len();

        let next_seq = manifest.map(|m| m.next_seq).unwrap_or(1);
        Ok(DiskStore {
            inner: Mutex::new(DiskInner {
                map,
                active,
                active_id,
                sealed,
                seg_stats,
                next_seq,
                next_mem_id,
                writes_since_sync: 0,
                writes_total: 0,
            }),
            compact_lock: Mutex::new(()),
            policy,
            segment_policy,
            path,
            recovery,
        })
    }

    /// Removes the database at `path` entirely: the base file, its
    /// manifest, every manifest-listed segment, and any sweepable debris
    /// (orphaned `.seg` / `.compact` / `.manifest.tmp` files). A database
    /// is a *family* of files once it has rotated, so `remove_file` on the
    /// base path alone would leave the manifest and segments behind — and
    /// a later open at the same path would resurrect them. A no-op if
    /// nothing exists; never touches unrelated files (`db.rwlog.bak` etc.).
    pub fn destroy(path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let base = base_name(path)?;
        let dir = parent_dir(path);
        if let Ok(Some(m)) = Manifest::load(&manifest_path(path)) {
            for name in &m.sealed {
                let _ = std::fs::remove_file(dir.join(name));
            }
        }
        let _ = std::fs::remove_file(manifest_path(path));
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_str().is_some_and(|n| is_sweepable(&base, n)) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// What recovery observed when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Base path of the database: the active segment (and, before the
    /// first rotation, the entire database).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The rotation/compaction policy this store was opened with.
    pub fn segment_policy(&self) -> SegmentPolicy {
        self.segment_policy
    }

    /// Every file the database currently consists of, in replay order
    /// (sealed segments, then the active segment). The manifest, when one
    /// exists, is `<path>.manifest`.
    pub fn segment_files(&self) -> Vec<PathBuf> {
        let inner = self.inner.lock();
        let dir = parent_dir(&self.path);
        let mut files: Vec<PathBuf> = inner.sealed.iter().map(|s| dir.join(&s.name)).collect();
        files.push(self.path.clone());
        files
    }

    /// Rewrites garbage-heavy sealed segments so the log holds (close to)
    /// only the live key set, reclaiming space held by overwritten or
    /// deleted records. Returns bytes saved.
    ///
    /// The store lock is held only to seal the active segment, to pick
    /// victims, and finally to swap the manifest and re-tag the in-memory
    /// index — **never across the rewrite itself**, so concurrent `get` /
    /// `scan_prefix` / writes proceed while the bulk of the work runs.
    /// Victims are always a *prefix* of the replay order (every segment up
    /// to the last one whose garbage exceeds the threshold), which is what
    /// makes it safe to drop delete tombstones: a key deleted within the
    /// prefix cannot have a surviving older record outside it. A crash at
    /// any point leaves either the old or the new manifest; freshly
    /// written but uncommitted segments are swept on the next open.
    pub fn compact(&self) -> Result<u64> {
        let guard = self.compact_lock.lock();
        self.compact_guarded(guard, 0.0)
    }

    fn compact_guarded(&self, _guard: MutexGuard<'_, ()>, threshold: f64) -> Result<u64> {
        let dir = parent_dir(&self.path);
        // Phase 1 (brief lock): seal the active segment so its records are
        // eligible, then pick the victim prefix.
        let victims = {
            let mut inner = self.inner.lock();
            // Seal the active segment only when it is itself worth
            // rewriting: compacting an all-live database must be a no-op,
            // not a forced migration of a small single-file database into
            // the multi-file layout.
            let active_garbage = inner
                .seg_stats
                .get(&inner.active_id)
                .copied()
                .unwrap_or_default()
                .garbage_ratio();
            if !inner.active.is_empty() && active_garbage > threshold {
                self.rotate_locked(&mut inner)?;
            }
            let mut last = None;
            for (i, seg) in inner.sealed.iter().enumerate() {
                let garbage = inner
                    .seg_stats
                    .get(&seg.id)
                    .copied()
                    .unwrap_or_default()
                    .garbage_ratio();
                if garbage > threshold {
                    last = Some(i);
                }
            }
            // Rewriting a single fully-live segment would only rename
            // bytes; rewriting the prefix *ending* at a garbage-heavy
            // segment reclaims its dead records and merges small segments.
            match last {
                Some(i) => inner.sealed[..=i].to_vec(),
                None => Vec::new(),
            }
        };
        if victims.is_empty() {
            return Ok(0);
        }

        // Phase 2 (no store lock): replay the victim files into their
        // combined prefix state — deletes inside the prefix apply here,
        // which is why no tombstones need rewriting — then stream that
        // state into fresh segment files. Sealed segments are immutable,
        // so this races with nothing; concurrent writes land in the
        // active segment and later sealed segments, which replay *after*
        // the rewritten prefix and therefore supersede it per key.
        let victim_ids: HashSet<u64> = victims.iter().map(|v| v.id).collect();
        let mut prefix_state: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for victim in &victims {
            crate::log::replay_sealed(&dir.join(&victim.name), |payload| {
                let batch = Batch::decode(payload)?;
                for op in batch.into_ops() {
                    match op {
                        Op::Set { key, value } => {
                            prefix_state.insert(key, value);
                        }
                        Op::Delete { key } => {
                            prefix_state.remove(&key);
                        }
                    }
                }
                Ok(())
            })?;
        }
        // Drop entries that a *later* segment has already superseded or
        // deleted (their live record is not inside the victims): copying
        // them forward would write garbage the next compaction copies
        // again, so the log would never converge. Checked against the
        // live map in short bursts to keep readers unblocked.
        {
            let mut filtered = BTreeMap::new();
            let mut entries = prefix_state.into_iter();
            'filter: loop {
                let inner = self.inner.lock();
                for _ in 0..4096 {
                    let Some((key, value)) = entries.next() else { break 'filter };
                    let live_here =
                        inner.map.get(&key).is_some_and(|slot| victim_ids.contains(&slot.seg));
                    if live_here {
                        filtered.insert(key, value);
                    }
                }
            }
            prefix_state = filtered;
        }
        let outputs = self.write_compacted_segments(&dir, prefix_state)?;
        // Bytes saved are measured against the rewritten prefix only —
        // concurrent writes appending to the active segment are not
        // compaction's business.
        let victim_bytes: u64 = victims.iter().map(|v| v.bytes).sum();
        let output_bytes: u64 = outputs.iter().map(|o| o.bytes).sum();

        // The live filter above trusted the in-memory map, which may
        // reflect *unsynced* active-segment writes: a key overwritten in
        // the (un-fsynced) active was dropped from the outputs because
        // its old victim copy looked superseded. Before the victims
        // become unreferenced, the active segment must be durable —
        // otherwise a power loss could tear off the new value after the
        // old one was already discarded, losing a previously durable key
        // entirely. Synced via a cloned fd so no store lock is held for
        // the fsync (writes racing past the sync are safe: they happened
        // after the filter, so their keys' old copies were *kept* in the
        // outputs).
        let active_handle = self.inner.lock().active.sync_handle()?;
        active_handle.sync_data()?;
        drop(active_handle);

        // Phase 3 (brief lock): splice the rewritten prefix into the
        // manifest, re-tag live map entries to their new home segments,
        // and swap atomically. This is the only moment readers can stall.
        {
            let mut inner = self.inner.lock();
            debug_assert!(
                inner.sealed.iter().zip(&victims).all(|(a, b)| a.name == b.name),
                "victims must still be the sealed prefix"
            );
            let keep = inner.sealed.split_off(victims.len());
            let mut new_sealed = Vec::with_capacity(outputs.len() + keep.len());
            for out in outputs {
                let id = inner.next_mem_id;
                inner.next_mem_id += 1;
                // Outputs were streamed in key order, so each covers a
                // contiguous key range; every live-in-victims entry inside
                // it is exactly the set of entries the output holds
                // (writes during the rewrite moved their keys' homes to
                // the active segment, which the victim check skips).
                let mut live_ops = 0u64;
                for (_, slot) in inner.map.range_mut(out.first..=out.last) {
                    if victim_ids.contains(&slot.seg) {
                        slot.seg = id;
                        live_ops += 1;
                    }
                }
                inner.seg_stats.insert(id, SegStats { ops: out.ops, live_ops });
                new_sealed.push(SealedSegment { id, name: out.name, bytes: out.bytes });
            }
            new_sealed.extend(keep);
            inner.sealed = new_sealed;
            for id in &victim_ids {
                inner.seg_stats.remove(id);
            }
            self.write_manifest_locked(&mut inner)?;
        }
        // The old prefix is no longer referenced; its files can go
        // without any lock held.
        for victim in &victims {
            let _ = std::fs::remove_file(dir.join(&victim.name));
        }
        fsync_parent_dir(&self.path)?;
        Ok(victim_bytes.saturating_sub(output_bytes))
    }

    /// Streams `state` into as many fresh sealed-segment files as
    /// `max_segment_bytes` requires, fsyncing each (and the directory)
    /// before returning — they must be durable before any manifest
    /// references them.
    fn write_compacted_segments(
        &self,
        dir: &Path,
        state: BTreeMap<Vec<u8>, Vec<u8>>,
    ) -> Result<Vec<CompactedSegment>> {
        /// Ops per record: keeps typical records small while amortizing
        /// framing overhead.
        const OPS_PER_RECORD: usize = 256;
        /// Payload bytes after which a record is cut early.
        const RECORD_BYTES: usize = 1 << 20;
        /// Hard payload ceiling for one record: comfortably under
        /// `MAX_RECORD_LEN`, leaving headroom for per-op framing. A
        /// pending record is flushed *before* an entry that would push it
        /// past this, so a near-limit value gets a record of its own and
        /// `record::encode` can never fail mid-compaction.
        const RECORD_HARD_CAP: usize = crate::record::MAX_RECORD_LEN - (1 << 16);

        let mut writer = OutputWriter {
            store: self,
            dir,
            base: base_name(&self.path)?,
            outputs: Vec::new(),
            current: None,
        };
        let mut batch = Batch::new();
        let mut batch_bytes = 0usize;
        let mut batch_first: Vec<u8> = Vec::new();
        let mut batch_last: Vec<u8> = Vec::new();
        for (key, value) in state {
            let entry_bytes = key.len() + value.len();
            if !batch.is_empty()
                && (batch.len() >= OPS_PER_RECORD
                    || batch_bytes >= RECORD_BYTES
                    || batch_bytes + entry_bytes > RECORD_HARD_CAP)
            {
                writer.append_record(std::mem::take(&mut batch), &batch_first, &batch_last)?;
                batch_bytes = 0;
            }
            if batch.is_empty() {
                batch_first = key.clone();
            }
            batch_last = key.clone();
            batch_bytes += entry_bytes;
            batch.set(key, value);
        }
        if !batch.is_empty() {
            writer.append_record(batch, &batch_first, &batch_last)?;
        }
        let outputs = writer.finish()?;
        if !outputs.is_empty() {
            fsync_parent_dir(&self.path)?;
        }
        Ok(outputs)
    }

    /// Seals the active segment: manifest first (intent), then rename the
    /// base file onto the sealed name, then start a fresh active segment.
    /// `open_with` completes the rename if a crash lands between the two.
    fn rotate_locked(&self, inner: &mut DiskInner) -> Result<()> {
        inner.active.sync()?;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let name = segment_file_name(&base_name(&self.path)?, seq);
        inner.sealed.push(SealedSegment {
            id: inner.active_id,
            name: name.clone(),
            bytes: inner.active.len(),
        });
        let seg_path = parent_dir(&self.path).join(&name);
        let renamed = self
            .write_manifest_locked(inner)
            .and_then(|()| std::fs::rename(&self.path, &seg_path).map_err(Error::from));
        // The rename moved the base file, but the fresh active segment is
        // not in place yet; any failure before it is must not leave the
        // store appending (through the still-open fd) into a file the
        // manifest now calls sealed — compaction relies on sealed
        // segments being immutable.
        let active = renamed.and_then(|()| {
            fsync_parent_dir(&self.path)?;
            let (active, _) = LogFile::open(&self.path, |_| Ok(()))?;
            fsync_parent_dir(&self.path)?;
            Ok(active)
        });
        let active = match active {
            Ok(active) => active,
            Err(e) => {
                // Roll back so a *transient* failure cannot poison later
                // rotations: un-rename the base file (a no-op if the
                // rename never happened) and pop the phantom entry, so
                // the next rotation writes a manifest without it. If the
                // on-disk manifest keeps the entry (rollback write also
                // failed), its missing segment is the LAST one and the
                // base file exists — exactly the interrupted-rotation
                // state `open_with` knows how to complete.
                let _ = std::fs::rename(&seg_path, &self.path);
                inner.sealed.pop();
                let _ = self.write_manifest_locked(inner);
                return Err(e);
            }
        };
        inner.active = active;
        inner.active_id = inner.next_mem_id;
        inner.next_mem_id += 1;
        // The sealed segment was fully synced above.
        inner.writes_since_sync = 0;
        Ok(())
    }

    fn write_manifest_locked(&self, inner: &mut DiskInner) -> Result<()> {
        Manifest {
            next_seq: inner.next_seq,
            sealed: inner.sealed.iter().map(|s| s.name.clone()).collect(),
        }
        .store(&manifest_path(&self.path))
    }

    /// Writes a point-in-time copy of the live set to `dest`: a fresh,
    /// already-compact **single-file** database, the format the paper's
    /// "ship the database next to the code" workflow expects regardless of
    /// how many segments the source has grown.
    pub fn snapshot(&self, dest: impl AsRef<Path>) -> Result<()> {
        let inner = self.inner.lock();
        let dest = dest.as_ref();
        let _ = std::fs::remove_file(dest);
        // A stale manifest at the destination would graft foreign segments
        // onto the snapshot when it is opened; remove it so `dest` opens
        // as the single file just written.
        let _ = std::fs::remove_file(manifest_path(dest));
        let (mut log, _) = LogFile::open(dest, |_| Ok(()))?;
        for (k, slot) in inner.map.iter() {
            let mut b = Batch::with_capacity(1);
            b.set(k.clone(), slot.value.clone());
            log.append(&b.encode())?;
        }
        log.sync()?;
        fsync_parent_dir(dest)?;
        Ok(())
    }

    fn write_batch(&self, batch: Batch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let auto_compact = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let encoded = batch.encode();
            inner.active.append(&encoded)?;
            inner.writes_total += 1;
            apply_ops(&mut inner.map, &mut inner.seg_stats, inner.active_id, batch.into_ops());
            match self.policy {
                SyncPolicy::Never => {}
                SyncPolicy::Always => inner.active.sync()?,
                SyncPolicy::EveryN(n) => {
                    inner.writes_since_sync += 1;
                    if inner.writes_since_sync >= n {
                        inner.active.sync()?;
                        inner.writes_since_sync = 0;
                    }
                }
            }
            if inner.active.len() >= self.segment_policy.max_segment_bytes {
                self.rotate_locked(inner)?;
                let sealed_garbage =
                    inner.garbage_ratio_over(inner.sealed.iter().map(|s| s.id));
                // Strictly greater, matching victim selection: if the
                // aggregate exceeds the threshold, at least one segment
                // does too (the aggregate is a weighted mean), so a
                // triggered compaction always has victims to rewrite.
                sealed_garbage > self.segment_policy.compact_garbage_ratio
                    && self.segment_policy.compact_garbage_ratio < 1.0
            } else {
                false
            }
        };
        if auto_compact {
            // Skip, rather than queue behind, a compaction already in
            // flight — the next rotation will re-check. Failures are
            // deliberately not surfaced here: the write itself is already
            // durable, so failing it would report an error for data that
            // a subsequent `get` serves fine. A failed auto-compaction
            // leaves only unreferenced output files (swept on open), the
            // garbage ratio stays high so the next rotation retries, and
            // an explicit `compact()` surfaces the underlying error.
            if let Some(guard) = self.compact_lock.try_lock() {
                let _ = self.compact_guarded(guard, self.segment_policy.compact_garbage_ratio);
            }
        }
        Ok(())
    }
}

/// A freshly written compacted segment, pending the manifest swap.
///
/// Outputs are streamed in ascending key order, so `first..=last` is the
/// exact (contiguous) key range the segment holds — enough for the swap
/// to re-tag live map entries without carrying every key.
struct CompactedSegment {
    name: String,
    bytes: u64,
    ops: u64,
    first: Vec<u8>,
    last: Vec<u8>,
}

/// Streams compaction records into fresh sealed-segment files, opening a
/// new one whenever the current file reaches the segment size and fsyncing
/// each before it is handed back for the manifest swap.
struct OutputWriter<'a> {
    store: &'a DiskStore,
    dir: &'a Path,
    base: String,
    outputs: Vec<CompactedSegment>,
    current: Option<(LogFile, CompactedSegment)>,
}

impl OutputWriter<'_> {
    fn append_record(&mut self, batch: Batch, first: &[u8], last: &[u8]) -> Result<()> {
        if self.current.is_none() {
            let seq = {
                let mut inner = self.store.inner.lock();
                let seq = inner.next_seq;
                inner.next_seq += 1;
                seq
            };
            let name = segment_file_name(&self.base, seq);
            let seg_path = self.dir.join(&name);
            let _ = std::fs::remove_file(&seg_path);
            let (log, _) = LogFile::open(&seg_path, |_| Ok(()))?;
            self.current = Some((
                log,
                CompactedSegment {
                    name,
                    bytes: 0,
                    ops: 0,
                    first: first.to_vec(),
                    last: Vec::new(),
                },
            ));
        }
        let (log, seg) = self.current.as_mut().expect("output segment is open");
        seg.ops += batch.len() as u64;
        seg.last = last.to_vec();
        log.append(&batch.encode())?;
        if log.len() >= self.store.segment_policy.max_segment_bytes {
            self.close_current()?;
        }
        Ok(())
    }

    fn close_current(&mut self) -> Result<()> {
        if let Some((mut log, mut seg)) = self.current.take() {
            log.sync()?;
            seg.bytes = log.len();
            self.outputs.push(seg);
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Vec<CompactedSegment>> {
        self.close_current()?;
        Ok(self.outputs)
    }
}

/// The file-name component of the base path (segments are named after it).
fn base_name(path: &Path) -> Result<String> {
    path.file_name()
        .and_then(|n| n.to_str())
        .map(str::to_owned)
        .ok_or_else(|| {
            Error::InvalidArgument(format!(
                "database path {} has no usable file name",
                path.display()
            ))
        })
}

/// Replays one log record (an encoded [`Batch`]) into the in-memory state.
fn replay_record(
    map: &mut BTreeMap<Vec<u8>, Slot>,
    seg_stats: &mut HashMap<u64, SegStats>,
    seg: u64,
    payload: &[u8],
) -> Result<()> {
    let batch = Batch::decode(payload)?;
    apply_ops(map, seg_stats, seg, batch.into_ops());
    Ok(())
}

/// Applies ops to the map, maintaining per-segment live/total accounting.
fn apply_ops(
    map: &mut BTreeMap<Vec<u8>, Slot>,
    seg_stats: &mut HashMap<u64, SegStats>,
    seg: u64,
    ops: Vec<Op>,
) {
    for op in ops {
        match op {
            Op::Set { key, value } => {
                let stats = seg_stats.entry(seg).or_default();
                stats.ops += 1;
                stats.live_ops += 1;
                if let Some(old) = map.insert(key, Slot { value, seg }) {
                    let old_stats = seg_stats.entry(old.seg).or_default();
                    old_stats.live_ops = old_stats.live_ops.saturating_sub(1);
                }
            }
            Op::Delete { key } => {
                // The tombstone itself is garbage from birth: it is only
                // needed until a prefix compaction swallows both it and
                // every older record of the key.
                seg_stats.entry(seg).or_default().ops += 1;
                if let Some(old) = map.remove(&key) {
                    let old_stats = seg_stats.entry(old.seg).or_default();
                    old_stats.live_ops = old_stats.live_ops.saturating_sub(1);
                }
            }
        }
    }
}

impl Backend for DiskStore {
    fn set(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut b = Batch::with_capacity(1);
        b.set(key.to_vec(), value.to_vec());
        self.write_batch(b)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.inner.lock().map.get(key).map(|slot| slot.value.clone()))
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        let mut b = Batch::with_capacity(1);
        b.delete(key.to_vec());
        self.write_batch(b)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let inner = self.inner.lock();
        Ok(scan_map_prefix(&inner.map, prefix, |slot| slot.value.clone()))
    }

    fn apply_batch(&self, batch: Batch) -> Result<()> {
        self.write_batch(batch)
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.inner.lock().map.contains_key(key))
    }

    fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.active.sync()?;
        // An explicit flush restarts the EveryN window; without this, the
        // next write after a flush could trigger a premature auto-fsync.
        inner.writes_since_sync = 0;
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            live_keys: inner.map.len(),
            log_bytes: inner.total_bytes(),
            segments: inner.sealed.len() + 1,
            writes: inner.writes_total,
            garbage_ratio: inner.garbage_ratio_over(
                inner.sealed.iter().map(|s| s.id).chain([inner.active_id]),
            ),
        }
    }
}

/// Ordered prefix scan over a `BTreeMap` using range bounds (no full walk).
/// `extract` projects the stored value type to the returned one.
pub(crate) fn scan_map_prefix<V, T>(
    map: &BTreeMap<Vec<u8>, V>,
    prefix: &[u8],
    extract: impl Fn(&V) -> T,
) -> Vec<(Vec<u8>, T)> {
    if prefix.is_empty() {
        return map.iter().map(|(k, v)| (k.clone(), extract(v))).collect();
    }
    let mut end = prefix.to_vec();
    // Compute the smallest byte string strictly greater than every string
    // with this prefix: increment the last non-0xFF byte.
    let upper = loop {
        match end.last_mut() {
            Some(b) if *b < 0xFF => {
                *b += 1;
                break Some(end);
            }
            Some(_) => {
                end.pop();
            }
            None => break None,
        }
    };
    let iter: Box<dyn Iterator<Item = (&Vec<u8>, &V)>> = match upper {
        Some(upper) => Box::new(map.range(prefix.to_vec()..upper)),
        None => Box::new(map.range(prefix.to_vec()..)),
    };
    iter.map(|(k, v)| (k.clone(), extract(v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reprowd-kv-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        DiskStore::destroy(&p).unwrap();
        p
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let store = DiskStore::open(tmp("sgd.rwlog"), SyncPolicy::Never).unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
        store.set(b"k", b"v1").unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"v1"[..]));
        store.set(b"k", b"v2").unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        store.delete(b"k").unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
        // Deleting a missing key is fine.
        store.delete(b"k").unwrap();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("persist.rwlog");
        {
            let store = DiskStore::open(&path, SyncPolicy::Always).unwrap();
            store.set(b"a", b"1").unwrap();
            store.set(b"b", b"2").unwrap();
            store.delete(b"a").unwrap();
        }
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        assert_eq!(store.get(b"b").unwrap().as_deref(), Some(&b"2"[..]));
        assert_eq!(store.recovery_report().records, 3);
        assert_eq!(store.recovery_report().live_keys, 1);
        assert_eq!(store.recovery_report().segments, 1);
    }

    #[test]
    fn small_databases_stay_single_file() {
        let path = tmp("singlefile.rwlog");
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for i in 0..100u32 {
            store.set(&i.to_le_bytes(), b"small").unwrap();
        }
        assert_eq!(store.stats().segments, 1);
        assert!(path.exists());
        assert!(
            !manifest_path(&path).exists(),
            "a never-rotated database must not grow a manifest"
        );
    }

    #[test]
    fn batch_is_atomic_under_torn_tail() {
        let path = tmp("atomic.rwlog");
        {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            store.set(b"pre", b"x").unwrap();
            let mut b = Batch::new();
            b.set(b"t1".to_vec(), b"v".to_vec());
            b.set(b"t2".to_vec(), b"v".to_vec());
            b.set(b"t3".to_vec(), b"v".to_vec());
            store.apply_batch(b).unwrap();
        }
        // Chop bytes off the end of the file, landing inside the batch record.
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        // The torn batch must vanish entirely: no t1/t2/t3, but `pre` intact.
        assert_eq!(store.get(b"pre").unwrap().as_deref(), Some(&b"x"[..]));
        assert_eq!(store.get(b"t1").unwrap(), None);
        assert_eq!(store.get(b"t2").unwrap(), None);
        assert_eq!(store.get(b"t3").unwrap(), None);
        assert!(store.recovery_report().truncated_bytes > 0);
    }

    #[test]
    fn scan_prefix_ordered_and_bounded() {
        let store = DiskStore::open(tmp("scan.rwlog"), SyncPolicy::Never).unwrap();
        for k in ["task/1", "task/2", "task/10", "result/1", "taskz"] {
            store.set(k.as_bytes(), b"v").unwrap();
        }
        let hits = store.scan_prefix(b"task/").unwrap();
        let keys: Vec<&str> =
            hits.iter().map(|(k, _)| std::str::from_utf8(k).unwrap()).collect();
        assert_eq!(keys, vec!["task/1", "task/10", "task/2"]); // byte order
        assert_eq!(store.scan_prefix(b"missing/").unwrap().len(), 0);
        assert_eq!(store.scan_prefix(b"").unwrap().len(), 5);
    }

    #[test]
    fn scan_prefix_with_0xff_boundary() {
        let store = DiskStore::open(tmp("scanff.rwlog"), SyncPolicy::Never).unwrap();
        store.set(&[0xFF, 0x01], b"a").unwrap();
        store.set(&[0xFF, 0xFF], b"b").unwrap();
        store.set(&[0xFE], b"c").unwrap();
        let hits = store.scan_prefix(&[0xFF]).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn compaction_shrinks_and_preserves() {
        let path = tmp("compact.rwlog");
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for round in 0..20 {
            for i in 0..50 {
                store.set(format!("key/{i}").as_bytes(), format!("round-{round}").as_bytes()).unwrap();
            }
        }
        let before = store.stats();
        assert!(before.garbage_ratio > 0.9, "expected mostly garbage, got {}", before.garbage_ratio);
        let saved = store.compact().unwrap();
        assert!(saved > 0);
        let after = store.stats();
        assert_eq!(after.live_keys, 50);
        assert!(after.log_bytes < before.log_bytes);
        assert!(after.garbage_ratio < 0.01);
        // Values survive compaction and a reopen.
        drop(store);
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for i in 0..50 {
            assert_eq!(
                store.get(format!("key/{i}").as_bytes()).unwrap().as_deref(),
                Some(&b"round-19"[..])
            );
        }
    }

    #[test]
    fn compacting_an_all_live_single_file_db_is_a_noop() {
        let path = tmp("compact-noop.rwlog");
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for i in 0..25u32 {
            store.set(&i.to_le_bytes(), b"fresh").unwrap();
        }
        assert_eq!(store.compact().unwrap(), 0);
        // The database must stay one sharable file — no forced migration.
        assert_eq!(store.stats().segments, 1);
        assert!(!manifest_path(&path).exists());
        assert_eq!(store.stats().live_keys, 25);
    }

    #[test]
    fn store_is_writable_after_compaction() {
        let path = tmp("compact-write.rwlog");
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        store.set(b"a", b"1").unwrap();
        store.compact().unwrap();
        store.set(b"b", b"2").unwrap();
        drop(store);
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(store.get(b"b").unwrap().as_deref(), Some(&b"2"[..]));
    }

    #[test]
    fn rotation_seals_segments_and_reopen_replays_them() {
        let path = tmp("rotate.rwlog");
        let policy = SegmentPolicy::new(256, 1.0); // tiny segments, no auto-compaction
        {
            let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
            for i in 0..100u32 {
                store.set(format!("k/{i:04}").as_bytes(), b"0123456789abcdef").unwrap();
            }
            let stats = store.stats();
            assert!(stats.segments > 2, "expected several segments, got {}", stats.segments);
            assert!(manifest_path(&path).exists());
        }
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        assert_eq!(store.stats().live_keys, 100);
        assert!(store.recovery_report().segments > 2);
        for i in 0..100u32 {
            assert_eq!(
                store.get(format!("k/{i:04}").as_bytes()).unwrap().as_deref(),
                Some(&b"0123456789abcdef"[..])
            );
        }
    }

    #[test]
    fn auto_compaction_bounds_log_growth() {
        let path = tmp("autocompact.rwlog");
        let policy = SegmentPolicy::new(1024, 0.5);
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        // Overwrite the same 20 keys hundreds of times: without
        // compaction the log would hold every round.
        for round in 0..200u32 {
            for i in 0..20u32 {
                store
                    .set(format!("hot/{i}").as_bytes(), format!("round-{round:04}-payload").as_bytes())
                    .unwrap();
            }
        }
        let stats = store.stats();
        assert_eq!(stats.live_keys, 20);
        // 4000 writes * ~40 bytes ≈ 160 KiB of raw appends; the compacted
        // database must stay within a few segments of live data.
        assert!(
            stats.log_bytes < 16 * 1024,
            "auto-compaction failed to bound the log: {} bytes",
            stats.log_bytes
        );
        drop(store);
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        assert_eq!(store.stats().live_keys, 20);
        assert_eq!(
            store.get(b"hot/7").unwrap().as_deref(),
            Some(&b"round-0199-payload"[..])
        );
    }

    #[test]
    fn deletes_do_not_resurrect_across_compaction() {
        let path = tmp("tombstone.rwlog");
        let policy = SegmentPolicy::new(128, 1.0);
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        // `victim` is written early (first segment), deleted later
        // (different segment). Compacting the prefix must not bring it back.
        store.set(b"victim", b"old-value-padding-padding").unwrap();
        for i in 0..20u32 {
            store.set(format!("fill/{i}").as_bytes(), b"xxxxxxxxxxxxxxxx").unwrap();
        }
        store.delete(b"victim").unwrap();
        for i in 0..20u32 {
            store.set(format!("more/{i}").as_bytes(), b"yyyyyyyyyyyyyyyy").unwrap();
        }
        store.compact().unwrap();
        assert_eq!(store.get(b"victim").unwrap(), None);
        drop(store);
        let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
        assert_eq!(store.get(b"victim").unwrap(), None, "delete lost by compaction");
        assert_eq!(store.stats().live_keys, 40);
    }

    #[test]
    fn snapshot_is_independent_copy() {
        let src_path = tmp("snap-src.rwlog");
        let dst_path = tmp("snap-dst.rwlog");
        let store = DiskStore::open(&src_path, SyncPolicy::Never).unwrap();
        store.set(b"k", b"v").unwrap();
        store.snapshot(&dst_path).unwrap();
        store.set(b"k", b"changed").unwrap();

        let copy = DiskStore::open(&dst_path, SyncPolicy::Never).unwrap();
        assert_eq!(copy.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"changed"[..]));
    }

    #[test]
    fn snapshot_of_segmented_store_is_single_file() {
        let src = tmp("snap-seg-src.rwlog");
        let dst = tmp("snap-seg-dst.rwlog");
        let store =
            DiskStore::open_with(&src, SyncPolicy::Never, SegmentPolicy::new(256, 1.0)).unwrap();
        for i in 0..50u32 {
            store.set(format!("k/{i:03}").as_bytes(), b"0123456789abcdef").unwrap();
        }
        assert!(store.stats().segments > 1);
        store.snapshot(&dst).unwrap();
        assert!(dst.exists());
        assert!(!manifest_path(&dst).exists(), "snapshot must be one file");
        let copy = DiskStore::open(&dst, SyncPolicy::Never).unwrap();
        assert_eq!(copy.stats().segments, 1);
        assert_eq!(copy.scan_prefix(b"").unwrap(), store.scan_prefix(b"").unwrap());
    }

    #[test]
    fn sync_policies_accept_writes() {
        for policy in [SyncPolicy::Never, SyncPolicy::Always, SyncPolicy::EveryN(3)] {
            let store =
                DiskStore::open(tmp(&format!("policy-{policy:?}.rwlog")), policy).unwrap();
            for i in 0..10u32 {
                store.set(&i.to_le_bytes(), b"v").unwrap();
            }
            assert_eq!(store.stats().live_keys, 10);
        }
    }

    #[test]
    fn flush_resets_the_everyn_window() {
        let store =
            DiskStore::open(tmp("flush-everyn.rwlog"), SyncPolicy::EveryN(3)).unwrap();
        store.set(b"a", b"1").unwrap();
        store.set(b"b", b"2").unwrap();
        store.flush().unwrap();
        // The explicit flush must restart the window: the counter is 0
        // again, so two more writes stay below the threshold.
        assert_eq!(store.inner.lock().writes_since_sync, 0);
        store.set(b"c", b"3").unwrap();
        store.set(b"d", b"4").unwrap();
        assert_eq!(store.inner.lock().writes_since_sync, 2);
        store.set(b"e", b"5").unwrap();
        assert_eq!(store.inner.lock().writes_since_sync, 0, "third write syncs");
    }

    #[test]
    fn stats_track_writes() {
        let store = DiskStore::open(tmp("stats.rwlog"), SyncPolicy::Never).unwrap();
        assert_eq!(store.stats().writes, 0);
        store.set(b"a", b"1").unwrap();
        store.set(b"a", b"2").unwrap();
        let mut b = Batch::new();
        b.set(b"x".to_vec(), b"y".to_vec());
        store.apply_batch(b).unwrap();
        let s = store.stats();
        assert_eq!(s.writes, 3);
        assert_eq!(s.live_keys, 2);
        assert!(s.log_bytes > 0);
    }

    #[test]
    fn empty_batch_is_noop() {
        let store = DiskStore::open(tmp("emptybatch.rwlog"), SyncPolicy::Never).unwrap();
        let before = store.stats().log_bytes;
        store.apply_batch(Batch::new()).unwrap();
        assert_eq!(store.stats().log_bytes, before);
    }

    #[test]
    fn contains_matches_get() {
        let store = DiskStore::open(tmp("contains.rwlog"), SyncPolicy::Never).unwrap();
        assert!(!store.contains(b"k").unwrap());
        store.set(b"k", b"").unwrap(); // empty value is still present
        assert!(store.contains(b"k").unwrap());
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn destroy_removes_the_whole_file_family() {
        let path = tmp("destroy.rwlog");
        let policy = SegmentPolicy::new(256, 1.0);
        {
            let store = DiskStore::open_with(&path, SyncPolicy::Never, policy).unwrap();
            for i in 0..60u32 {
                store.set(format!("k/{i:03}").as_bytes(), b"0123456789abcdef").unwrap();
            }
            assert!(store.stats().segments > 2);
        }
        // An unrelated sibling must survive.
        let keeper = path.with_file_name("destroy.rwlog.bak");
        fs::write(&keeper, b"keep").unwrap();
        DiskStore::destroy(&path).unwrap();
        assert!(!path.exists());
        assert!(!manifest_path(&path).exists());
        let family: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .flatten()
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with("destroy.rwlog") && n != "destroy.rwlog.bak"
            })
            .collect();
        assert!(family.is_empty(), "left behind: {family:?}");
        assert!(keeper.exists());
        fs::remove_file(keeper).unwrap();
        // Destroying a non-existent database is a no-op, and the path is
        // free for a fresh store.
        DiskStore::destroy(&path).unwrap();
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.stats().live_keys, 0);
    }

    #[test]
    fn invalid_segment_policy_rejected_at_open() {
        let err = DiskStore::open_with(
            tmp("badpolicy.rwlog"),
            SyncPolicy::Never,
            SegmentPolicy::new(0, 0.5),
        );
        assert!(err.is_err());
    }
}
