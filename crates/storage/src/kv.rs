//! The key-value store: [`Backend`] trait and the durable [`DiskStore`].
//!
//! `DiskStore` keeps the full live key set in memory (a `BTreeMap`, so
//! prefix scans are ordered) and makes every mutation durable by appending a
//! one-record [`Batch`] to the log. Reprowd databases hold crowdsourced
//! answers — thousands to a few million small rows — so an in-memory index
//! with a replayable log is the sweet spot: recovery is a single sequential
//! scan, and the whole database remains one file that can be shipped to
//! another researcher.

use crate::batch::{Batch, Op};
use crate::error::Result;
use crate::log::LogFile;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// When the log is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync automatically; the OS flushes when it pleases. Fastest,
    /// used for benchmarks and tests. Data still survives *process* crashes
    /// (the file is written), just not OS/power failures.
    Never,
    /// fsync after every logical write (single op or batch). Slowest,
    /// survives power failure.
    Always,
    /// fsync after every `n` logical writes.
    EveryN(u32),
}

/// What recovery found when opening a [`DiskStore`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Log records (batches) replayed.
    pub records: u64,
    /// Bytes of torn tail discarded.
    pub truncated_bytes: u64,
    /// Why the tail was discarded, if it was.
    pub truncate_reason: Option<String>,
    /// Live keys after replay.
    pub live_keys: usize,
}

/// Point-in-time statistics about a store.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Live keys currently visible.
    pub live_keys: usize,
    /// Bytes occupied by the log on disk (0 for memory stores).
    pub log_bytes: u64,
    /// Total logical write operations applied since open.
    pub writes: u64,
    /// Estimated fraction of the log occupied by superseded records, in
    /// [0, 1]. Only meaningful for disk stores.
    pub garbage_ratio: f64,
}

/// The storage abstraction consumed by the rest of Reprowd.
///
/// Implementations must be thread-safe: `CrowdContext` is shared across
/// operator pipelines.
pub trait Backend: Send + Sync {
    /// Inserts or overwrites one key.
    fn set(&self, key: &[u8], value: &[u8]) -> Result<()>;
    /// Fetches a key's current value.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;
    /// Removes a key. Removing an absent key is not an error.
    fn delete(&self, key: &[u8]) -> Result<()>;
    /// Returns all `(key, value)` pairs whose key starts with `prefix`,
    /// in ascending key order.
    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
    /// Applies all operations in `batch` atomically.
    fn apply_batch(&self, batch: Batch) -> Result<()>;
    /// Returns true if `key` is present (default: via `get`).
    fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }
    /// Forces buffered writes to stable storage.
    fn flush(&self) -> Result<()>;
    /// Current statistics.
    fn stats(&self) -> StoreStats;
}

struct DiskInner {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    log: LogFile,
    writes_since_sync: u32,
    writes_total: u64,
    /// Records appended since open plus records replayed; used with
    /// `map.len()` to estimate garbage.
    records_total: u64,
}

/// Durable [`Backend`] backed by a single append-only log file.
pub struct DiskStore {
    inner: Mutex<DiskInner>,
    policy: SyncPolicy,
    path: PathBuf,
    recovery: RecoveryReport,
}

impl DiskStore {
    /// Opens (creating if needed) the store at `path`, replaying the log and
    /// truncating any torn tail left by a crash.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut map = BTreeMap::new();
        let mut ops_replayed: u64 = 0;
        let (log, open_report) = LogFile::open(&path, |payload| {
            let batch = Batch::decode(payload)?;
            ops_replayed += batch.len() as u64;
            apply_to_map(&mut map, batch.into_ops());
            Ok(())
        })?;
        let recovery = RecoveryReport {
            records: open_report.records,
            truncated_bytes: open_report.truncated_bytes,
            truncate_reason: open_report.truncate_reason,
            live_keys: map.len(),
        };
        Ok(DiskStore {
            inner: Mutex::new(DiskInner {
                map,
                log,
                writes_since_sync: 0,
                writes_total: 0,
                records_total: ops_replayed,
            }),
            policy,
            path,
            recovery,
        })
    }

    /// What recovery observed when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrites the log so it contains exactly the live key set, reclaiming
    /// space held by overwritten or deleted records. Returns bytes saved.
    ///
    /// The rewrite goes to `<path>.compact` and is atomically renamed over
    /// the original, so a crash during compaction leaves either the old or
    /// the new complete log — never a mix.
    pub fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.lock();
        let before = inner.log.len();
        let tmp_path = self.path.with_extension("compact");
        let _ = std::fs::remove_file(&tmp_path);
        {
            let (mut new_log, _) = LogFile::open(&tmp_path, |_| Ok(()))?;
            // One batch per key keeps individual records small; the whole
            // rewrite doesn't need to be atomic because the rename is.
            for (k, v) in inner.map.iter() {
                let mut b = Batch::with_capacity(1);
                b.set(k.clone(), v.clone());
                new_log.append(&b.encode())?;
            }
            new_log.sync()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen the renamed file as our active log (no replay needed — the
        // in-memory map is already authoritative).
        let (log, _) = LogFile::open(&self.path, |_| Ok(()))?;
        inner.log = log;
        inner.records_total = inner.map.len() as u64;
        Ok(before.saturating_sub(inner.log.len()))
    }

    /// Writes a point-in-time copy of the live set to `dest` (a fresh,
    /// already-compact database file suitable for sharing).
    pub fn snapshot(&self, dest: impl AsRef<Path>) -> Result<()> {
        let inner = self.inner.lock();
        let dest = dest.as_ref();
        let _ = std::fs::remove_file(dest);
        let (mut log, _) = LogFile::open(dest, |_| Ok(()))?;
        for (k, v) in inner.map.iter() {
            let mut b = Batch::with_capacity(1);
            b.set(k.clone(), v.clone());
            log.append(&b.encode())?;
        }
        log.sync()?;
        Ok(())
    }

    fn write_batch(&self, batch: Batch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        let encoded = batch.encode();
        inner.log.append(&encoded)?;
        inner.records_total += batch.len() as u64;
        inner.writes_total += 1;
        apply_to_map(&mut inner.map, batch.into_ops());
        match self.policy {
            SyncPolicy::Never => {}
            SyncPolicy::Always => inner.log.sync()?,
            SyncPolicy::EveryN(n) => {
                inner.writes_since_sync += 1;
                if inner.writes_since_sync >= n {
                    inner.log.sync()?;
                    inner.writes_since_sync = 0;
                }
            }
        }
        Ok(())
    }
}

fn apply_to_map(map: &mut BTreeMap<Vec<u8>, Vec<u8>>, ops: Vec<Op>) {
    for op in ops {
        match op {
            Op::Set { key, value } => {
                map.insert(key, value);
            }
            Op::Delete { key } => {
                map.remove(&key);
            }
        }
    }
}

impl Backend for DiskStore {
    fn set(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut b = Batch::with_capacity(1);
        b.set(key.to_vec(), value.to_vec());
        self.write_batch(b)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.inner.lock().map.get(key).cloned())
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        let mut b = Batch::with_capacity(1);
        b.delete(key.to_vec());
        self.write_batch(b)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let inner = self.inner.lock();
        Ok(scan_map_prefix(&inner.map, prefix))
    }

    fn apply_batch(&self, batch: Batch) -> Result<()> {
        self.write_batch(batch)
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.inner.lock().map.contains_key(key))
    }

    fn flush(&self) -> Result<()> {
        self.inner.lock().log.sync()
    }

    fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        let live = inner.map.len() as u64;
        let total = inner.records_total.max(1);
        StoreStats {
            live_keys: inner.map.len(),
            log_bytes: inner.log.len(),
            writes: inner.writes_total,
            garbage_ratio: 1.0 - (live.min(total) as f64 / total as f64),
        }
    }
}

/// Ordered prefix scan over a `BTreeMap` using range bounds (no full walk).
pub(crate) fn scan_map_prefix(
    map: &BTreeMap<Vec<u8>, Vec<u8>>,
    prefix: &[u8],
) -> Vec<(Vec<u8>, Vec<u8>)> {
    if prefix.is_empty() {
        return map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    }
    let mut end = prefix.to_vec();
    // Compute the smallest byte string strictly greater than every string
    // with this prefix: increment the last non-0xFF byte.
    let upper = loop {
        match end.last_mut() {
            Some(b) if *b < 0xFF => {
                *b += 1;
                break Some(end);
            }
            Some(_) => {
                end.pop();
            }
            None => break None,
        }
    };
    let iter: Box<dyn Iterator<Item = (&Vec<u8>, &Vec<u8>)>> = match upper {
        Some(upper) => Box::new(map.range(prefix.to_vec()..upper)),
        None => Box::new(map.range(prefix.to_vec()..)),
    };
    iter.map(|(k, v)| (k.clone(), v.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reprowd-kv-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = fs::remove_file(&p);
        let _ = fs::remove_file(p.with_extension("compact"));
        p
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let store = DiskStore::open(tmp("sgd.rwlog"), SyncPolicy::Never).unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
        store.set(b"k", b"v1").unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"v1"[..]));
        store.set(b"k", b"v2").unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        store.delete(b"k").unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
        // Deleting a missing key is fine.
        store.delete(b"k").unwrap();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("persist.rwlog");
        {
            let store = DiskStore::open(&path, SyncPolicy::Always).unwrap();
            store.set(b"a", b"1").unwrap();
            store.set(b"b", b"2").unwrap();
            store.delete(b"a").unwrap();
        }
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);
        assert_eq!(store.get(b"b").unwrap().as_deref(), Some(&b"2"[..]));
        assert_eq!(store.recovery_report().records, 3);
        assert_eq!(store.recovery_report().live_keys, 1);
    }

    #[test]
    fn batch_is_atomic_under_torn_tail() {
        let path = tmp("atomic.rwlog");
        {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            store.set(b"pre", b"x").unwrap();
            let mut b = Batch::new();
            b.set(b"t1".to_vec(), b"v".to_vec());
            b.set(b"t2".to_vec(), b"v".to_vec());
            b.set(b"t3".to_vec(), b"v".to_vec());
            store.apply_batch(b).unwrap();
        }
        // Chop bytes off the end of the file, landing inside the batch record.
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        // The torn batch must vanish entirely: no t1/t2/t3, but `pre` intact.
        assert_eq!(store.get(b"pre").unwrap().as_deref(), Some(&b"x"[..]));
        assert_eq!(store.get(b"t1").unwrap(), None);
        assert_eq!(store.get(b"t2").unwrap(), None);
        assert_eq!(store.get(b"t3").unwrap(), None);
        assert!(store.recovery_report().truncated_bytes > 0);
    }

    #[test]
    fn scan_prefix_ordered_and_bounded() {
        let store = DiskStore::open(tmp("scan.rwlog"), SyncPolicy::Never).unwrap();
        for k in ["task/1", "task/2", "task/10", "result/1", "taskz"] {
            store.set(k.as_bytes(), b"v").unwrap();
        }
        let hits = store.scan_prefix(b"task/").unwrap();
        let keys: Vec<&str> =
            hits.iter().map(|(k, _)| std::str::from_utf8(k).unwrap()).collect();
        assert_eq!(keys, vec!["task/1", "task/10", "task/2"]); // byte order
        assert_eq!(store.scan_prefix(b"missing/").unwrap().len(), 0);
        assert_eq!(store.scan_prefix(b"").unwrap().len(), 5);
    }

    #[test]
    fn scan_prefix_with_0xff_boundary() {
        let store = DiskStore::open(tmp("scanff.rwlog"), SyncPolicy::Never).unwrap();
        store.set(&[0xFF, 0x01], b"a").unwrap();
        store.set(&[0xFF, 0xFF], b"b").unwrap();
        store.set(&[0xFE], b"c").unwrap();
        let hits = store.scan_prefix(&[0xFF]).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn compaction_shrinks_and_preserves() {
        let path = tmp("compact.rwlog");
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for round in 0..20 {
            for i in 0..50 {
                store.set(format!("key/{i}").as_bytes(), format!("round-{round}").as_bytes()).unwrap();
            }
        }
        let before = store.stats();
        assert!(before.garbage_ratio > 0.9, "expected mostly garbage, got {}", before.garbage_ratio);
        let saved = store.compact().unwrap();
        assert!(saved > 0);
        let after = store.stats();
        assert_eq!(after.live_keys, 50);
        assert!(after.log_bytes < before.log_bytes);
        assert!(after.garbage_ratio < 0.01);
        // Values survive compaction and a reopen.
        drop(store);
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for i in 0..50 {
            assert_eq!(
                store.get(format!("key/{i}").as_bytes()).unwrap().as_deref(),
                Some(&b"round-19"[..])
            );
        }
    }

    #[test]
    fn store_is_writable_after_compaction() {
        let path = tmp("compact-write.rwlog");
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        store.set(b"a", b"1").unwrap();
        store.compact().unwrap();
        store.set(b"b", b"2").unwrap();
        drop(store);
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(store.get(b"b").unwrap().as_deref(), Some(&b"2"[..]));
    }

    #[test]
    fn snapshot_is_independent_copy() {
        let src_path = tmp("snap-src.rwlog");
        let dst_path = tmp("snap-dst.rwlog");
        let store = DiskStore::open(&src_path, SyncPolicy::Never).unwrap();
        store.set(b"k", b"v").unwrap();
        store.snapshot(&dst_path).unwrap();
        store.set(b"k", b"changed").unwrap();

        let copy = DiskStore::open(&dst_path, SyncPolicy::Never).unwrap();
        assert_eq!(copy.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"changed"[..]));
    }

    #[test]
    fn sync_policies_accept_writes() {
        for policy in [SyncPolicy::Never, SyncPolicy::Always, SyncPolicy::EveryN(3)] {
            let store =
                DiskStore::open(tmp(&format!("policy-{policy:?}.rwlog")), policy).unwrap();
            for i in 0..10u32 {
                store.set(&i.to_le_bytes(), b"v").unwrap();
            }
            assert_eq!(store.stats().live_keys, 10);
        }
    }

    #[test]
    fn stats_track_writes() {
        let store = DiskStore::open(tmp("stats.rwlog"), SyncPolicy::Never).unwrap();
        assert_eq!(store.stats().writes, 0);
        store.set(b"a", b"1").unwrap();
        store.set(b"a", b"2").unwrap();
        let mut b = Batch::new();
        b.set(b"x".to_vec(), b"y".to_vec());
        store.apply_batch(b).unwrap();
        let s = store.stats();
        assert_eq!(s.writes, 3);
        assert_eq!(s.live_keys, 2);
        assert!(s.log_bytes > 0);
    }

    #[test]
    fn empty_batch_is_noop() {
        let store = DiskStore::open(tmp("emptybatch.rwlog"), SyncPolicy::Never).unwrap();
        let before = store.stats().log_bytes;
        store.apply_batch(Batch::new()).unwrap();
        assert_eq!(store.stats().log_bytes, before);
    }

    #[test]
    fn contains_matches_get() {
        let store = DiskStore::open(tmp("contains.rwlog"), SyncPolicy::Never).unwrap();
        assert!(!store.contains(b"k").unwrap());
        store.set(b"k", b"").unwrap(); // empty value is still present
        assert!(store.contains(b"k").unwrap());
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b""[..]));
    }
}
