//! Segment naming, rotation policy, and per-segment bookkeeping for the
//! segmented log engine behind [`DiskStore`](crate::kv::DiskStore).
//!
//! A database is a sequence of *segments*, each an append-only file of
//! CRC-framed records ([`crate::log::LogFile`]):
//!
//! ```text
//!  db.rwlog.000001.seg   sealed   ┐  replay order fixed by
//!  db.rwlog.000003.seg   sealed   ┤  db.rwlog.manifest
//!  db.rwlog              ACTIVE   ┘  (always last, never listed)
//! ```
//!
//! Writes append to the active segment only. When it reaches
//! [`SegmentPolicy::max_segment_bytes`] it is *sealed*: renamed to the
//! next numbered `.seg` file, appended to the manifest, and a fresh empty
//! active segment takes its place. Sealed segments are immutable, which is
//! what lets compaction rewrite them without blocking readers or writers.

use crate::error::{Error, Result};

/// When the active segment is rotated and when sealed segments are
/// compacted. The segmented-engine analogue of
/// `ExecutionConfig::batch_size`: a pure performance knob that never
/// changes visible contents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentPolicy {
    /// The active segment is sealed once it holds at least this many
    /// bytes. Smaller segments bound the blast radius of a torn tail and
    /// make compaction increments finer; larger segments mean fewer files
    /// and fewer manifest swaps. A database that never reaches the limit
    /// stays a single plain log file.
    pub max_segment_bytes: u64,
    /// Once a rotation leaves the sealed segments with *more than* this
    /// fraction of dead (superseded or deleted) records, a compaction is
    /// triggered automatically on the writing thread. In `[0, 1]`; `1.0`
    /// disables auto-compaction (explicit
    /// [`DiskStore::compact`](crate::kv::DiskStore::compact) still works).
    pub compact_garbage_ratio: f64,
}

/// Defaults: 64 MiB segments, auto-compact at 60% garbage. Small
/// experiment databases never rotate and therefore remain single files.
impl Default for SegmentPolicy {
    fn default() -> Self {
        SegmentPolicy { max_segment_bytes: 64 << 20, compact_garbage_ratio: 0.6 }
    }
}

impl SegmentPolicy {
    /// A policy with the given segment size and garbage threshold.
    pub fn new(max_segment_bytes: u64, compact_garbage_ratio: f64) -> Self {
        SegmentPolicy { max_segment_bytes, compact_garbage_ratio }
    }

    /// Rejects structurally impossible policies: a zero segment size
    /// (every write would rotate) or a garbage threshold outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.max_segment_bytes == 0 {
            return Err(Error::InvalidArgument(
                "SegmentPolicy::max_segment_bytes must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.compact_garbage_ratio) {
            return Err(Error::InvalidArgument(format!(
                "SegmentPolicy::compact_garbage_ratio must be in [0, 1], got {}",
                self.compact_garbage_ratio
            )));
        }
        Ok(())
    }
}

/// Record-count bookkeeping for one segment. Garbage is measured in
/// *operations*, not bytes: an op whose key was later overwritten or
/// deleted (or a delete tombstone, dead from birth) is garbage.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SegStats {
    /// Operations the segment holds.
    pub ops: u64,
    /// Operations that are the current live value of their key.
    pub live_ops: u64,
}

impl SegStats {
    /// Fraction of this segment's ops that are dead, in [0, 1].
    pub fn garbage_ratio(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            1.0 - self.live_ops as f64 / self.ops as f64
        }
    }
}

/// One sealed segment as tracked in memory: its session-local id (the tag
/// on map entries), manifest file name, and on-disk size.
#[derive(Debug, Clone)]
pub(crate) struct SealedSegment {
    /// Session-local id; map entries whose live value came from this
    /// segment carry it. Not persisted — reopen re-tags during replay.
    pub id: u64,
    /// File name as listed in the manifest (sibling of the base path).
    pub name: String,
    /// Bytes of intact records on disk.
    pub bytes: u64,
}

/// The manifest file name of a sealed segment: `<base>.<seq:06>.seg`.
pub(crate) fn segment_file_name(base_name: &str, seq: u64) -> String {
    format!("{base_name}.{seq:06}.seg")
}

/// True if `file_name` is a file that only this database could have
/// created next to `base_name` and that is safe to delete when the
/// manifest does not claim it: a numbered `.seg`, a pre-segmentation
/// `<base>.compact` temp, or a `<base>.manifest.tmp` from an interrupted
/// manifest swap. Deliberately strict, so user files like `db.rwlog.bak`
/// are never touched.
pub(crate) fn is_sweepable(base_name: &str, file_name: &str) -> bool {
    if file_name == format!("{base_name}.compact") || file_name == format!("{base_name}.manifest.tmp")
    {
        return true;
    }
    let Some(rest) = file_name.strip_prefix(base_name) else {
        return false;
    };
    let Some(middle) = rest.strip_prefix('.').and_then(|r| r.strip_suffix(".seg")) else {
        return false;
    };
    !middle.is_empty() && middle.bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        SegmentPolicy::default().validate().unwrap();
    }

    #[test]
    fn invalid_policies_rejected() {
        assert!(SegmentPolicy::new(0, 0.5).validate().is_err());
        assert!(SegmentPolicy::new(1024, -0.1).validate().is_err());
        assert!(SegmentPolicy::new(1024, 1.5).validate().is_err());
        assert!(SegmentPolicy::new(1024, f64::NAN).validate().is_err());
        assert!(SegmentPolicy::new(1, 0.0).validate().is_ok());
        assert!(SegmentPolicy::new(1024, 1.0).validate().is_ok());
    }

    #[test]
    fn garbage_ratio_math() {
        assert_eq!(SegStats::default().garbage_ratio(), 0.0);
        assert_eq!(SegStats { ops: 10, live_ops: 10 }.garbage_ratio(), 0.0);
        assert!((SegStats { ops: 10, live_ops: 4 }.garbage_ratio() - 0.6).abs() < 1e-12);
        assert_eq!(SegStats { ops: 10, live_ops: 0 }.garbage_ratio(), 1.0);
    }

    #[test]
    fn file_names_are_zero_padded() {
        assert_eq!(segment_file_name("db.rwlog", 3), "db.rwlog.000003.seg");
        assert_eq!(segment_file_name("db.rwlog", 1_000_000), "db.rwlog.1000000.seg");
    }

    #[test]
    fn sweep_is_strict() {
        for yes in ["db.rwlog.000001.seg", "db.rwlog.42.seg", "db.rwlog.compact", "db.rwlog.manifest.tmp"] {
            assert!(is_sweepable("db.rwlog", yes), "{yes}");
        }
        for no in [
            "db.rwlog",
            "db.rwlog.manifest",
            "db.rwlog.seg",
            "db.rwlog..seg",
            "db.rwlog.abc.seg",
            "db.rwlog.000001.seg.bak",
            "db.rwlog2.000001.seg",
            "other.rwlog.000001.seg",
        ] {
            assert!(!is_sweepable("db.rwlog", no), "{no}");
        }
    }
}
