//! # reprowd-storage
//!
//! An embedded, crash-safe, append-only key-value and table store.
//!
//! This crate is the *database* box of the Reprowd architecture (paper
//! Figure 1). The paper's "sharable" requirement says that the `task` and
//! `result` columns of a `CrowdData` experiment must be stored persistently
//! so that "when the program is crashed, rerunning the program is as if it
//! has never crashed". The original system delegated that to SQLite; this
//! crate provides the equivalent guarantees from scratch:
//!
//! * **Durable appends** — every mutation is framed as a length- and
//!   CRC32-checked record in a single append-only log file ([`record`],
//!   [`log`]).
//! * **Torn-tail recovery** — reopening a store after a crash replays the log
//!   and truncates at the first corrupt/partial record, so a crash mid-write
//!   loses at most the write in flight and never corrupts earlier data.
//! * **Atomic batches** — a multi-operation [`Batch`] is framed as one
//!   record: after recovery either all of its operations are visible or none
//!   are ([`batch`]).
//! * **Compaction & snapshots** — the live set can be rewritten to drop
//!   superseded records ([`DiskStore::compact`]) or exported to a new file
//!   ([`DiskStore::snapshot`]) that a second researcher can ship alongside
//!   their code, exactly like the paper's "share the code along with the
//!   database file" workflow.
//!
//! Two interchangeable backends implement the [`Backend`] trait:
//! [`DiskStore`] (durable) and [`MemoryStore`] (tests, benchmarks).
//! [`table::Table`] layers typed, serde-encoded rows on top of either.
//!
//! ```
//! use reprowd_storage::{DiskStore, Backend, SyncPolicy};
//! let dir = std::env::temp_dir().join(format!("rwd-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("example.rwlog");
//! # let _ = std::fs::remove_file(&path);
//! let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
//! store.set(b"answer", b"42").unwrap();
//! drop(store);
//! // Reopening replays the log: the write survives.
//! let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
//! assert_eq!(store.get(b"answer").unwrap().as_deref(), Some(&b"42"[..]));
//! # std::fs::remove_file(&path).unwrap();
//! ```

pub mod batch;
pub mod crc;
pub mod error;
pub mod kv;
pub mod log;
pub mod memory;
pub mod record;
pub mod table;

pub use batch::{Batch, Op};
pub use error::{Error, Result};
pub use kv::{Backend, DiskStore, RecoveryReport, StoreStats, SyncPolicy};
pub use memory::MemoryStore;
pub use table::Table;
