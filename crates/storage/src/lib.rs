//! # reprowd-storage
//!
//! An embedded, crash-safe, append-only key-value and table store.
//!
//! This crate is the *database* box of the Reprowd architecture (paper
//! Figure 1). The paper's "sharable" requirement says that the `task` and
//! `result` columns of a `CrowdData` experiment must be stored persistently
//! so that "when the program is crashed, rerunning the program is as if it
//! has never crashed". The original system delegated that to SQLite; this
//! crate provides the equivalent guarantees from scratch:
//!
//! * **Durable appends** — every mutation is framed as a length- and
//!   CRC32-checked record in an append-only log ([`record`], [`log`]).
//! * **Segmented logs** — the log is split into immutable sealed segments
//!   plus one active segment, rotated at [`SegmentPolicy::max_segment_bytes`]
//!   and stitched together by a CRC-framed manifest ([`segment`],
//!   [`manifest`]). A database that never rotates — every small experiment —
//!   remains a single plain log file, byte-compatible with the
//!   pre-segmentation format, and legacy single-file databases open
//!   unchanged as the active segment.
//! * **Torn-tail recovery** — reopening a store after a crash replays the
//!   segments in manifest order; the active segment (where a crash can
//!   legitimately tear a write) is truncated at its first
//!   corrupt/partial/undecodable record, so a crash mid-write loses at
//!   most the write in flight and never corrupts earlier data. Sealed
//!   segments were fully fsynced before the manifest referenced them, so
//!   damage there is mid-history corruption and refuses the open rather
//!   than being silently dropped.
//! * **Atomic batches** — a multi-operation [`Batch`] is framed as one
//!   record: after recovery either all of its operations are visible or none
//!   are ([`batch`]).
//! * **Non-blocking compaction** — garbage-heavy sealed segments are
//!   rewritten without holding the store lock ([`DiskStore::compact`];
//!   automatic above [`SegmentPolicy::compact_garbage_ratio`]), so readers
//!   and concurrent writers never stall behind a full-database rewrite.
//!   (The one caller *running* a compaction — the thread that invoked
//!   `compact()`, or the writer whose rotation tripped the auto
//!   threshold — naturally spends the rewrite's wall time; set the
//!   threshold to `1.0` and call `compact()` from a maintenance thread to
//!   keep the write path free of even that amortized cost.)
//! * **Single-file snapshots** — the live set can be exported to a fresh
//!   single file ([`DiskStore::snapshot`]) that a second researcher can
//!   ship alongside their code, exactly like the paper's "share the code
//!   along with the database file" workflow. (Unlike compaction, the
//!   export holds the store lock for its point-in-time copy.)
//!
//! Two interchangeable backends implement the [`Backend`] trait:
//! [`DiskStore`] (durable) and [`MemoryStore`] (tests, benchmarks).
//! [`table::Table`] layers typed, serde-encoded rows on top of either.
//!
//! ```
//! use reprowd_storage::{DiskStore, Backend, SyncPolicy};
//! let dir = std::env::temp_dir().join(format!("rwd-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("example.rwlog");
//! # let _ = std::fs::remove_file(&path);
//! let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
//! store.set(b"answer", b"42").unwrap();
//! drop(store);
//! // Reopening replays the log: the write survives.
//! let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
//! assert_eq!(store.get(b"answer").unwrap().as_deref(), Some(&b"42"[..]));
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod crc;
pub mod error;
pub mod kv;
pub mod log;
pub mod manifest;
pub mod memory;
pub mod record;
pub mod segment;
pub mod table;

pub use batch::{Batch, Op};
pub use error::{Error, Result};
pub use kv::{Backend, DiskStore, RecoveryReport, StoreStats, SyncPolicy};
pub use memory::MemoryStore;
pub use segment::SegmentPolicy;
pub use table::Table;
