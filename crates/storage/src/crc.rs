//! CRC-32 (IEEE 802.3 polynomial, reflected) implemented from scratch.
//!
//! Every log record carries a CRC over its payload so that a torn write —
//! the failure mode the paper's fault-recovery guarantee must survive — is
//! detected on reopen instead of being replayed as garbage.

/// Reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 hasher for multi-part payloads.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finalizes and returns the checksum. The hasher may not be reused.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello crowdsourced world";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"payload under test".to_vec();
        let baseline = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut tampered = data.clone();
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc32(&tampered), baseline, "flip {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_transposition() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
        assert_ne!(crc32(b"task:1"), crc32(b"task:2"));
    }
}
