//! The [`IssueGate`] — ordered issue of pipelined platform calls.
//!
//! The pipelined execution engine (core's `pipeline` module) keeps several
//! platform round-trips in flight at once. Overlap is only safe if the
//! *effects* of those calls — task-id allocation, budget charges, API-call
//! accounting — still land in one deterministic order: a platform that
//! allocates ids in arrival order would otherwise bind different ids to
//! different batches on every run, destroying the bit-for-bit
//! reproducibility the whole system is built on.
//!
//! An `IssueGate` is the client-side sequencer that fixes this. The caller
//! numbers its calls with consecutive *slots* (0, 1, 2, …); each call takes
//! its [`turn`](IssueGate::turn) before performing its effect, and the gate
//! admits slot `k` only after slot `k - 1` has completed its effect. The
//! wire time of a call — the part a latency-bound platform spends waiting
//! on the network — happens *outside* the turn, so round-trips overlap
//! while their effects serialize. This is exactly the contract of a
//! pipelined HTTP/1.1 connection: requests are in flight concurrently, the
//! server applies them in order.
//!
//! Failure is ordered too. A turn that is dropped without
//! [`complete`](IssueTurn::complete) — the call behind it failed — closes
//! the gate for every later slot, so a pipelined run fails with exactly the
//! platform state a sequential run stopping at the same batch would leave:
//! a committed prefix, one failed call, nothing after it.

use crate::error::{Error, Result};
use std::sync::{Condvar, Mutex};

struct GateState {
    /// The slot currently admitted.
    next: u64,
    /// Slots `>= closed_at` fail with [`Error::Cancelled`] instead of
    /// running.
    closed_at: Option<u64>,
}

/// A sequencer admitting pipelined calls one slot at a time, in slot order.
///
/// Create one gate per pipelined phase; number the phase's calls with
/// consecutive slots starting at 0. See the module docs for the contract.
#[derive(Debug)]
pub struct IssueGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl std::fmt::Debug for GateState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateState")
            .field("next", &self.next)
            .field("closed_at", &self.closed_at)
            .finish()
    }
}

impl Default for IssueGate {
    fn default() -> Self {
        IssueGate::new()
    }
}

impl IssueGate {
    /// A fresh gate admitting slot 0 first.
    pub fn new() -> Self {
        IssueGate {
            state: Mutex::new(GateState { next: 0, closed_at: None }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until slot `slot` is admitted, then returns the turn token.
    ///
    /// Errors with [`Error::Cancelled`] if the gate was closed at or below
    /// `slot` (an earlier slot failed), and with [`Error::InvalidRequest`]
    /// if `slot` was already taken — slots are use-once and must be issued
    /// consecutively.
    pub fn turn(&self, slot: u64) -> Result<IssueTurn<'_>> {
        let mut s = self.state.lock().expect("issue gate lock");
        loop {
            if s.closed_at.is_some_and(|c| slot >= c) {
                return Err(Error::Cancelled(format!(
                    "issue slot {slot}: an earlier pipelined call failed"
                )));
            }
            if slot < s.next {
                return Err(Error::InvalidRequest(format!(
                    "issue slot {slot} already taken (next is {})",
                    s.next
                )));
            }
            if s.next == slot {
                return Ok(IssueTurn { gate: self, slot, completed: false });
            }
            s = self.cv.wait(s).expect("issue gate wait");
        }
    }

    /// Closes the gate: slots `>= slot` will fail with
    /// [`Error::Cancelled`]; slots below proceed normally. Idempotent
    /// (keeps the lowest close point). Used by the pipeline driver to
    /// cancel in-flight work past the first failure.
    pub fn close_from(&self, slot: u64) {
        let mut s = self.state.lock().expect("issue gate lock");
        s.closed_at = Some(s.closed_at.map_or(slot, |c| c.min(slot)));
        self.cv.notify_all();
    }

    /// The slot the gate would admit next (diagnostics and tests).
    pub fn admitted(&self) -> u64 {
        self.state.lock().expect("issue gate lock").next
    }
}

/// Possession of the gate for one slot: the holder's effect is the next in
/// the global order.
///
/// Call [`complete`](IssueTurn::complete) once the effect is done to admit
/// the next slot. Dropping the turn without completing it means the call
/// failed: the gate closes for every later slot (see the module docs).
#[derive(Debug)]
pub struct IssueTurn<'a> {
    gate: &'a IssueGate,
    slot: u64,
    completed: bool,
}

impl IssueTurn<'_> {
    /// The slot this turn holds.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Marks the effect done and admits the next slot.
    pub fn complete(mut self) {
        self.completed = true;
        let mut s = self.gate.state.lock().expect("issue gate lock");
        s.next = self.slot + 1;
        self.gate.cv.notify_all();
    }
}

impl Drop for IssueTurn<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // The call behind this turn failed: advance past it so waiters
        // wake, and close the gate so they observe the failure instead of
        // issuing their own effects.
        let mut s = self.gate.state.lock().expect("issue gate lock");
        s.next = self.slot + 1;
        s.closed_at = Some(s.closed_at.map_or(self.slot + 1, |c| c.min(self.slot + 1)));
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn turns_admit_in_slot_order_across_threads() {
        let gate = IssueGate::new();
        let effects = Mutex::new(Vec::new());
        // Take turns from threads in scrambled spawn order; effects must
        // still land 0, 1, 2, ..., regardless of scheduling.
        std::thread::scope(|scope| {
            for slot in [3u64, 1, 4, 0, 2] {
                let gate = &gate;
                let effects = &effects;
                scope.spawn(move || {
                    let turn = gate.turn(slot).unwrap();
                    effects.lock().unwrap().push(slot);
                    turn.complete();
                });
            }
        });
        assert_eq!(*effects.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(gate.admitted(), 5);
    }

    #[test]
    fn dropped_turn_closes_later_slots_only() {
        let gate = IssueGate::new();
        let ran = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for slot in 0..4u64 {
                let gate = &gate;
                let ran = &ran;
                scope.spawn(move || match gate.turn(slot) {
                    Ok(turn) => {
                        if slot == 1 {
                            drop(turn); // "the call failed"
                        } else {
                            ran.fetch_add(1, Ordering::SeqCst);
                            turn.complete();
                        }
                    }
                    Err(e) => {
                        assert!(matches!(e, Error::Cancelled(_)), "slot {slot}: {e}");
                        assert!(slot >= 2, "only slots after the failure cancel");
                    }
                });
            }
        });
        // Slot 0 ran; slots 2 and 3 were cancelled.
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn close_from_is_idempotent_and_keeps_lowest() {
        let gate = IssueGate::new();
        gate.close_from(5);
        gate.close_from(3);
        gate.close_from(9);
        gate.turn(0).unwrap().complete();
        gate.turn(1).unwrap().complete();
        gate.turn(2).unwrap().complete();
        assert!(matches!(gate.turn(3), Err(Error::Cancelled(_))));
    }

    #[test]
    fn reused_slot_rejected() {
        let gate = IssueGate::new();
        gate.turn(0).unwrap().complete();
        assert!(matches!(gate.turn(0), Err(Error::InvalidRequest(_))));
    }
}
