//! The [`CrowdPlatform`] trait — what Reprowd's client library codes against.
//!
//! Mirrors the subset of the PyBossa API the original system uses:
//! create a project, publish tasks into it, poll for completion, fetch task
//! runs. Three additions serve the reproduction:
//!
//! * **API-call accounting** ([`CrowdPlatform::api_calls`]) — the paper's
//!   sharable property is "rerunning Bob's code issues no new crowd work",
//!   which the experiments verify by counting calls.
//! * **Explicit progress** ([`CrowdPlatform::step`]) — a simulated crowd
//!   produces answers only when the event loop advances; a real platform
//!   would return `false` ("nothing to do locally") and rely on wall-clock
//!   polling.
//! * **Bulk operations** ([`CrowdPlatform::publish_tasks`],
//!   [`CrowdPlatform::fetch_runs_bulk`],
//!   [`CrowdPlatform::are_complete`]) — the batched pipeline publishes,
//!   probes, and fetches in chunks, so end-to-end cost stops scaling
//!   linearly in round-trips. Implementations that override the defaults
//!   count one API call per bulk publish/fetch request, matching how real
//!   bulk endpoints bill (status probes stay free, like `is_complete`).

use crate::error::{Error, Result};
use crate::gate::IssueGate;
use crate::types::{Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec};

/// Counts how many of `tasks` are still open given an
/// [`are_complete`](CrowdPlatform::are_complete) status vector, failing
/// with [`Error::UnknownTask`] on ids the platform does not know. Shared
/// by the trait's default driver and platform-specific overrides.
pub(crate) fn still_open(tasks: &[TaskId], status: &[Option<bool>]) -> Result<usize> {
    let mut open = 0;
    for (i, st) in status.iter().enumerate() {
        match st {
            None => return Err(Error::UnknownTask(tasks[i])),
            Some(false) => open += 1,
            Some(true) => {}
        }
    }
    Ok(open)
}

/// A crowdsourcing platform: projects, tasks, task runs.
///
/// All methods take `&self`; implementations are internally synchronized so
/// a `CrowdContext` can be shared across operator pipelines.
///
/// # Thread safety and the pipelined contract
///
/// The pipelined execution engine invokes the `*_pipelined` bulk variants
/// from several threads at once, so implementations must tolerate
/// concurrent bulk calls (every in-tree platform serializes internally; the
/// sharded simulator takes its locks in a fixed global order — registry,
/// then shards by ascending index — so mixed concurrent bulk publishes,
/// fetches, and probes cannot deadlock). Determinism does **not** rest on
/// implementations being order-insensitive: each pipelined variant's
/// default wraps the call's *effect* in an [`IssueGate`] turn, so whatever
/// a platform does — allocate ids, tick clocks, charge budgets — happens in
/// the caller's slot order, and a pipelined run issues the platform the
/// **exact call sequence a sequential run issues**, at every depth.
/// Platforms whose calls are dominated by wire latency (see
/// [`LatencyPlatform`](crate::latency::LatencyPlatform)) override the
/// variants to keep only the effect inside the turn and wait out the wire
/// time outside it — that is where overlapping depth turns into wall-clock
/// speedup.
pub trait CrowdPlatform: Send + Sync {
    /// Implementation name (for manifests/logs).
    fn name(&self) -> &str;

    /// Creates a project and returns its id. Counts as one API call.
    fn create_project(&self, name: &str) -> Result<ProjectId>;

    /// Looks up a project.
    fn project(&self, id: ProjectId) -> Result<Project>;

    /// Publishes one task. Counts as one API call.
    fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task>;

    /// Publishes many tasks in one request.
    ///
    /// The default implementation is sequential [`publish_task`] calls
    /// (one API call *per spec*), failing fast on the first error — tasks
    /// already accepted stay accepted, exactly how a remote API behaves
    /// when the client dies mid-loop. Platforms with a native bulk
    /// endpoint ([`SimPlatform`], [`MockPlatform`]) override this with an
    /// **atomic** one-API-call implementation: either every spec is
    /// accepted (tasks returned in spec order, ids ascending) or none is.
    /// Publishing an empty batch is free and issues no API call.
    ///
    /// Task ids, payloads, and timestamps are identical to what the same
    /// specs published one-by-one would produce; only the API-call count
    /// differs. The batched client pipeline relies on this to keep
    /// collected results bit-identical across batch sizes.
    ///
    /// [`publish_task`]: CrowdPlatform::publish_task
    /// [`SimPlatform`]: crate::SimPlatform
    /// [`MockPlatform`]: crate::MockPlatform
    fn publish_tasks(&self, project: ProjectId, specs: Vec<TaskSpec>) -> Result<Vec<Task>> {
        let mut out = Vec::with_capacity(specs.len());
        for spec in specs {
            out.push(self.publish_task(project, spec)?);
        }
        Ok(out)
    }

    /// Fetches a task's current state. Counts as one API call.
    fn task(&self, id: TaskId) -> Result<Task>;

    /// Fetches all runs collected for a task so far. Counts as one API call.
    fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>>;

    /// Fetches the runs of many tasks in one request, in input order.
    ///
    /// The default implementation is sequential [`fetch_runs`] calls (one
    /// API call per task). Platforms with a native bulk endpoint override
    /// this to serve the whole request as **one** API call from a single
    /// consistent snapshot; if any listed task is unknown the whole call
    /// fails with [`Error::UnknownTask`] and nothing is returned. Fetching
    /// an empty batch is free and issues no API call.
    ///
    /// [`fetch_runs`]: CrowdPlatform::fetch_runs
    fn fetch_runs_bulk(&self, tasks: &[TaskId]) -> Result<Vec<Vec<TaskRun>>> {
        let mut out = Vec::with_capacity(tasks.len());
        for &t in tasks {
            out.push(self.fetch_runs(t)?);
        }
        Ok(out)
    }

    /// True if the task has met its redundancy target.
    ///
    /// **Status probes are free**: neither `is_complete` nor
    /// [`are_complete`](CrowdPlatform::are_complete) counts toward
    /// [`api_calls`](CrowdPlatform::api_calls) on any in-process platform
    /// ([`FailingPlatform`](crate::FailingPlatform) does not charge its
    /// budget for them either). `api_calls` measures the paper's sharable
    /// property — *crowd work requested* — and a poll requests none. A
    /// real remote adapter still pays wall-clock round-trips to poll, which
    /// is why the batched pipeline probes per batch and meters those
    /// round-trips in its own client-side ledger
    /// (`ExecutionContext::metrics`), never here. Pinned by the
    /// `status_probes_are_free_on_every_platform` test.
    fn is_complete(&self, task: TaskId) -> Result<bool>;

    /// Reports completion for many tasks in one request, in input order:
    /// `Some(true)` complete, `Some(false)` still open, `None` unknown to
    /// the platform (e.g. the platform restarted and lost it — callers
    /// use this to decide what to republish).
    ///
    /// The default implementation is sequential [`is_complete`] calls,
    /// mapping [`Error::UnknownTask`] to `None`. Like `is_complete`, the
    /// in-process platforms do not count this as an API call; a real
    /// remote adapter would serve it as **one** round-trip, which is why
    /// the batched pipeline probes completion through this method rather
    /// than per row.
    ///
    /// [`is_complete`]: CrowdPlatform::is_complete
    fn are_complete(&self, tasks: &[TaskId]) -> Result<Vec<Option<bool>>> {
        tasks
            .iter()
            .map(|&t| match self.is_complete(t) {
                Ok(done) => Ok(Some(done)),
                Err(Error::UnknownTask(_)) => Ok(None),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Makes internal progress (simulated crowd work). Returns `false` when
    /// there is nothing further to process. Not an API call.
    fn step(&self) -> Result<bool>;

    /// Drives [`step`](CrowdPlatform::step) until every listed task is
    /// complete. Errors with [`Error::Starved`] if the platform goes
    /// quiescent with listed tasks still open, and with
    /// [`Error::UnknownTask`] if a listed task does not exist.
    ///
    /// The default drains to quiescence — one completion probe, then
    /// `step` until it returns `false`, then one final probe — instead of
    /// re-probing every listed task per step, which made driving n tasks
    /// O(n·steps). Unlike that historical per-step loop, draining may
    /// progress *unlisted* open tasks past the point where the listed ones
    /// complete; this never changes already-completed tasks (their runs
    /// are immutable), only how far still-open ones have advanced when the
    /// call returns. Platforms with internal parallelism override this
    /// with a faster driver ([`SimPlatform`] drains each of its shards on
    /// its own thread).
    ///
    /// [`SimPlatform`]: crate::SimPlatform
    fn run_until_complete(&self, tasks: &[TaskId]) -> Result<()> {
        if still_open(tasks, &self.are_complete(tasks)?)? == 0 {
            return Ok(());
        }
        while self.step()? {}
        let open = still_open(tasks, &self.are_complete(tasks)?)?;
        if open > 0 {
            return Err(Error::Starved(format!(
                "no further progress possible with {open} tasks still open"
            )));
        }
        Ok(())
    }

    /// Pipelined bulk publish: [`publish_tasks`](CrowdPlatform::publish_tasks)
    /// whose *effect* (id allocation, registration, accounting) is
    /// serialized into `order`'s slot sequence, so several batches can be
    /// on the wire at once while the platform still observes them in batch
    /// order — the property the pipelined engine's bit-for-bit determinism
    /// rests on.
    ///
    /// The default takes the turn around the entire call (correct for any
    /// platform, no overlap). Latency-bound platforms override it to wait
    /// out the wire time outside the turn. A failed call drops its turn,
    /// which cancels every later slot — a pipelined failure leaves exactly
    /// the platform state of a sequential run stopping at the same batch.
    fn publish_tasks_pipelined(
        &self,
        project: ProjectId,
        specs: Vec<TaskSpec>,
        order: &IssueGate,
        slot: u64,
    ) -> Result<Vec<Task>> {
        let turn = order.turn(slot)?;
        let out = self.publish_tasks(project, specs)?;
        turn.complete();
        Ok(out)
    }

    /// Pipelined bulk fetch: [`fetch_runs_bulk`](CrowdPlatform::fetch_runs_bulk)
    /// with its effect (API-call/budget accounting, snapshot) in slot
    /// order. See [`publish_tasks_pipelined`](CrowdPlatform::publish_tasks_pipelined)
    /// for the contract.
    fn fetch_runs_bulk_pipelined(
        &self,
        tasks: &[TaskId],
        order: &IssueGate,
        slot: u64,
    ) -> Result<Vec<Vec<TaskRun>>> {
        let turn = order.turn(slot)?;
        let out = self.fetch_runs_bulk(tasks)?;
        turn.complete();
        Ok(out)
    }

    /// Pipelined bulk status probe: [`are_complete`](CrowdPlatform::are_complete)
    /// in slot order. Free like every status probe.
    fn are_complete_pipelined(
        &self,
        tasks: &[TaskId],
        order: &IssueGate,
        slot: u64,
    ) -> Result<Vec<Option<bool>>> {
        let turn = order.turn(slot)?;
        let out = self.are_complete(tasks)?;
        turn.complete();
        Ok(out)
    }

    /// Pipelined completion wait:
    /// [`run_until_complete`](CrowdPlatform::run_until_complete) in slot
    /// order. On a simulated platform the wait *drives* the crowd (a
    /// mutation), so streaming execution orders it like any other effect;
    /// on a remote platform it is a poll loop whose wire time an override
    /// can serve outside the turn.
    fn run_until_complete_pipelined(
        &self,
        tasks: &[TaskId],
        order: &IssueGate,
        slot: u64,
    ) -> Result<()> {
        let turn = order.turn(slot)?;
        self.run_until_complete(tasks)?;
        turn.complete();
        Ok(())
    }

    /// Number of API calls served so far (project creation, publishes,
    /// task/run fetches). The reproducibility experiments' core metric.
    fn api_calls(&self) -> u64;

    /// Current platform clock (simulated milliseconds).
    fn now(&self) -> SimTime;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockPlatform;

    /// A platform that deliberately does NOT override the bulk defaults,
    /// so the trait's sequential fallbacks stay covered.
    struct NoBulk(MockPlatform);

    impl CrowdPlatform for NoBulk {
        fn name(&self) -> &str {
            "no-bulk"
        }
        fn create_project(&self, name: &str) -> Result<ProjectId> {
            self.0.create_project(name)
        }
        fn project(&self, id: ProjectId) -> Result<Project> {
            self.0.project(id)
        }
        fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task> {
            self.0.publish_task(project, spec)
        }
        fn task(&self, id: TaskId) -> Result<Task> {
            self.0.task(id)
        }
        fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>> {
            self.0.fetch_runs(task)
        }
        fn is_complete(&self, task: TaskId) -> Result<bool> {
            self.0.is_complete(task)
        }
        fn step(&self) -> Result<bool> {
            self.0.step()
        }
        fn api_calls(&self) -> u64 {
            self.0.api_calls()
        }
        fn now(&self) -> SimTime {
            self.0.now()
        }
    }

    fn specs(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec { payload: serde_json::json!({ "i": i }), n_assignments: 1 })
            .collect()
    }

    #[test]
    fn default_publish_tasks_is_sequential() {
        let p = NoBulk(MockPlatform::echo());
        let proj = p.create_project("t").unwrap();
        let tasks = p.publish_tasks(proj, specs(4)).unwrap();
        assert_eq!(tasks.len(), 4);
        // ids are distinct and ascending
        for w in tasks.windows(2) {
            assert!(w[0].id < w[1].id);
        }
        // The fallback pays one API call per spec (plus project creation).
        assert_eq!(p.api_calls(), 5);
    }

    #[test]
    fn default_fetch_runs_bulk_is_sequential() {
        let p = NoBulk(MockPlatform::echo());
        let proj = p.create_project("t").unwrap();
        let tasks = p.publish_tasks(proj, specs(3)).unwrap();
        let ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
        p.run_until_complete(&ids).unwrap();
        let before = p.api_calls();
        let runs = p.fetch_runs_bulk(&ids).unwrap();
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.len() == 1));
        assert_eq!(p.api_calls() - before, 3, "fallback = one call per task");
    }

    #[test]
    fn bulk_overrides_equal_sequential_but_one_call() {
        // Same specs through the sequential fallback and the native bulk
        // endpoint: identical tasks and runs, different API-call counts.
        let seq = NoBulk(MockPlatform::echo());
        let bulk = MockPlatform::echo();
        let (ps, pb) = (seq.create_project("t").unwrap(), bulk.create_project("t").unwrap());
        let ts = seq.publish_tasks(ps, specs(5)).unwrap();
        let tb = bulk.publish_tasks(pb, specs(5)).unwrap();
        assert_eq!(ts, tb, "bulk publish must register identical tasks");
        let ids: Vec<TaskId> = ts.iter().map(|t| t.id).collect();
        seq.run_until_complete(&ids).unwrap();
        bulk.run_until_complete(&ids).unwrap();
        assert_eq!(seq.fetch_runs_bulk(&ids).unwrap(), bulk.fetch_runs_bulk(&ids).unwrap());
        // create(1) + publishes + fetches: 1+5+5 vs 1+1+1.
        assert_eq!(seq.api_calls(), 11);
        assert_eq!(bulk.api_calls(), 3);
    }

    #[test]
    fn are_complete_maps_unknown_to_none() {
        // Both the sequential default and the mock's native override must
        // agree: Some(done) for known tasks, None for unknown ids.
        for p in [
            Box::new(NoBulk(MockPlatform::echo())) as Box<dyn CrowdPlatform>,
            Box::new(MockPlatform::echo()),
        ] {
            let proj = p.create_project("t").unwrap();
            let tasks = p.publish_tasks(proj, specs(2)).unwrap();
            p.run_until_complete(&[tasks[0].id]).unwrap();
            let status = p.are_complete(&[tasks[0].id, 999, tasks[1].id]).unwrap();
            assert_eq!(status[0], Some(true), "{}", p.name());
            assert_eq!(status[1], None, "{}", p.name());
            assert!(status[2].is_some(), "{}", p.name());
        }
    }

    #[test]
    fn status_probes_are_free_on_every_platform() {
        // The one probe-accounting semantics, pinned across every
        // in-process platform: is_complete/are_complete never count toward
        // api_calls (and never charge FailingPlatform's budget).
        use crate::failing::FailingPlatform;
        use crate::SimPlatform;
        use std::sync::Arc;

        let probe_storm = |p: &dyn CrowdPlatform| {
            let proj = p.create_project("t").unwrap();
            let tasks = p.publish_tasks(proj, specs(3)).unwrap();
            let ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
            p.run_until_complete(&ids).unwrap();
            let before = p.api_calls();
            for &t in &ids {
                assert_eq!(p.is_complete(t), Ok(true));
            }
            let _ = p.are_complete(&ids).unwrap();
            assert_eq!(p.api_calls(), before, "{}: probes must be free", p.name());
        };
        probe_storm(&MockPlatform::echo());
        probe_storm(&SimPlatform::quick(3, 0.9, 1));
        probe_storm(&SimPlatform::sharded(8, 0.9, 1, 2));

        let failing = FailingPlatform::new(Arc::new(MockPlatform::echo()), 100);
        probe_storm(&failing);
        // run_until_complete's own probes are free too: only create (1)
        // and the bulk publish (1) were charged.
        assert_eq!(failing.remaining(), 98);
    }

    #[test]
    fn run_until_complete_unknown_task_errors() {
        let p = MockPlatform::echo();
        let proj = p.create_project("t").unwrap();
        let t = p.publish_tasks(proj, specs(1)).unwrap().remove(0);
        assert_eq!(
            p.run_until_complete(&[t.id, 404]).unwrap_err(),
            Error::UnknownTask(404)
        );
    }

    #[test]
    fn run_until_complete_on_mock() {
        let p = MockPlatform::echo();
        let proj = p.create_project("t").unwrap();
        let t = p
            .publish_task(
                proj,
                TaskSpec { payload: serde_json::json!("x"), n_assignments: 2 },
            )
            .unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert!(p.is_complete(t.id).unwrap());
        assert_eq!(p.fetch_runs(t.id).unwrap().len(), 2);
    }
}
