//! The [`CrowdPlatform`] trait — what Reprowd's client library codes against.
//!
//! Mirrors the subset of the PyBossa API the original system uses:
//! create a project, publish tasks into it, poll for completion, fetch task
//! runs. Two additions serve the reproduction:
//!
//! * **API-call accounting** ([`CrowdPlatform::api_calls`]) — the paper's
//!   sharable property is "rerunning Bob's code issues no new crowd work",
//!   which the experiments verify by counting calls.
//! * **Explicit progress** ([`CrowdPlatform::step`]) — a simulated crowd
//!   produces answers only when the event loop advances; a real platform
//!   would return `false` ("nothing to do locally") and rely on wall-clock
//!   polling.

use crate::error::{Error, Result};
use crate::types::{Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec};

/// A crowdsourcing platform: projects, tasks, task runs.
///
/// All methods take `&self`; implementations are internally synchronized so
/// a `CrowdContext` can be shared across operator pipelines.
pub trait CrowdPlatform: Send + Sync {
    /// Implementation name (for manifests/logs).
    fn name(&self) -> &str;

    /// Creates a project and returns its id. Counts as one API call.
    fn create_project(&self, name: &str) -> Result<ProjectId>;

    /// Looks up a project.
    fn project(&self, id: ProjectId) -> Result<Project>;

    /// Publishes one task. Counts as one API call.
    fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task>;

    /// Publishes many tasks; default = sequential [`publish_task`] calls,
    /// failing fast on the first error (tasks already accepted stay
    /// accepted — exactly how a remote API behaves when the client dies
    /// mid-loop, which the crash experiments rely on).
    ///
    /// [`publish_task`]: CrowdPlatform::publish_task
    fn publish_tasks(&self, project: ProjectId, specs: Vec<TaskSpec>) -> Result<Vec<Task>> {
        let mut out = Vec::with_capacity(specs.len());
        for spec in specs {
            out.push(self.publish_task(project, spec)?);
        }
        Ok(out)
    }

    /// Fetches a task's current state. Counts as one API call.
    fn task(&self, id: TaskId) -> Result<Task>;

    /// Fetches all runs collected for a task so far. Counts as one API call.
    fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>>;

    /// True if the task has met its redundancy target.
    fn is_complete(&self, task: TaskId) -> Result<bool>;

    /// Makes internal progress (simulated crowd work). Returns `false` when
    /// there is nothing further to process. Not an API call.
    fn step(&self) -> Result<bool>;

    /// Drives [`step`](CrowdPlatform::step) until every listed task is
    /// complete. Errors with [`Error::Starved`] if progress stalls first.
    fn run_until_complete(&self, tasks: &[TaskId]) -> Result<()> {
        loop {
            let mut all_done = true;
            for &t in tasks {
                if !self.is_complete(t)? {
                    all_done = false;
                    break;
                }
            }
            if all_done {
                return Ok(());
            }
            if !self.step()? {
                return Err(Error::Starved(format!(
                    "no further progress possible with {} tasks still open",
                    tasks.len()
                )));
            }
        }
    }

    /// Number of API calls served so far (project creation, publishes,
    /// task/run fetches). The reproducibility experiments' core metric.
    fn api_calls(&self) -> u64;

    /// Current platform clock (simulated milliseconds).
    fn now(&self) -> SimTime;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockPlatform;

    #[test]
    fn default_publish_tasks_is_sequential() {
        let p = MockPlatform::echo();
        let proj = p.create_project("t").unwrap();
        let specs: Vec<TaskSpec> = (0..4)
            .map(|i| TaskSpec { payload: serde_json::json!({ "i": i }), n_assignments: 1 })
            .collect();
        let tasks = p.publish_tasks(proj, specs).unwrap();
        assert_eq!(tasks.len(), 4);
        // ids are distinct and ascending
        for w in tasks.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn run_until_complete_on_mock() {
        let p = MockPlatform::echo();
        let proj = p.create_project("t").unwrap();
        let t = p
            .publish_task(
                proj,
                TaskSpec { payload: serde_json::json!("x"), n_assignments: 2 },
            )
            .unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert!(p.is_complete(t.id).unwrap());
        assert_eq!(p.fetch_runs(t.id).unwrap().len(), 2);
    }
}
