//! The platform object model — the PyBossa-equivalent records.
//!
//! Everything a second researcher needs to *examine* an experiment lives
//! here: when a task was published, who worked on it, when they started and
//! finished, and what they answered. These records are what the CrowdData
//! `task` and `result` columns persist.

use serde::{Deserialize, Serialize};

/// Platform-assigned project identifier.
pub type ProjectId = u64;
/// Platform-assigned task identifier.
pub type TaskId = u64;
/// Worker identifier (stable across an experiment).
pub type WorkerId = u64;
/// Simulated wall-clock time in milliseconds since experiment start.
pub type SimTime = u64;

/// A project groups the tasks of one experiment/presenter pairing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Project {
    /// Platform id.
    pub id: ProjectId,
    /// Human-readable name (the experiment name).
    pub name: String,
    /// When the project was created (simulated clock).
    pub created_at: SimTime,
}

/// What a client submits to publish one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task payload shown to workers (rendered by the presenter). For the
    /// simulator, the reserved `"_sim"` field carries the answer model.
    pub payload: serde_json::Value,
    /// Distinct workers that must answer this task.
    pub n_assignments: u32,
}

/// Lifecycle of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskStatus {
    /// Fewer than `n_assignments` runs collected.
    Open,
    /// Redundancy met; no more runs will be added.
    Completed,
}

/// A published task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Platform id.
    pub id: TaskId,
    /// Owning project.
    pub project_id: ProjectId,
    /// Payload as submitted.
    pub payload: serde_json::Value,
    /// Redundancy requested.
    pub n_assignments: u32,
    /// When the platform accepted the task (lineage: "when were the tasks
    /// published?").
    pub published_at: SimTime,
    /// Current lifecycle state.
    pub status: TaskStatus,
}

/// One worker's answer to one task (PyBossa's "task run").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRun {
    /// The task answered.
    pub task_id: TaskId,
    /// The worker who answered (lineage: "which workers did the tasks?").
    pub worker_id: WorkerId,
    /// The answer payload.
    pub answer: serde_json::Value,
    /// When the worker picked the task up.
    pub assigned_at: SimTime,
    /// When the answer was submitted.
    pub submitted_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_serde_roundtrip() {
        let t = Task {
            id: 5,
            project_id: 1,
            payload: serde_json::json!({"url": "img1.jpg"}),
            n_assignments: 3,
            published_at: 1234,
            status: TaskStatus::Open,
        };
        let s = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<Task>(&s).unwrap(), t);
    }

    #[test]
    fn task_run_serde_roundtrip() {
        let r = TaskRun {
            task_id: 5,
            worker_id: 77,
            answer: serde_json::json!("Yes"),
            assigned_at: 10,
            submitted_at: 950,
        };
        let s = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<TaskRun>(&s).unwrap(), r);
    }

    #[test]
    fn status_roundtrip() {
        for st in [TaskStatus::Open, TaskStatus::Completed] {
            let s = serde_json::to_string(&st).unwrap();
            assert_eq!(serde_json::from_str::<TaskStatus>(&s).unwrap(), st);
        }
    }
}
