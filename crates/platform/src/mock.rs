//! A scriptable in-memory platform for unit tests.
//!
//! [`MockPlatform`] completes tasks on [`step`](crate::CrowdPlatform::step)
//! using a configurable answer function, so client-library tests can
//! exercise publish/collect logic without the full simulator.

use crate::error::{Error, Result};
use crate::platform::CrowdPlatform;
use crate::types::{Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec, TaskStatus};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Produces the `k`-th worker's answer for a task payload.
pub type AnswerFn = Box<dyn Fn(&serde_json::Value, u32) -> serde_json::Value + Send + Sync>;

struct MockState {
    projects: HashMap<ProjectId, Project>,
    tasks: HashMap<TaskId, Task>,
    runs: HashMap<TaskId, Vec<TaskRun>>,
    pending: Vec<TaskId>,
    next_project: ProjectId,
    next_task: TaskId,
    clock: SimTime,
}

/// Scriptable platform: each `step` completes one pending task by asking
/// the answer function for each of its `n_assignments` answers.
pub struct MockPlatform {
    state: Mutex<MockState>,
    answer_fn: AnswerFn,
    calls: AtomicU64,
}

impl MockPlatform {
    /// Builds a mock whose workers answer with `answer_fn(payload, k)`.
    pub fn new(answer_fn: AnswerFn) -> Self {
        MockPlatform {
            state: Mutex::new(MockState {
                projects: HashMap::new(),
                tasks: HashMap::new(),
                runs: HashMap::new(),
                pending: Vec::new(),
                next_project: 1,
                next_task: 1,
                clock: 0,
            }),
            answer_fn,
            calls: AtomicU64::new(0),
        }
    }

    /// A mock whose workers echo the task payload back as the answer.
    pub fn echo() -> Self {
        MockPlatform::new(Box::new(|payload, _k| payload.clone()))
    }

    /// A mock whose workers answer a constant value.
    pub fn constant(answer: serde_json::Value) -> Self {
        MockPlatform::new(Box::new(move |_payload, _k| answer.clone()))
    }

    fn bump(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
}

impl CrowdPlatform for MockPlatform {
    fn name(&self) -> &str {
        "mock"
    }

    fn create_project(&self, name: &str) -> Result<ProjectId> {
        self.bump();
        let mut s = self.state.lock();
        let id = s.next_project;
        s.next_project += 1;
        let created_at = s.clock;
        s.projects.insert(id, Project { id, name: name.to_string(), created_at });
        Ok(id)
    }

    fn project(&self, id: ProjectId) -> Result<Project> {
        self.state.lock().projects.get(&id).cloned().ok_or(Error::UnknownProject(id))
    }

    fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task> {
        self.bump();
        if spec.n_assignments == 0 {
            return Err(Error::InvalidRequest("n_assignments must be positive".into()));
        }
        let mut s = self.state.lock();
        if !s.projects.contains_key(&project) {
            return Err(Error::UnknownProject(project));
        }
        let id = s.next_task;
        s.next_task += 1;
        s.clock += 1;
        let task = Task {
            id,
            project_id: project,
            payload: spec.payload,
            n_assignments: spec.n_assignments,
            published_at: s.clock,
            status: TaskStatus::Open,
        };
        s.tasks.insert(id, task.clone());
        s.runs.insert(id, Vec::new());
        s.pending.push(id);
        Ok(task)
    }

    /// Native bulk publish: one API call, atomic. Specs are validated up
    /// front, then registered exactly as sequential
    /// [`publish_task`](CrowdPlatform::publish_task) calls would be
    /// (including the per-task clock tick), so results are bit-identical
    /// across batch sizes.
    fn publish_tasks(&self, project: ProjectId, specs: Vec<TaskSpec>) -> Result<Vec<Task>> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        self.bump();
        if specs.iter().any(|s| s.n_assignments == 0) {
            return Err(Error::InvalidRequest("n_assignments must be positive".into()));
        }
        let mut s = self.state.lock();
        if !s.projects.contains_key(&project) {
            return Err(Error::UnknownProject(project));
        }
        let mut out = Vec::with_capacity(specs.len());
        for spec in specs {
            let id = s.next_task;
            s.next_task += 1;
            s.clock += 1;
            let task = Task {
                id,
                project_id: project,
                payload: spec.payload,
                n_assignments: spec.n_assignments,
                published_at: s.clock,
                status: TaskStatus::Open,
            };
            s.tasks.insert(id, task.clone());
            s.runs.insert(id, Vec::new());
            s.pending.push(id);
            out.push(task);
        }
        Ok(out)
    }

    fn task(&self, id: TaskId) -> Result<Task> {
        self.bump();
        self.state.lock().tasks.get(&id).cloned().ok_or(Error::UnknownTask(id))
    }

    fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>> {
        self.bump();
        self.state.lock().runs.get(&task).cloned().ok_or(Error::UnknownTask(task))
    }

    /// Native bulk fetch: one API call, one consistent snapshot; an
    /// unknown id fails the whole call.
    fn fetch_runs_bulk(&self, tasks: &[TaskId]) -> Result<Vec<Vec<TaskRun>>> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        self.bump();
        let s = self.state.lock();
        tasks
            .iter()
            .map(|&t| s.runs.get(&t).cloned().ok_or(Error::UnknownTask(t)))
            .collect()
    }

    fn is_complete(&self, task: TaskId) -> Result<bool> {
        let s = self.state.lock();
        let t = s.tasks.get(&task).ok_or(Error::UnknownTask(task))?;
        Ok(t.status == TaskStatus::Completed)
    }

    /// Native bulk status probe: one lock acquisition, one snapshot.
    fn are_complete(&self, tasks: &[TaskId]) -> Result<Vec<Option<bool>>> {
        let s = self.state.lock();
        Ok(tasks
            .iter()
            .map(|t| s.tasks.get(t).map(|task| task.status == TaskStatus::Completed))
            .collect())
    }

    fn step(&self) -> Result<bool> {
        let mut s = self.state.lock();
        let Some(task_id) = s.pending.first().copied() else {
            return Ok(false);
        };
        s.pending.remove(0);
        let task = s.tasks.get(&task_id).cloned().ok_or(Error::UnknownTask(task_id))?;
        for k in 0..task.n_assignments {
            s.clock += 1;
            let answer = (self.answer_fn)(&task.payload, k);
            let assigned_at = s.clock;
            s.clock += 1;
            let submitted_at = s.clock;
            s.runs.get_mut(&task_id).expect("runs vec exists").push(TaskRun {
                task_id,
                // Mock workers are numbered deterministically per assignment
                // slot; enough for lineage tests.
                worker_id: 1000 + k as u64,
                answer,
                assigned_at,
                submitted_at,
            });
        }
        s.tasks.get_mut(&task_id).expect("task exists").status = TaskStatus::Completed;
        Ok(true)
    }

    fn api_calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn now(&self) -> SimTime {
        self.state.lock().clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_answers_payload() {
        let p = MockPlatform::echo();
        let proj = p.create_project("exp").unwrap();
        let t = p
            .publish_task(proj, TaskSpec { payload: serde_json::json!("img1"), n_assignments: 3 })
            .unwrap();
        assert!(p.step().unwrap());
        let runs = p.fetch_runs(t.id).unwrap();
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.answer == serde_json::json!("img1")));
        // Distinct mock workers per slot.
        let workers: std::collections::HashSet<u64> = runs.iter().map(|r| r.worker_id).collect();
        assert_eq!(workers.len(), 3);
    }

    #[test]
    fn api_call_accounting() {
        let p = MockPlatform::echo();
        assert_eq!(p.api_calls(), 0);
        let proj = p.create_project("exp").unwrap(); // 1
        let t = p
            .publish_task(proj, TaskSpec { payload: serde_json::json!(1), n_assignments: 1 })
            .unwrap(); // 2
        let _ = p.task(t.id).unwrap(); // 3
        let _ = p.fetch_runs(t.id).unwrap(); // 4
        p.step().unwrap(); // not an API call
        assert_eq!(p.api_calls(), 4);
    }

    #[test]
    fn unknown_ids_error() {
        let p = MockPlatform::echo();
        assert_eq!(p.project(9).unwrap_err(), Error::UnknownProject(9));
        assert_eq!(p.task(9).unwrap_err(), Error::UnknownTask(9));
        assert_eq!(p.fetch_runs(9).unwrap_err(), Error::UnknownTask(9));
        let err = p
            .publish_task(42, TaskSpec { payload: serde_json::json!(1), n_assignments: 1 })
            .unwrap_err();
        assert_eq!(err, Error::UnknownProject(42));
    }

    #[test]
    fn zero_assignments_rejected() {
        let p = MockPlatform::echo();
        let proj = p.create_project("exp").unwrap();
        let err = p
            .publish_task(proj, TaskSpec { payload: serde_json::json!(1), n_assignments: 0 })
            .unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)));
    }

    #[test]
    fn step_returns_false_when_idle() {
        let p = MockPlatform::echo();
        assert!(!p.step().unwrap());
    }

    #[test]
    fn timestamps_are_monotone() {
        let p = MockPlatform::echo();
        let proj = p.create_project("exp").unwrap();
        let t = p
            .publish_task(proj, TaskSpec { payload: serde_json::json!(1), n_assignments: 2 })
            .unwrap();
        p.step().unwrap();
        let runs = p.fetch_runs(t.id).unwrap();
        for r in &runs {
            assert!(t.published_at <= r.assigned_at);
            assert!(r.assigned_at < r.submitted_at);
        }
    }

    #[test]
    fn constant_mock() {
        let p = MockPlatform::constant(serde_json::json!("Yes"));
        let proj = p.create_project("exp").unwrap();
        let t = p
            .publish_task(proj, TaskSpec { payload: serde_json::json!("img"), n_assignments: 2 })
            .unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert!(p.fetch_runs(t.id).unwrap().iter().all(|r| r.answer == serde_json::json!("Yes")));
    }
}
