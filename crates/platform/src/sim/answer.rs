//! Ground-truth-driven answer models.
//!
//! A human worker looks at the task and knows something about the answer;
//! a simulated worker must be told. Each task payload carries a reserved
//! `"_sim"` field — an [`AnswerModel`] describing the hidden truth and how
//! hard it is to see — which the engine combines with the worker's profile
//! to sample an answer. The `"_sim"` field is the *simulation seam*: the
//! rest of the payload is exactly what a real platform would show workers.

use crate::sim::worker::WorkerProfile;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Key of the reserved simulation field inside task payloads.
pub const SIM_FIELD: &str = "_sim";

/// How simulated workers answer a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AnswerModel {
    /// Choose one of `labels`; the correct one is `truth` (an index).
    /// `difficulty` ∈ \[0,1\] scales the worker's effective accuracy down
    /// to chance at 1.0.
    Label {
        /// Index of the correct label.
        truth: usize,
        /// Label strings workers answer with.
        labels: Vec<String>,
        /// Item difficulty in `[0, 1]`.
        difficulty: f64,
    },
    /// Pairwise comparison; `p_first` is the Bradley–Terry probability that
    /// an ideal worker prefers the first element.
    Compare {
        /// P(ideal worker answers "first").
        p_first: f64,
    },
    /// Match/no-match judgment on a candidate pair (entity resolution).
    /// `ambiguity` plays the role of difficulty.
    Match {
        /// Ground truth: do the two records denote the same entity?
        is_match: bool,
        /// How confusable the pair is, in `[0, 1]`.
        ambiguity: f64,
    },
    /// Every worker answers exactly this value (plumbing/testing).
    Fixed {
        /// The canned answer.
        value: serde_json::Value,
    },
}

impl AnswerModel {
    /// Embeds the model into a task payload under [`SIM_FIELD`].
    pub fn embed(&self, mut payload: serde_json::Value) -> serde_json::Value {
        if !payload.is_object() {
            payload = serde_json::json!({ "content": payload });
        }
        payload[SIM_FIELD] = serde_json::to_value(self).expect("model serializes");
        payload
    }

    /// Extracts the model from a payload, if present.
    pub fn extract(payload: &serde_json::Value) -> Option<AnswerModel> {
        payload.get(SIM_FIELD).and_then(|v| serde_json::from_value(v.clone()).ok())
    }

    /// Samples `worker`'s answer. Deterministic given the RNG state.
    pub fn sample(&self, worker: &WorkerProfile, rng: &mut StdRng) -> serde_json::Value {
        match self {
            AnswerModel::Label { truth, labels, difficulty } => {
                let k = labels.len().max(2);
                // Bias fires first: a biased worker ignores the item.
                if let Some((bias_label, strength)) = worker.bias {
                    if rng.gen::<f64>() < strength {
                        let l = bias_label.min(labels.len().saturating_sub(1));
                        return serde_json::json!(labels[l]);
                    }
                }
                let p_correct = effective_accuracy(worker.ability, *difficulty, k);
                let answer = if rng.gen::<f64>() < p_correct {
                    *truth
                } else {
                    // Uniform over the wrong labels.
                    let mut wrong = rng.gen_range(0..k - 1);
                    if wrong >= *truth {
                        wrong += 1;
                    }
                    wrong.min(labels.len() - 1)
                };
                serde_json::json!(labels[answer])
            }
            AnswerModel::Compare { p_first } => {
                // The worker perceives the true preference with probability
                // `ability`, otherwise flips a coin.
                let perceives = rng.gen::<f64>() < worker.ability;
                let says_first = if perceives {
                    rng.gen::<f64>() < *p_first
                } else {
                    rng.gen::<f64>() < 0.5
                };
                serde_json::json!(if says_first { "first" } else { "second" })
            }
            AnswerModel::Match { is_match, ambiguity } => {
                let p_correct = effective_accuracy(worker.ability, *ambiguity, 2);
                let correct = rng.gen::<f64>() < p_correct;
                serde_json::json!(if correct { *is_match } else { !*is_match })
            }
            AnswerModel::Fixed { value } => value.clone(),
        }
    }
}

/// Worker accuracy degraded by item difficulty: linear interpolation from
/// `ability` (difficulty 0) down to chance `1/k` (difficulty 1).
pub fn effective_accuracy(ability: f64, difficulty: f64, k: usize) -> f64 {
    let chance = 1.0 / k.max(2) as f64;
    let d = difficulty.clamp(0.0, 1.0);
    (ability * (1.0 - d) + chance * d).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn worker(ability: f64) -> WorkerProfile {
        WorkerProfile::with_ability(7, ability)
    }

    fn label_model(truth: usize, difficulty: f64) -> AnswerModel {
        AnswerModel::Label {
            truth,
            labels: vec!["Yes".into(), "No".into()],
            difficulty,
        }
    }

    #[test]
    fn embed_extract_roundtrip() {
        let m = label_model(0, 0.3);
        let payload = m.embed(serde_json::json!({"url": "img1.jpg"}));
        assert_eq!(payload["url"], "img1.jpg");
        assert_eq!(AnswerModel::extract(&payload), Some(m));
    }

    #[test]
    fn embed_wraps_non_object_payloads() {
        let m = AnswerModel::Fixed { value: serde_json::json!(1) };
        let payload = m.embed(serde_json::json!("bare string"));
        assert_eq!(payload["content"], "bare string");
        assert!(AnswerModel::extract(&payload).is_some());
    }

    #[test]
    fn extract_absent_is_none() {
        assert_eq!(AnswerModel::extract(&serde_json::json!({"x": 1})), None);
    }

    #[test]
    fn perfect_worker_easy_task_always_right() {
        let m = label_model(1, 0.0);
        let w = worker(1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(m.sample(&w, &mut r), serde_json::json!("No"));
        }
    }

    #[test]
    fn ability_governs_empirical_accuracy() {
        let m = label_model(0, 0.0);
        let w = worker(0.8);
        let mut r = rng();
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| m.sample(&w, &mut r) == serde_json::json!("Yes"))
            .count() as f64;
        let emp = correct / n as f64;
        assert!((emp - 0.8).abs() < 0.02, "empirical accuracy {emp}");
    }

    #[test]
    fn difficulty_one_is_chance() {
        let m = label_model(0, 1.0);
        let w = worker(1.0);
        let mut r = rng();
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| m.sample(&w, &mut r) == serde_json::json!("Yes"))
            .count() as f64;
        let emp = correct / n as f64;
        assert!((emp - 0.5).abs() < 0.02, "empirical accuracy {emp}");
    }

    #[test]
    fn biased_worker_mostly_answers_bias() {
        let m = label_model(0, 0.0);
        let mut w = worker(0.9);
        w.bias = Some((1, 0.95));
        let mut r = rng();
        let n = 10_000;
        let biased =
            (0..n).filter(|_| m.sample(&w, &mut r) == serde_json::json!("No")).count() as f64;
        assert!(biased / n as f64 > 0.9);
    }

    #[test]
    fn compare_follows_bradley_terry_for_able_worker() {
        let m = AnswerModel::Compare { p_first: 0.8 };
        let w = worker(1.0);
        let mut r = rng();
        let n = 20_000;
        let firsts =
            (0..n).filter(|_| m.sample(&w, &mut r) == serde_json::json!("first")).count() as f64;
        let emp = firsts / n as f64;
        assert!((emp - 0.8).abs() < 0.02, "empirical p_first {emp}");
    }

    #[test]
    fn compare_spammer_is_coin_flip() {
        let m = AnswerModel::Compare { p_first: 0.95 };
        let w = worker(0.0); // never perceives: pure coin
        let mut r = rng();
        let n = 20_000;
        let firsts =
            (0..n).filter(|_| m.sample(&w, &mut r) == serde_json::json!("first")).count() as f64;
        let emp = firsts / n as f64;
        assert!((emp - 0.5).abs() < 0.02, "empirical p_first {emp}");
    }

    #[test]
    fn match_model_flips_with_error() {
        let m = AnswerModel::Match { is_match: true, ambiguity: 0.0 };
        let w = worker(0.7);
        let mut r = rng();
        let n = 20_000;
        let yes = (0..n).filter(|_| m.sample(&w, &mut r) == serde_json::json!(true)).count() as f64;
        let emp = yes / n as f64;
        assert!((emp - 0.7).abs() < 0.02, "empirical match accuracy {emp}");
    }

    #[test]
    fn fixed_model_constant() {
        let m = AnswerModel::Fixed { value: serde_json::json!({"a": 1}) };
        let w = worker(0.1);
        let mut r = rng();
        assert_eq!(m.sample(&w, &mut r), serde_json::json!({"a": 1}));
    }

    #[test]
    fn effective_accuracy_bounds() {
        assert_eq!(effective_accuracy(0.9, 0.0, 2), 0.9);
        assert_eq!(effective_accuracy(0.9, 1.0, 2), 0.5);
        assert!(effective_accuracy(0.9, 0.5, 2) > 0.5);
        assert!(effective_accuracy(0.9, 0.5, 2) < 0.9);
        // Multiclass chance floor.
        assert!((effective_accuracy(1.0, 1.0, 4) - 0.25).abs() < 1e-12);
    }
}
