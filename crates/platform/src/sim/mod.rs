//! The simulated crowd: worker models, answer models, and the sharded
//! event loop ([`engine`] drives one independent `shard::Shard` per
//! hash partition of the task/worker id space).

pub mod answer;
pub mod engine;
pub mod latency;
pub(crate) mod shard;
pub mod worker;
