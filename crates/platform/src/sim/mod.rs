//! The simulated crowd: worker models, answer models, and the event loop.

pub mod answer;
pub mod engine;
pub mod latency;
pub mod worker;
