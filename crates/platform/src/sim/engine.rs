//! The discrete-event simulation engine behind [`SimPlatform`].
//!
//! One [`step`](crate::CrowdPlatform::step) pops the worker with the
//! earliest availability, assigns them the oldest open task they have not
//! yet answered, samples their think-time and answer (or abandonment), and
//! advances the simulated clock. Everything is driven by one seeded RNG, so
//! a `(pool, seed, publish-order)` triple determines every task run —
//! timestamps, worker ids, and answers — exactly.

use crate::error::{Error, Result};
use crate::platform::CrowdPlatform;
use crate::sim::answer::AnswerModel;
use crate::sim::latency::lognormal;
use crate::sim::worker::WorkerPool;
use crate::types::{
    Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec, TaskStatus, WorkerId,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of a simulated platform.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The worker roster.
    pub pool: WorkerPool,
    /// RNG seed; with the same seed and call sequence, the simulation is
    /// bit-for-bit reproducible.
    pub seed: u64,
}

struct SimState {
    projects: HashMap<ProjectId, Project>,
    tasks: HashMap<TaskId, Task>,
    runs: HashMap<TaskId, Vec<TaskRun>>,
    /// Workers who already *submitted* a run for the task (the platform
    /// invariant: at most one run per worker per task).
    answered_by: HashMap<TaskId, HashSet<WorkerId>>,
    /// Open tasks in publish order (FIFO assignment).
    open: Vec<TaskId>,
    /// Workers ready to pick up tasks, keyed by availability time.
    available: BinaryHeap<Reverse<(SimTime, WorkerId)>>,
    /// Workers parked because no eligible task existed when they came up.
    parked: Vec<(WorkerId, SimTime)>,
    clock: SimTime,
    rng: StdRng,
    next_project: ProjectId,
    next_task: TaskId,
}

/// The simulated crowdsourcing platform.
pub struct SimPlatform {
    state: Mutex<SimState>,
    pool: WorkerPool,
    calls: AtomicU64,
}

impl SimPlatform {
    /// Creates a platform with the given worker pool and seed.
    pub fn new(config: SimConfig) -> Self {
        let mut available = BinaryHeap::new();
        for (i, w) in config.pool.workers.iter().enumerate() {
            // Tiny stagger so initial pickup order interleaves naturally.
            available.push(Reverse((i as SimTime, w.id)));
        }
        SimPlatform {
            state: Mutex::new(SimState {
                projects: HashMap::new(),
                tasks: HashMap::new(),
                runs: HashMap::new(),
                answered_by: HashMap::new(),
                open: Vec::new(),
                available,
                parked: Vec::new(),
                clock: 0,
                rng: StdRng::seed_from_u64(config.seed),
                next_project: 1,
                next_task: 1,
            }),
            pool: config.pool,
            calls: AtomicU64::new(0),
        }
    }

    /// Convenience constructor: `n` identical workers of `ability`.
    pub fn quick(n_workers: usize, ability: f64, seed: u64) -> Self {
        SimPlatform::new(SimConfig { pool: WorkerPool::uniform(n_workers, ability), seed })
    }

    /// The roster this platform simulates.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    fn bump(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    fn profile(&self, id: WorkerId) -> &crate::sim::worker::WorkerProfile {
        self.pool.workers.iter().find(|w| w.id == id).expect("worker in pool")
    }
}

impl CrowdPlatform for SimPlatform {
    fn name(&self) -> &str {
        "sim"
    }

    fn create_project(&self, name: &str) -> Result<ProjectId> {
        self.bump();
        let mut s = self.state.lock();
        let id = s.next_project;
        s.next_project += 1;
        let created_at = s.clock;
        s.projects.insert(id, Project { id, name: name.to_string(), created_at });
        Ok(id)
    }

    fn project(&self, id: ProjectId) -> Result<Project> {
        self.state.lock().projects.get(&id).cloned().ok_or(Error::UnknownProject(id))
    }

    fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task> {
        self.bump();
        if spec.n_assignments == 0 {
            return Err(Error::InvalidRequest("n_assignments must be positive".into()));
        }
        if spec.n_assignments as usize > self.pool.len() {
            return Err(Error::InvalidRequest(format!(
                "n_assignments {} exceeds pool size {}",
                spec.n_assignments,
                self.pool.len()
            )));
        }
        let mut s = self.state.lock();
        if !s.projects.contains_key(&project) {
            return Err(Error::UnknownProject(project));
        }
        let id = s.next_task;
        s.next_task += 1;
        let task = Task {
            id,
            project_id: project,
            payload: spec.payload,
            n_assignments: spec.n_assignments,
            published_at: s.clock,
            status: TaskStatus::Open,
        };
        s.tasks.insert(id, task.clone());
        s.runs.insert(id, Vec::new());
        s.answered_by.insert(id, HashSet::new());
        s.open.push(id);
        // New work: parked workers become eligible again.
        let clock = s.clock;
        let parked = std::mem::take(&mut s.parked);
        for (w, at) in parked {
            s.available.push(Reverse((at.max(clock), w)));
        }
        Ok(task)
    }

    /// Native bulk publish: one API call, one lock acquisition, atomic.
    ///
    /// Every spec is validated before any task is registered, so an invalid
    /// spec rejects the whole batch. Registered tasks are identical (ids,
    /// payloads, timestamps) to what sequential [`publish_task`] calls
    /// would have produced — only the API-call accounting differs.
    ///
    /// [`publish_task`]: CrowdPlatform::publish_task
    fn publish_tasks(&self, project: ProjectId, specs: Vec<TaskSpec>) -> Result<Vec<Task>> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        self.bump();
        for spec in &specs {
            if spec.n_assignments == 0 {
                return Err(Error::InvalidRequest("n_assignments must be positive".into()));
            }
            if spec.n_assignments as usize > self.pool.len() {
                return Err(Error::InvalidRequest(format!(
                    "n_assignments {} exceeds pool size {}",
                    spec.n_assignments,
                    self.pool.len()
                )));
            }
        }
        let mut s = self.state.lock();
        if !s.projects.contains_key(&project) {
            return Err(Error::UnknownProject(project));
        }
        let mut out = Vec::with_capacity(specs.len());
        for spec in specs {
            let id = s.next_task;
            s.next_task += 1;
            let task = Task {
                id,
                project_id: project,
                payload: spec.payload,
                n_assignments: spec.n_assignments,
                published_at: s.clock,
                status: TaskStatus::Open,
            };
            s.tasks.insert(id, task.clone());
            s.runs.insert(id, Vec::new());
            s.answered_by.insert(id, HashSet::new());
            s.open.push(id);
            out.push(task);
        }
        // New work: parked workers become eligible again (once per batch —
        // the clock has not advanced, so this equals waking them per task).
        let clock = s.clock;
        let parked = std::mem::take(&mut s.parked);
        for (w, at) in parked {
            s.available.push(Reverse((at.max(clock), w)));
        }
        Ok(out)
    }

    fn task(&self, id: TaskId) -> Result<Task> {
        self.bump();
        self.state.lock().tasks.get(&id).cloned().ok_or(Error::UnknownTask(id))
    }

    fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>> {
        self.bump();
        self.state.lock().runs.get(&task).cloned().ok_or(Error::UnknownTask(task))
    }

    /// Native bulk fetch: one API call serving every task from a single
    /// consistent snapshot. An unknown id fails the whole call.
    fn fetch_runs_bulk(&self, tasks: &[TaskId]) -> Result<Vec<Vec<TaskRun>>> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        self.bump();
        let s = self.state.lock();
        tasks
            .iter()
            .map(|&t| s.runs.get(&t).cloned().ok_or(Error::UnknownTask(t)))
            .collect()
    }

    fn is_complete(&self, task: TaskId) -> Result<bool> {
        let s = self.state.lock();
        let t = s.tasks.get(&task).ok_or(Error::UnknownTask(task))?;
        Ok(t.status == TaskStatus::Completed)
    }

    /// Native bulk status probe: one lock acquisition, one consistent
    /// snapshot (a real adapter would serve this as one round-trip).
    fn are_complete(&self, tasks: &[TaskId]) -> Result<Vec<Option<bool>>> {
        let s = self.state.lock();
        Ok(tasks
            .iter()
            .map(|t| s.tasks.get(t).map(|task| task.status == TaskStatus::Completed))
            .collect())
    }

    fn step(&self) -> Result<bool> {
        let mut s = self.state.lock();
        if s.open.is_empty() {
            return Ok(false);
        }
        // Pop workers until one can be matched with an open task.
        while let Some(Reverse((avail_at, worker_id))) = s.available.pop() {
            // Oldest open task this worker has not answered.
            let open_snapshot = s.open.clone();
            let eligible = open_snapshot
                .iter()
                .copied()
                .find(|tid| !s.answered_by[tid].contains(&worker_id));
            let Some(task_id) = eligible else {
                s.parked.push((worker_id, avail_at));
                continue;
            };

            s.clock = s.clock.max(avail_at);
            let assigned_at = s.clock;
            let profile = self.profile(worker_id).clone();
            let think_ms =
                lognormal(&mut s.rng, profile.speed_median_ms.max(1.0), profile.speed_sigma)
                    .ceil()
                    .max(1.0) as SimTime;
            let submitted_at = assigned_at + think_ms;

            let abandons = s.rng.gen::<f64>() < profile.abandon_p;
            if abandons {
                // The worker wastes the time but submits nothing; the slot
                // stays open and the worker may retry later.
                s.available.push(Reverse((submitted_at, worker_id)));
                return Ok(true);
            }

            let task = s.tasks.get(&task_id).cloned().ok_or(Error::UnknownTask(task_id))?;
            let answer = match AnswerModel::extract(&task.payload) {
                Some(model) => model.sample(&profile, &mut s.rng),
                // Payloads without a model get an opaque echo answer, so
                // plumbing tests don't need to construct models.
                None => serde_json::json!({ "echo": task.payload }),
            };
            s.runs.get_mut(&task_id).expect("runs exist").push(TaskRun {
                task_id,
                worker_id,
                answer,
                assigned_at,
                submitted_at,
            });
            s.answered_by.get_mut(&task_id).expect("set exists").insert(worker_id);

            let done = s.runs[&task_id].len() as u32 >= task.n_assignments;
            if done {
                s.tasks.get_mut(&task_id).expect("task exists").status = TaskStatus::Completed;
                s.open.retain(|&t| t != task_id);
                // Task list changed: parked workers may now have work.
                let clock = s.clock;
                let parked = std::mem::take(&mut s.parked);
                for (w, at) in parked {
                    s.available.push(Reverse((at.max(clock), w)));
                }
            }
            s.available.push(Reverse((submitted_at, worker_id)));
            return Ok(true);
        }
        // Every worker is parked: redundancy cannot be met.
        Ok(false)
    }

    fn api_calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn now(&self) -> SimTime {
        self.state.lock().clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label_spec(truth: usize, n: u32) -> TaskSpec {
        let model = AnswerModel::Label {
            truth,
            labels: vec!["Yes".into(), "No".into()],
            difficulty: 0.0,
        };
        TaskSpec { payload: model.embed(serde_json::json!({"url": "img.jpg"})), n_assignments: n }
    }

    #[test]
    fn completes_tasks_with_redundancy() {
        let p = SimPlatform::quick(5, 1.0, 1);
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 3)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        let runs = p.fetch_runs(t.id).unwrap();
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.answer == serde_json::json!("Yes")));
    }

    #[test]
    fn distinct_workers_per_task() {
        let p = SimPlatform::quick(4, 0.9, 2);
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 4)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        let runs = p.fetch_runs(t.id).unwrap();
        let workers: HashSet<WorkerId> = runs.iter().map(|r| r.worker_id).collect();
        assert_eq!(workers.len(), 4, "each run from a distinct worker");
    }

    #[test]
    fn redundancy_larger_than_pool_rejected() {
        let p = SimPlatform::quick(2, 0.9, 3);
        let proj = p.create_project("exp").unwrap();
        let err = p.publish_task(proj, label_spec(0, 3)).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed: u64| {
            let p = SimPlatform::quick(6, 0.8, seed);
            let proj = p.create_project("exp").unwrap();
            let mut ids = Vec::new();
            for i in 0..10 {
                ids.push(p.publish_task(proj, label_spec(i % 2, 3)).unwrap().id);
            }
            p.run_until_complete(&ids).unwrap();
            ids.iter().map(|&t| p.fetch_runs(t).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn timestamps_monotone_and_positive_latency() {
        let p = SimPlatform::quick(3, 0.9, 4);
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 3)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        for r in p.fetch_runs(t.id).unwrap() {
            assert!(r.assigned_at >= t.published_at);
            assert!(r.submitted_at > r.assigned_at);
        }
    }

    #[test]
    fn per_worker_serialization() {
        // One worker answering two tasks must do so at non-overlapping times.
        let p = SimPlatform::quick(1, 0.9, 5);
        let proj = p.create_project("exp").unwrap();
        let t1 = p.publish_task(proj, label_spec(0, 1)).unwrap();
        let t2 = p.publish_task(proj, label_spec(1, 1)).unwrap();
        p.run_until_complete(&[t1.id, t2.id]).unwrap();
        let r1 = &p.fetch_runs(t1.id).unwrap()[0];
        let r2 = &p.fetch_runs(t2.id).unwrap()[0];
        assert!(r2.assigned_at >= r1.submitted_at || r1.assigned_at >= r2.submitted_at);
    }

    #[test]
    fn step_false_when_no_open_tasks() {
        let p = SimPlatform::quick(2, 0.9, 6);
        assert!(!p.step().unwrap());
    }

    #[test]
    fn spammers_answer_at_chance() {
        let p = SimPlatform::quick(1, 0.5, 7);
        let proj = p.create_project("exp").unwrap();
        let mut yes = 0;
        let mut ids = Vec::new();
        for _ in 0..400 {
            ids.push(p.publish_task(proj, label_spec(0, 1)).unwrap().id);
        }
        p.run_until_complete(&ids).unwrap();
        for id in ids {
            if p.fetch_runs(id).unwrap()[0].answer == serde_json::json!("Yes") {
                yes += 1;
            }
        }
        let frac = yes as f64 / 400.0;
        assert!((frac - 0.5).abs() < 0.1, "spammer accuracy {frac}");
    }

    #[test]
    fn abandonment_delays_but_completes() {
        let pool = WorkerPool::new(
            (1..=3u64)
                .map(|id| {
                    let mut w = crate::sim::worker::WorkerProfile::with_ability(id, 0.9);
                    w.abandon_p = 0.4;
                    w
                })
                .collect(),
        );
        let p = SimPlatform::new(SimConfig { pool, seed: 8 });
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 3)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert_eq!(p.fetch_runs(t.id).unwrap().len(), 3);
    }

    #[test]
    fn echo_answer_for_modelless_payload() {
        let p = SimPlatform::quick(1, 0.9, 9);
        let proj = p.create_project("exp").unwrap();
        let t = p
            .publish_task(
                proj,
                TaskSpec { payload: serde_json::json!({"raw": true}), n_assignments: 1 },
            )
            .unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        let run = &p.fetch_runs(t.id).unwrap()[0];
        assert_eq!(run.answer["echo"]["raw"], serde_json::json!(true));
    }

    #[test]
    fn clock_advances_with_work() {
        let p = SimPlatform::quick(2, 0.9, 10);
        let proj = p.create_project("exp").unwrap();
        assert_eq!(p.now(), 0);
        let t = p.publish_task(proj, label_spec(0, 2)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert!(p.now() > 0);
    }

    #[test]
    fn bulk_publish_matches_sequential_bit_for_bit() {
        // The whole batched-pipeline story rests on this: same seed, same
        // specs — bulk-published tasks complete with identical runs.
        let run = |bulk: bool| {
            let p = SimPlatform::quick(5, 0.8, 77);
            let proj = p.create_project("exp").unwrap();
            let specs: Vec<TaskSpec> = (0..8).map(|i| label_spec(i % 2, 3)).collect();
            let tasks = if bulk {
                p.publish_tasks(proj, specs).unwrap()
            } else {
                specs.into_iter().map(|s| p.publish_task(proj, s).unwrap()).collect()
            };
            let ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
            p.run_until_complete(&ids).unwrap();
            (tasks, p.fetch_runs_bulk(&ids).unwrap())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn bulk_publish_is_one_call_and_atomic() {
        let p = SimPlatform::quick(3, 0.9, 20);
        let proj = p.create_project("exp").unwrap(); // 1 call
        let tasks = p
            .publish_tasks(proj, (0..10).map(|i| label_spec(i % 2, 2)).collect())
            .unwrap(); // 1 call
        assert_eq!(tasks.len(), 10);
        assert_eq!(p.api_calls(), 2);
        // A batch with one bad spec is rejected wholesale: nothing lands.
        let mut specs: Vec<TaskSpec> = (0..3).map(|i| label_spec(i % 2, 2)).collect();
        specs.push(label_spec(0, 99)); // exceeds the 3-worker pool
        assert!(p.publish_tasks(proj, specs).is_err());
        assert_eq!(p.state.lock().tasks.len(), 10, "failed batch must leave no tasks");
        // Empty batches are free.
        assert!(p.publish_tasks(proj, Vec::new()).unwrap().is_empty());
        assert!(p.fetch_runs_bulk(&[]).unwrap().is_empty());
        assert_eq!(p.api_calls(), 3);
    }

    #[test]
    fn bulk_fetch_unknown_id_fails_whole_call() {
        let p = SimPlatform::quick(3, 0.9, 21);
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 1)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert!(matches!(
            p.fetch_runs_bulk(&[t.id, 999]).unwrap_err(),
            Error::UnknownTask(999)
        ));
    }

    #[test]
    fn api_calls_counted() {
        let p = SimPlatform::quick(2, 0.9, 11);
        let proj = p.create_project("exp").unwrap(); // 1
        let t = p.publish_task(proj, label_spec(0, 1)).unwrap(); // 2
        p.run_until_complete(&[t.id]).unwrap(); // steps: free
        let _ = p.fetch_runs(t.id).unwrap(); // 3
        assert_eq!(p.api_calls(), 3);
    }
}
