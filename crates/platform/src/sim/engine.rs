//! The sharded discrete-event simulation engine behind [`SimPlatform`].
//!
//! The world is partitioned into `shard_count` independent `Shard`s:
//! tasks and workers are assigned to shards by hashing their ids, and each
//! shard owns its own open-task queue, availability heap, clock, and RNG
//! (seeded from `(seed, shard_index)`). Shards share nothing, so
//! [`run_until_complete`](crate::CrowdPlatform::run_until_complete) drives
//! them from one thread per shard while the result stays **bit-for-bit
//! deterministic for a fixed `(seed, shard_count)`** — no event on shard A
//! can observe shard B, so thread scheduling cannot leak into the outcome.
//!
//! `shard_count = 1` (the default) reproduces the pre-shard engine exactly:
//! shard 0 inherits the root seed unchanged, every task and worker lands on
//! it, and the per-shard event loop performs the same RNG draws in the same
//! order (pinned by `tests/golden_engine.rs`). Different shard counts are
//! *different worlds* — partitioning changes which workers can meet which
//! tasks — but each is equally reproducible.
//!
//! **Virtual time is shard-local.** Each shard's clock advances only with
//! its own events, so with `shard_count > 1` timestamps are ordered *per
//! task* (`published_at ≤ assigned_at < submitted_at`, all stamped by the
//! task's home shard) but not across shards: a task published onto an idle
//! shard can carry a smaller `published_at` than an earlier task — or the
//! project's `created_at`, which is stamped from the cross-shard maximum
//! that [`now`](crate::CrowdPlatform::now) reports. Deriving a global
//! event order from timestamps is only meaningful at `shard_count = 1`;
//! coupling the clocks would make one shard's timestamps depend on another
//! shard's progress, which is exactly the cross-shard dependence the
//! determinism contract forbids.

use crate::error::{Error, Result};
use crate::platform::CrowdPlatform;
use crate::sim::shard::Shard;
use crate::sim::worker::WorkerPool;
use crate::types::{
    Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec, TaskStatus,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Configuration of a simulated platform.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The worker roster.
    pub pool: WorkerPool,
    /// RNG seed; with the same seed, shard count, and call sequence, the
    /// simulation is bit-for-bit reproducible.
    pub seed: u64,
    /// Number of independent shards (must be ≥ 1). Tasks and workers are
    /// partitioned across shards by id hash; `1` reproduces the unsharded
    /// engine exactly. Runs with different shard counts are different (but
    /// equally deterministic) worlds.
    pub shards: usize,
}

impl SimConfig {
    /// A single-shard config — the classic engine.
    pub fn new(pool: WorkerPool, seed: u64) -> Self {
        SimConfig { pool, seed, shards: 1 }
    }

    /// Sets the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Global (cross-shard) bookkeeping: projects and id allocation. Held for
/// O(1) critical sections only — never while an event is processed.
struct Registry {
    projects: std::collections::HashMap<ProjectId, Project>,
    next_project: ProjectId,
    next_task: TaskId,
}

/// The simulated crowdsourcing platform.
pub struct SimPlatform {
    registry: Mutex<Registry>,
    shards: Vec<Mutex<Shard>>,
    pool: WorkerPool,
    /// Workers rostered per shard — immutable after construction, cached
    /// so publish validation never takes a shard lock.
    shard_capacity: Vec<usize>,
    calls: AtomicU64,
    /// Round-robin position of the next [`step`](CrowdPlatform::step).
    step_cursor: AtomicUsize,
}

/// SplitMix64 finalizer: the id → shard hash. Sequential ids (how the
/// platform allocates them) spread uniformly instead of striping.
fn mix(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimPlatform {
    /// Creates a platform with the given worker pool, seed, and shard
    /// count.
    ///
    /// # Panics
    /// Panics if `config.shards == 0` — a world with no shards cannot hold
    /// tasks or workers.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.shards >= 1, "shard count must be at least 1");
        let n = config.shards;
        // Partition the roster: shard membership depends only on the
        // worker id and the shard count, never on roster order.
        let mut rosters: Vec<Vec<_>> = vec![Vec::new(); n];
        for w in &config.pool.workers {
            rosters[Self::shard_of(w.id, n)].push(w.clone());
        }
        let shard_capacity: Vec<usize> = rosters.iter().map(Vec::len).collect();
        let shards = rosters
            .into_iter()
            .enumerate()
            // Shard 0 inherits the root seed unchanged so `shards = 1`
            // reproduces the pre-shard engine bit-for-bit; the golden-ratio
            // multiplier decorrelates the other shards' streams.
            .map(|(i, workers)| {
                let shard_seed =
                    config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Mutex::new(Shard::new(workers, shard_seed))
            })
            .collect();
        SimPlatform {
            registry: Mutex::new(Registry {
                projects: std::collections::HashMap::new(),
                next_project: 1,
                next_task: 1,
            }),
            shards,
            pool: config.pool,
            shard_capacity,
            calls: AtomicU64::new(0),
            step_cursor: AtomicUsize::new(0),
        }
    }

    /// Convenience constructor: `n` identical workers of `ability`, one
    /// shard.
    pub fn quick(n_workers: usize, ability: f64, seed: u64) -> Self {
        SimPlatform::new(SimConfig::new(WorkerPool::uniform(n_workers, ability), seed))
    }

    /// Convenience constructor: `n` identical workers of `ability` spread
    /// over `shards` shards.
    pub fn sharded(n_workers: usize, ability: f64, seed: u64, shards: usize) -> Self {
        SimPlatform::new(
            SimConfig::new(WorkerPool::uniform(n_workers, ability), seed)
                .with_shards(shards),
        )
    }

    /// The roster this platform simulates.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Number of shards the world is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Workers rostered on each shard (tasks hashed to a shard can only be
    /// answered by that shard's workers, so a task's `n_assignments` must
    /// fit its shard's roster).
    pub fn shard_worker_counts(&self) -> &[usize] {
        &self.shard_capacity
    }

    /// Total events processed so far (submitted runs and abandonments,
    /// summed over shards) — the E13 throughput metric.
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().events).sum()
    }

    /// Drives every shard to quiescence — one thread per shard when the
    /// world is sharded. Equivalent to calling
    /// [`step`](CrowdPlatform::step) until it returns `false`, but without
    /// the cross-shard round-robin, so each shard's hot loop runs
    /// lock-held and cache-local.
    pub fn drain(&self) -> Result<()> {
        if self.shards.len() == 1 {
            let mut s = self.shards[0].lock();
            while s.step()? {}
            return Ok(());
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|m| {
                    scope.spawn(move || -> Result<()> {
                        let mut s = m.lock();
                        while s.step()? {}
                        Ok(())
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("shard thread never panics")?;
            }
            Ok(())
        })
    }

    /// The shard a task or worker id is assigned to under `shard_count`
    /// shards. Pure and stable across runs, so clients can size rosters
    /// per shard (see `CrowdContext::in_memory_sim_with` in the core
    /// crate, which picks worker ids so every shard gets the same
    /// headcount).
    pub fn shard_index(id: u64, shard_count: usize) -> usize {
        if shard_count == 1 {
            0
        } else {
            (mix(id) % shard_count as u64) as usize
        }
    }

    fn shard_of(id: u64, n: usize) -> usize {
        Self::shard_index(id, n)
    }

    /// The shard owning task or worker `id`.
    fn home(&self, id: u64) -> &Mutex<Shard> {
        &self.shards[Self::shard_of(id, self.shards.len())]
    }

    fn bump(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Validates what can be checked without knowing the task's id (the
    /// same checks, in the same order, as the pre-shard engine).
    fn validate_spec(&self, spec: &TaskSpec) -> Result<()> {
        if spec.n_assignments == 0 {
            return Err(Error::InvalidRequest("n_assignments must be positive".into()));
        }
        if spec.n_assignments as usize > self.pool.len() {
            return Err(Error::InvalidRequest(format!(
                "n_assignments {} exceeds pool size {}",
                spec.n_assignments,
                self.pool.len()
            )));
        }
        Ok(())
    }

    /// Validates that the shard the task id hashes to can meet the spec's
    /// redundancy — distinct workers cannot cross shards.
    fn validate_placement(&self, spec: &TaskSpec, task_id: TaskId) -> Result<()> {
        let n = self.shards.len();
        if n > 1 {
            let shard = Self::shard_of(task_id, n);
            let capacity = self.shard_capacity[shard];
            if spec.n_assignments as usize > capacity {
                return Err(Error::InvalidRequest(format!(
                    "n_assignments {} exceeds shard {shard}'s worker count {capacity} \
                     (shard_count={n}; distinct workers cannot cross shards)",
                    spec.n_assignments
                )));
            }
        }
        Ok(())
    }

    /// Stamps and registers a task on its home shard (which also wakes the
    /// shard's parked workers). Takes the shard lock; callers holding the
    /// registry are fine (registry → shard is the global lock order), but
    /// no shard lock may be held.
    fn place_task(&self, id: TaskId, project: ProjectId, spec: TaskSpec) -> Task {
        let mut shard = self.home(id).lock();
        let task = Task {
            id,
            project_id: project,
            payload: spec.payload,
            n_assignments: spec.n_assignments,
            published_at: shard.clock,
            status: TaskStatus::Open,
        };
        shard.insert_task(task.clone());
        // New work: parked workers become eligible again.
        shard.wake_parked();
        task
    }

    #[cfg(test)]
    fn total_tasks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().tasks.len()).sum()
    }
}

impl CrowdPlatform for SimPlatform {
    fn name(&self) -> &str {
        "sim"
    }

    fn create_project(&self, name: &str) -> Result<ProjectId> {
        self.bump();
        let created_at = self.now();
        let mut r = self.registry.lock();
        let id = r.next_project;
        r.next_project += 1;
        r.projects.insert(id, Project { id, name: name.to_string(), created_at });
        Ok(id)
    }

    fn project(&self, id: ProjectId) -> Result<Project> {
        self.registry.lock().projects.get(&id).cloned().ok_or(Error::UnknownProject(id))
    }

    fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task> {
        self.bump();
        self.validate_spec(&spec)?;
        let mut r = self.registry.lock();
        if !r.projects.contains_key(&project) {
            return Err(Error::UnknownProject(project));
        }
        self.validate_placement(&spec, r.next_task)?;
        let id = r.next_task;
        r.next_task += 1;
        // The registry stays held through placement (registry → shard lock
        // order) so concurrent publishers cannot interleave between id
        // allocation and queue insertion: each shard's open queue stays in
        // ascending-id (publish) order.
        Ok(self.place_task(id, project, spec))
    }

    /// Native bulk publish: one API call, atomic.
    ///
    /// Every spec is validated before any task is registered, so an invalid
    /// spec rejects the whole batch. Registered tasks are identical (ids,
    /// payloads, timestamps) to what sequential [`publish_task`] calls
    /// would have produced — only the API-call accounting differs.
    ///
    /// [`publish_task`]: CrowdPlatform::publish_task
    fn publish_tasks(&self, project: ProjectId, specs: Vec<TaskSpec>) -> Result<Vec<Task>> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        self.bump();
        for spec in &specs {
            self.validate_spec(spec)?;
        }
        let mut r = self.registry.lock();
        if !r.projects.contains_key(&project) {
            return Err(Error::UnknownProject(project));
        }
        let base = r.next_task;
        for (j, spec) in specs.iter().enumerate() {
            self.validate_placement(spec, base + j as TaskId)?;
        }
        r.next_task += specs.len() as TaskId;
        // Atomicity: every shard lock is held (in index order, with the
        // registry still held) while the batch lands, so no reader or
        // concurrent publisher ever observes a partial batch — the same
        // guarantee the pre-shard engine's single state lock gave.
        let n = self.shards.len();
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        Ok(specs
            .into_iter()
            .enumerate()
            .map(|(j, spec)| {
                let id = base + j as TaskId;
                let shard = &mut guards[Self::shard_of(id, n)];
                let task = Task {
                    id,
                    project_id: project,
                    payload: spec.payload,
                    n_assignments: spec.n_assignments,
                    published_at: shard.clock,
                    status: TaskStatus::Open,
                };
                shard.insert_task(task.clone());
                // New work: parked workers become eligible again.
                shard.wake_parked();
                task
            })
            .collect())
    }

    fn task(&self, id: TaskId) -> Result<Task> {
        self.bump();
        self.home(id).lock().tasks.get(&id).cloned().ok_or(Error::UnknownTask(id))
    }

    fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>> {
        self.bump();
        self.home(task).lock().runs.get(&task).cloned().ok_or(Error::UnknownTask(task))
    }

    /// Native bulk fetch: one API call serving every task from a single
    /// consistent snapshot (every shard lock is held for the duration). An
    /// unknown id fails the whole call.
    fn fetch_runs_bulk(&self, tasks: &[TaskId]) -> Result<Vec<Vec<TaskRun>>> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        self.bump();
        let n = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        tasks
            .iter()
            .map(|&t| {
                guards[Self::shard_of(t, n)]
                    .runs
                    .get(&t)
                    .cloned()
                    .ok_or(Error::UnknownTask(t))
            })
            .collect()
    }

    /// Status probes are **free** — no API-call bump — on every in-process
    /// platform; see the trait-level contract on
    /// [`is_complete`](CrowdPlatform::is_complete).
    fn is_complete(&self, task: TaskId) -> Result<bool> {
        let shard = self.home(task).lock();
        let t = shard.tasks.get(&task).ok_or(Error::UnknownTask(task))?;
        Ok(t.status == TaskStatus::Completed)
    }

    /// Native bulk status probe: one consistent snapshot across every
    /// shard. Free, like [`is_complete`](CrowdPlatform::is_complete).
    fn are_complete(&self, tasks: &[TaskId]) -> Result<Vec<Option<bool>>> {
        let n = self.shards.len();
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        Ok(tasks
            .iter()
            .map(|&t| {
                guards[Self::shard_of(t, n)]
                    .tasks
                    .get(&t)
                    .map(|task| task.status == TaskStatus::Completed)
            })
            .collect())
    }

    /// One event on one shard, rotating round-robin across shards so
    /// single-stepped progress stays fair and deterministic. Prefer
    /// [`run_until_complete`](CrowdPlatform::run_until_complete) (or
    /// [`SimPlatform::drain`]) to drive big worlds — it parallelizes over
    /// shards instead of rotating.
    fn step(&self) -> Result<bool> {
        let n = self.shards.len();
        let start = self.step_cursor.load(Ordering::Relaxed);
        for k in 0..n {
            let i = (start + k) % n;
            if self.shards[i].lock().step()? {
                self.step_cursor.store((i + 1) % n, Ordering::Relaxed);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Drives all shards to quiescence in parallel (one thread per shard),
    /// then checks the listed tasks — replacing the trait default's
    /// step-by-step rotation with the sharded fast path. Like the default,
    /// draining may progress unlisted open tasks; already-completed tasks
    /// never change. Already-satisfied (or unknown) task lists return
    /// before any simulation runs.
    fn run_until_complete(&self, tasks: &[TaskId]) -> Result<()> {
        if crate::platform::still_open(tasks, &self.are_complete(tasks)?)? == 0 {
            return Ok(());
        }
        self.drain()?;
        let open = crate::platform::still_open(tasks, &self.are_complete(tasks)?)?;
        if open > 0 {
            return Err(Error::Starved(format!(
                "no further progress possible with {open} tasks still open"
            )));
        }
        Ok(())
    }

    fn api_calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The most advanced shard clock (shards tick independently).
    fn now(&self) -> SimTime {
        self.shards.iter().map(|s| s.lock().clock).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::answer::AnswerModel;
    use crate::types::WorkerId;
    use std::collections::HashSet;

    fn label_spec(truth: usize, n: u32) -> TaskSpec {
        let model = AnswerModel::Label {
            truth,
            labels: vec!["Yes".into(), "No".into()],
            difficulty: 0.0,
        };
        TaskSpec { payload: model.embed(serde_json::json!({"url": "img.jpg"})), n_assignments: n }
    }

    #[test]
    fn completes_tasks_with_redundancy() {
        let p = SimPlatform::quick(5, 1.0, 1);
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 3)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        let runs = p.fetch_runs(t.id).unwrap();
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.answer == serde_json::json!("Yes")));
    }

    #[test]
    fn distinct_workers_per_task() {
        let p = SimPlatform::quick(4, 0.9, 2);
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 4)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        let runs = p.fetch_runs(t.id).unwrap();
        let workers: HashSet<WorkerId> = runs.iter().map(|r| r.worker_id).collect();
        assert_eq!(workers.len(), 4, "each run from a distinct worker");
    }

    #[test]
    fn redundancy_larger_than_pool_rejected() {
        let p = SimPlatform::quick(2, 0.9, 3);
        let proj = p.create_project("exp").unwrap();
        let err = p.publish_task(proj, label_spec(0, 3)).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed: u64| {
            let p = SimPlatform::quick(6, 0.8, seed);
            let proj = p.create_project("exp").unwrap();
            let mut ids = Vec::new();
            for i in 0..10 {
                ids.push(p.publish_task(proj, label_spec(i % 2, 3)).unwrap().id);
            }
            p.run_until_complete(&ids).unwrap();
            ids.iter().map(|&t| p.fetch_runs(t).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn timestamps_monotone_and_positive_latency() {
        let p = SimPlatform::quick(3, 0.9, 4);
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 3)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        for r in p.fetch_runs(t.id).unwrap() {
            assert!(r.assigned_at >= t.published_at);
            assert!(r.submitted_at > r.assigned_at);
        }
    }

    #[test]
    fn per_worker_serialization() {
        // One worker answering two tasks must do so at non-overlapping times.
        let p = SimPlatform::quick(1, 0.9, 5);
        let proj = p.create_project("exp").unwrap();
        let t1 = p.publish_task(proj, label_spec(0, 1)).unwrap();
        let t2 = p.publish_task(proj, label_spec(1, 1)).unwrap();
        p.run_until_complete(&[t1.id, t2.id]).unwrap();
        let r1 = &p.fetch_runs(t1.id).unwrap()[0];
        let r2 = &p.fetch_runs(t2.id).unwrap()[0];
        assert!(r2.assigned_at >= r1.submitted_at || r1.assigned_at >= r2.submitted_at);
    }

    #[test]
    fn step_false_when_no_open_tasks() {
        let p = SimPlatform::quick(2, 0.9, 6);
        assert!(!p.step().unwrap());
    }

    #[test]
    fn spammers_answer_at_chance() {
        let p = SimPlatform::quick(1, 0.5, 7);
        let proj = p.create_project("exp").unwrap();
        let mut yes = 0;
        let mut ids = Vec::new();
        for _ in 0..400 {
            ids.push(p.publish_task(proj, label_spec(0, 1)).unwrap().id);
        }
        p.run_until_complete(&ids).unwrap();
        for id in ids {
            if p.fetch_runs(id).unwrap()[0].answer == serde_json::json!("Yes") {
                yes += 1;
            }
        }
        let frac = yes as f64 / 400.0;
        assert!((frac - 0.5).abs() < 0.1, "spammer accuracy {frac}");
    }

    #[test]
    fn abandonment_delays_but_completes() {
        let pool = WorkerPool::new(
            (1..=3u64)
                .map(|id| {
                    let mut w = crate::sim::worker::WorkerProfile::with_ability(id, 0.9);
                    w.abandon_p = 0.4;
                    w
                })
                .collect(),
        );
        let p = SimPlatform::new(SimConfig::new(pool, 8));
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 3)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert_eq!(p.fetch_runs(t.id).unwrap().len(), 3);
    }

    #[test]
    fn echo_answer_for_modelless_payload() {
        let p = SimPlatform::quick(1, 0.9, 9);
        let proj = p.create_project("exp").unwrap();
        let t = p
            .publish_task(
                proj,
                TaskSpec { payload: serde_json::json!({"raw": true}), n_assignments: 1 },
            )
            .unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        let run = &p.fetch_runs(t.id).unwrap()[0];
        assert_eq!(run.answer["echo"]["raw"], serde_json::json!(true));
    }

    #[test]
    fn clock_advances_with_work() {
        let p = SimPlatform::quick(2, 0.9, 10);
        let proj = p.create_project("exp").unwrap();
        assert_eq!(p.now(), 0);
        let t = p.publish_task(proj, label_spec(0, 2)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert!(p.now() > 0);
    }

    #[test]
    fn bulk_publish_matches_sequential_bit_for_bit() {
        // The whole batched-pipeline story rests on this: same seed, same
        // specs — bulk-published tasks complete with identical runs.
        let run = |bulk: bool| {
            let p = SimPlatform::quick(5, 0.8, 77);
            let proj = p.create_project("exp").unwrap();
            let specs: Vec<TaskSpec> = (0..8).map(|i| label_spec(i % 2, 3)).collect();
            let tasks = if bulk {
                p.publish_tasks(proj, specs).unwrap()
            } else {
                specs.into_iter().map(|s| p.publish_task(proj, s).unwrap()).collect()
            };
            let ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
            p.run_until_complete(&ids).unwrap();
            (tasks, p.fetch_runs_bulk(&ids).unwrap())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn bulk_publish_is_one_call_and_atomic() {
        let p = SimPlatform::quick(3, 0.9, 20);
        let proj = p.create_project("exp").unwrap(); // 1 call
        let tasks = p
            .publish_tasks(proj, (0..10).map(|i| label_spec(i % 2, 2)).collect())
            .unwrap(); // 1 call
        assert_eq!(tasks.len(), 10);
        assert_eq!(p.api_calls(), 2);
        // A batch with one bad spec is rejected wholesale: nothing lands.
        let mut specs: Vec<TaskSpec> = (0..3).map(|i| label_spec(i % 2, 2)).collect();
        specs.push(label_spec(0, 99)); // exceeds the 3-worker pool
        assert!(p.publish_tasks(proj, specs).is_err());
        assert_eq!(p.total_tasks(), 10, "failed batch must leave no tasks");
        // Empty batches are free.
        assert!(p.publish_tasks(proj, Vec::new()).unwrap().is_empty());
        assert!(p.fetch_runs_bulk(&[]).unwrap().is_empty());
        assert_eq!(p.api_calls(), 3);
    }

    #[test]
    fn bulk_fetch_unknown_id_fails_whole_call() {
        let p = SimPlatform::quick(3, 0.9, 21);
        let proj = p.create_project("exp").unwrap();
        let t = p.publish_task(proj, label_spec(0, 1)).unwrap();
        p.run_until_complete(&[t.id]).unwrap();
        assert!(matches!(
            p.fetch_runs_bulk(&[t.id, 999]).unwrap_err(),
            Error::UnknownTask(999)
        ));
    }

    #[test]
    fn api_calls_counted() {
        let p = SimPlatform::quick(2, 0.9, 11);
        let proj = p.create_project("exp").unwrap(); // 1
        let t = p.publish_task(proj, label_spec(0, 1)).unwrap(); // 2
        p.run_until_complete(&[t.id]).unwrap(); // steps: free
        let _ = p.fetch_runs(t.id).unwrap(); // 3
        assert_eq!(p.api_calls(), 3);
    }

    // ---- sharded-engine tests ----

    /// Publishes `n_tasks` on a sharded world and returns every task +
    /// every run — the whole observable outcome.
    fn sharded_world(
        n_workers: usize,
        n_tasks: usize,
        redundancy: u32,
        seed: u64,
        shards: usize,
    ) -> (Vec<Task>, Vec<Vec<TaskRun>>) {
        let p = SimPlatform::sharded(n_workers, 0.85, seed, shards);
        let proj = p.create_project("sharded").unwrap();
        let specs: Vec<TaskSpec> =
            (0..n_tasks).map(|i| label_spec(i % 2, redundancy)).collect();
        let tasks = p.publish_tasks(proj, specs).unwrap();
        let ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
        p.run_until_complete(&ids).unwrap();
        let tasks: Vec<Task> = ids.iter().map(|&id| p.task(id).unwrap()).collect();
        (tasks, p.fetch_runs_bulk(&ids).unwrap())
    }

    #[test]
    fn sharded_world_completes_and_reproduces() {
        for shards in [1, 2, 3, 4] {
            let (tasks, runs) = sharded_world(24, 40, 2, 99, shards);
            assert!(tasks.iter().all(|t| t.status == TaskStatus::Completed));
            assert!(runs.iter().all(|r| r.len() == 2), "exact redundancy per task");
            // Identical (seed, shard_count) => bit-identical world.
            assert_eq!((tasks, runs), sharded_world(24, 40, 2, 99, shards));
        }
    }

    #[test]
    fn different_shard_counts_are_different_worlds() {
        // Not a guarantee anyone relies on — pinned so a silent change to
        // the partitioning (e.g. everything landing on shard 0) is caught.
        assert_ne!(sharded_world(24, 40, 2, 99, 1), sharded_world(24, 40, 2, 99, 4));
    }

    #[test]
    fn workers_never_cross_shards() {
        let p = SimPlatform::sharded(16, 0.9, 5, 4);
        let proj = p.create_project("exp").unwrap();
        let tasks = p
            .publish_tasks(proj, (0..30).map(|i| label_spec(i % 2, 2)).collect())
            .unwrap();
        let ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
        p.run_until_complete(&ids).unwrap();
        for (task, runs) in ids.iter().zip(p.fetch_runs_bulk(&ids).unwrap()) {
            let task_shard = SimPlatform::shard_of(*task, 4);
            for r in runs {
                assert_eq!(
                    SimPlatform::shard_of(r.worker_id, 4),
                    task_shard,
                    "task {task} answered by a worker from another shard"
                );
            }
        }
    }

    #[test]
    fn redundancy_larger_than_shard_rejected() {
        // 4 workers over 4 shards: some shard has ≤ 1 worker, so a spec
        // needing 3 distinct workers cannot be placed.
        let p = SimPlatform::sharded(4, 0.9, 13, 4);
        let proj = p.create_project("exp").unwrap();
        let err = p.publish_task(proj, label_spec(0, 3)).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)));
        assert!(err.to_string().contains("shard"), "error names the shard: {err}");
    }

    #[test]
    fn step_rotates_but_matches_drain() {
        // Driving via single `step` calls (round-robin) and via the
        // parallel drain must land in the same final world: shards share
        // nothing, so event interleaving across shards cannot matter.
        let world = |drain: bool| {
            let p = SimPlatform::sharded(12, 0.85, 31, 3);
            let proj = p.create_project("exp").unwrap();
            let tasks = p
                .publish_tasks(proj, (0..20).map(|i| label_spec(i % 2, 2)).collect())
                .unwrap();
            let ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
            if drain {
                p.run_until_complete(&ids).unwrap();
            } else {
                while p.step().unwrap() {}
            }
            p.fetch_runs_bulk(&ids).unwrap()
        };
        assert_eq!(world(true), world(false));
    }

    #[test]
    fn events_counted_across_shards() {
        let pool = WorkerPool::new(
            (1..=8u64)
                .map(|id| {
                    let mut w = crate::sim::worker::WorkerProfile::with_ability(id, 1.0);
                    w.abandon_p = 0.0;
                    w
                })
                .collect(),
        );
        let p = SimPlatform::new(SimConfig::new(pool, 17).with_shards(2));
        let proj = p.create_project("exp").unwrap();
        let tasks = p
            .publish_tasks(proj, (0..10).map(|i| label_spec(i % 2, 2)).collect())
            .unwrap();
        let ids: Vec<TaskId> = tasks.iter().map(|t| t.id).collect();
        assert_eq!(p.events(), 0);
        p.run_until_complete(&ids).unwrap();
        // Perfect workers never abandon: exactly one event per run.
        assert_eq!(p.events(), 20);
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn zero_shards_rejected() {
        SimPlatform::new(SimConfig::new(WorkerPool::uniform(2, 0.9), 1).with_shards(0));
    }
}
