//! Latency distributions for worker think-time, built on `rand` only.
//!
//! Real crowd workers exhibit heavy-tailed task latencies; the usual model
//! is log-normal. We implement the samplers from first principles
//! (inverse-CDF for the exponential, Box–Muller for the normal underlying
//! the log-normal) rather than pulling a distributions crate.

use rand::rngs::StdRng;
use rand::Rng;

/// Exponential sample with the given mean (inverse-CDF method).
pub fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    assert!(mean > 0.0, "mean must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Standard normal sample via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal sample parameterized by the *median* (`exp(mu)`) and shape
/// `sigma` of the underlying normal.
pub fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    (median.ln() + sigma * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = rng();
        let n = 20_000;
        let mean = 500.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() / mean < 0.05, "empirical mean {emp}");
    }

    #[test]
    fn exponential_nonnegative() {
        let mut r = rng();
        assert!((0..1000).all(|_| exponential(&mut r, 1.0) >= 0.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_close() {
        let mut r = rng();
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| lognormal(&mut r, 800.0, 0.75)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[n / 2];
        assert!((med - 800.0).abs() / 800.0 < 0.08, "median {med}");
        assert!(samples[0] > 0.0);
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let mut r = rng();
        for _ in 0..10 {
            let x = lognormal(&mut r, 100.0, 0.0);
            assert!((x - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_bad_mean() {
        exponential(&mut rng(), 0.0);
    }
}
