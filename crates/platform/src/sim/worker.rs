//! Worker profiles and pool builders.
//!
//! A [`WorkerProfile`] captures the parameters the crowdsourcing literature
//! uses to describe annotators: a scalar *ability* (probability of a
//! correct answer on an unambiguous binary task), an optional *bias* toward
//! one label, a latency distribution, and an *abandonment* probability
//! (accepting a task and never submitting). [`WorkerPool`] builders produce
//! the standard population mixes the quality-control experiments sweep:
//! experts, average workers, spammers, and adversarial/biased workers.

use crate::types::WorkerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Behavioural parameters of one simulated worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Stable id reported in task runs (lineage!).
    pub id: WorkerId,
    /// Probability of answering an easy task correctly, in `[0, 1]`.
    /// 0.5 = spammer (coin flip) on binary tasks; < 0.5 = adversarial.
    pub ability: f64,
    /// If set, `(label, strength)`: with probability `strength` the worker
    /// answers `label` regardless of the truth (systematic bias the
    /// Dawid–Skene experiments need).
    pub bias: Option<(usize, f64)>,
    /// Median think-time per task, milliseconds.
    pub speed_median_ms: f64,
    /// Log-normal shape of the think-time.
    pub speed_sigma: f64,
    /// Probability of abandoning an accepted task (no run submitted).
    pub abandon_p: f64,
}

impl WorkerProfile {
    /// A well-behaved worker with the given id and ability and default
    /// latency (median 30 s, σ 0.6, no bias, 2% abandonment).
    pub fn with_ability(id: WorkerId, ability: f64) -> Self {
        WorkerProfile {
            id,
            ability,
            bias: None,
            speed_median_ms: 30_000.0,
            speed_sigma: 0.6,
            abandon_p: 0.02,
        }
    }
}

/// An immutable roster of workers for one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPool {
    /// The roster; ids are unique.
    pub workers: Vec<WorkerProfile>,
}

impl WorkerPool {
    /// Builds a pool from explicit profiles.
    ///
    /// # Panics
    /// Panics if ids repeat — a roster with duplicate identities would
    /// corrupt the one-run-per-worker-per-task invariant.
    pub fn new(workers: Vec<WorkerProfile>) -> Self {
        let mut ids: Vec<WorkerId> = workers.iter().map(|w| w.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), workers.len(), "duplicate worker ids in pool");
        WorkerPool { workers }
    }

    /// `n` identical workers of the given ability (ids `1..=n`).
    pub fn uniform(n: usize, ability: f64) -> Self {
        WorkerPool::new(
            (1..=n as u64).map(|id| WorkerProfile::with_ability(id, ability)).collect(),
        )
    }

    /// The standard experimental mixture: `experts` at ~0.95, `normal` at
    /// ~0.8, `spammers` at 0.5. Abilities are jittered ±0.03 (seeded) so
    /// workers are distinguishable to EM.
    pub fn mixture(experts: usize, normal: usize, spammers: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut workers = Vec::with_capacity(experts + normal + spammers);
        let mut id: WorkerId = 1;
        let push = |workers: &mut Vec<WorkerProfile>, id: &mut WorkerId, base: f64, rng: &mut StdRng| {
            let jitter: f64 = (rng.gen::<f64>() - 0.5) * 0.06;
            let ability = (base + jitter).clamp(0.0, 1.0);
            workers.push(WorkerProfile::with_ability(*id, ability));
            *id += 1;
        };
        for _ in 0..experts {
            push(&mut workers, &mut id, 0.95, &mut rng);
        }
        for _ in 0..normal {
            push(&mut workers, &mut id, 0.8, &mut rng);
        }
        for _ in 0..spammers {
            // Spammers answer at chance, exactly.
            workers.push(WorkerProfile::with_ability(id, 0.5));
            id += 1;
        }
        WorkerPool::new(workers)
    }

    /// Adds `n` biased workers (they answer `label` with probability
    /// `strength`, otherwise behave with `ability`). Ids continue after the
    /// current maximum.
    pub fn with_biased(mut self, n: usize, label: usize, strength: f64, ability: f64) -> Self {
        let base = self.workers.iter().map(|w| w.id).max().unwrap_or(0);
        for i in 1..=n as u64 {
            let mut w = WorkerProfile::with_ability(base + i, ability);
            w.bias = Some((label, strength));
            self.workers.push(w);
        }
        self
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True if the roster is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pool() {
        let p = WorkerPool::uniform(5, 0.9);
        assert_eq!(p.len(), 5);
        assert!(p.workers.iter().all(|w| w.ability == 0.9));
        let ids: Vec<u64> = p.workers.iter().map(|w| w.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn mixture_composition() {
        let p = WorkerPool::mixture(2, 3, 4, 42);
        assert_eq!(p.len(), 9);
        let experts = p.workers.iter().filter(|w| w.ability > 0.9).count();
        let spammers = p.workers.iter().filter(|w| w.ability == 0.5).count();
        assert_eq!(experts, 2);
        assert_eq!(spammers, 4);
    }

    #[test]
    fn mixture_deterministic() {
        assert_eq!(WorkerPool::mixture(2, 2, 2, 7), WorkerPool::mixture(2, 2, 2, 7));
        assert_ne!(WorkerPool::mixture(2, 2, 2, 7), WorkerPool::mixture(2, 2, 2, 8));
    }

    #[test]
    fn biased_extension() {
        let p = WorkerPool::uniform(3, 0.8).with_biased(2, 1, 0.9, 0.8);
        assert_eq!(p.len(), 5);
        assert_eq!(p.workers[3].bias, Some((1, 0.9)));
        assert_eq!(p.workers[4].id, 5);
    }

    #[test]
    #[should_panic(expected = "duplicate worker ids")]
    fn duplicate_ids_rejected() {
        WorkerPool::new(vec![
            WorkerProfile::with_ability(1, 0.8),
            WorkerProfile::with_ability(1, 0.9),
        ]);
    }

    #[test]
    fn empty_pool_is_empty() {
        assert!(WorkerPool::new(vec![]).is_empty());
    }
}
