//! One shard of the sharded simulator: a self-contained discrete-event
//! loop over the tasks and workers hashed to it.
//!
//! A shard owns *all* state its events touch — tasks, runs, the open-task
//! queue, the worker availability heap, and its own RNG — so shards never
//! synchronize with each other and can be driven from different threads
//! while staying bit-for-bit deterministic per `(seed, shard_count)`.
//!
//! The matching hot path is O(1) amortized per event:
//!
//! * `open` is an **append-only queue with tombstones**: completing a task
//!   nulls its slot instead of shifting the queue (the pre-shard engine's
//!   `open.retain` was O(open) per completion).
//! * `open_head` lazily skips the tombstoned prefix, so the global "oldest
//!   open task" is found without scanning.
//! * each worker keeps a **monotone cursor** into `open`: every slot before
//!   it is *permanently* ineligible for that worker (tombstoned, or already
//!   answered by them), so an eligibility scan resumes where it left off
//!   instead of rescanning a clone of the whole open list per event.
//! * worker profiles and per-task answer models are indexed up front
//!   (`HashMap` lookups instead of the old O(pool) linear scan and the old
//!   per-event payload parse).

use crate::error::{Error, Result};
use crate::sim::answer::AnswerModel;
use crate::sim::latency::lognormal;
use crate::sim::worker::WorkerProfile;
use crate::types::{SimTime, Task, TaskId, TaskRun, TaskStatus, WorkerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One independent slice of the simulated world.
pub(crate) struct Shard {
    /// Tasks owned by this shard, by id.
    pub(crate) tasks: HashMap<TaskId, Task>,
    /// Runs collected per task.
    pub(crate) runs: HashMap<TaskId, Vec<TaskRun>>,
    /// Workers who already *submitted* a run for the task (the platform
    /// invariant: at most one run per worker per task).
    answered_by: HashMap<TaskId, HashSet<WorkerId>>,
    /// Answer model parsed once at publish time (the pre-shard engine
    /// re-extracted it from the payload on every event).
    models: HashMap<TaskId, Option<AnswerModel>>,
    /// Open tasks in publish order; completion tombstones the slot.
    open: Vec<Option<TaskId>>,
    /// First possibly-live slot of `open`, advanced lazily past tombstones.
    open_head: usize,
    /// Live (non-tombstoned) entries in `open`.
    open_live: usize,
    /// Workers ready to pick up tasks, keyed by availability time.
    available: BinaryHeap<Reverse<(SimTime, WorkerId)>>,
    /// Workers parked because no eligible task existed when they came up.
    parked: Vec<(WorkerId, SimTime)>,
    /// Per-worker resume point into `open`; monotone, never rewinds.
    cursor: HashMap<WorkerId, usize>,
    /// This shard's slice of the roster, indexed for O(1) profile lookup.
    profiles: HashMap<WorkerId, WorkerProfile>,
    /// The shard's virtual clock (simulated milliseconds).
    pub(crate) clock: SimTime,
    rng: StdRng,
    /// Events processed (submitted runs *and* abandonments).
    pub(crate) events: u64,
}

impl Shard {
    /// Builds a shard over `workers` (in roster order — their position is
    /// the initial availability stagger, exactly like the pre-shard
    /// engine's pool order) with the given derived seed.
    pub(crate) fn new(workers: Vec<WorkerProfile>, shard_seed: u64) -> Self {
        let mut available = BinaryHeap::with_capacity(workers.len());
        let mut profiles = HashMap::with_capacity(workers.len());
        for (i, w) in workers.into_iter().enumerate() {
            // Tiny stagger so initial pickup order interleaves naturally.
            available.push(Reverse((i as SimTime, w.id)));
            profiles.insert(w.id, w);
        }
        Shard {
            tasks: HashMap::new(),
            runs: HashMap::new(),
            answered_by: HashMap::new(),
            models: HashMap::new(),
            open: Vec::new(),
            open_head: 0,
            open_live: 0,
            available,
            parked: Vec::new(),
            cursor: HashMap::new(),
            profiles,
            clock: 0,
            rng: StdRng::seed_from_u64(shard_seed),
            events: 0,
        }
    }

    /// Registers a published task (the engine allocated its id and stamped
    /// `published_at` with this shard's clock).
    pub(crate) fn insert_task(&mut self, task: Task) {
        let id = task.id;
        self.models.insert(id, AnswerModel::extract(&task.payload));
        self.tasks.insert(id, task);
        self.runs.insert(id, Vec::new());
        self.answered_by.insert(id, HashSet::new());
        self.open.push(Some(id));
        self.open_live += 1;
    }

    /// Re-queues every parked worker (new work may have arrived, or a
    /// completion may have freed up an eligible slot).
    pub(crate) fn wake_parked(&mut self) {
        let clock = self.clock;
        for (w, at) in std::mem::take(&mut self.parked) {
            self.available.push(Reverse((at.max(clock), w)));
        }
    }

    /// Processes one event: pops the earliest-available worker, matches
    /// them with the oldest open task they have not answered, and samples
    /// their think-time and answer (or abandonment). Returns `false` when
    /// no further progress is possible on this shard.
    pub(crate) fn step(&mut self) -> Result<bool> {
        if self.open_live == 0 {
            return Ok(false);
        }
        // Pop workers until one can be matched with an open task.
        while let Some(Reverse((avail_at, worker_id))) = self.available.pop() {
            // Advance the global head past the tombstoned prefix (paid once
            // per completed task over the shard's whole lifetime).
            while self.open.get(self.open_head) == Some(&None) {
                self.open_head += 1;
            }
            // Resume this worker's scan where it permanently left off.
            let mut pos =
                self.cursor.get(&worker_id).copied().unwrap_or(0).max(self.open_head);
            let mut found = None;
            while pos < self.open.len() {
                match self.open[pos] {
                    // Tombstone: permanently ineligible for everyone.
                    None => pos += 1,
                    Some(tid) => {
                        if self.answered_by[&tid].contains(&worker_id) {
                            // Answered tasks never reopen: skip permanently.
                            pos += 1;
                        } else {
                            found = Some((pos, tid));
                            break;
                        }
                    }
                }
            }
            // `pos` only ever advanced past permanently-ineligible slots
            // (or stopped on the candidate), so the cursor stays sound even
            // if the worker abandons the candidate below.
            self.cursor.insert(worker_id, pos);
            let Some((slot, task_id)) = found else {
                self.parked.push((worker_id, avail_at));
                continue;
            };

            self.clock = self.clock.max(avail_at);
            let assigned_at = self.clock;
            let profile = &self.profiles[&worker_id];
            let think_ms =
                lognormal(&mut self.rng, profile.speed_median_ms.max(1.0), profile.speed_sigma)
                    .ceil()
                    .max(1.0) as SimTime;
            let submitted_at = assigned_at + think_ms;

            let abandons = self.rng.gen::<f64>() < profile.abandon_p;
            self.events += 1;
            if abandons {
                // The worker wastes the time but submits nothing; the slot
                // stays open and the worker may retry later.
                self.available.push(Reverse((submitted_at, worker_id)));
                return Ok(true);
            }

            let task = self.tasks.get(&task_id).ok_or(Error::UnknownTask(task_id))?;
            let n_assignments = task.n_assignments;
            let answer = match &self.models[&task_id] {
                Some(model) => model.sample(profile, &mut self.rng),
                // Payloads without a model get an opaque echo answer, so
                // plumbing tests don't need to construct models.
                None => serde_json::json!({ "echo": task.payload }),
            };
            let runs = self.runs.get_mut(&task_id).expect("runs exist");
            runs.push(TaskRun { task_id, worker_id, answer, assigned_at, submitted_at });
            let done = runs.len() as u32 >= n_assignments;
            self.answered_by.get_mut(&task_id).expect("set exists").insert(worker_id);

            if done {
                self.tasks.get_mut(&task_id).expect("task exists").status =
                    TaskStatus::Completed;
                self.open[slot] = None;
                self.open_live -= 1;
                // Task list changed: parked workers may now have work.
                self.wake_parked();
            }
            self.available.push(Reverse((submitted_at, worker_id)));
            return Ok(true);
        }
        // Every worker is parked: redundancy cannot be met.
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TaskStatus;

    fn task(id: TaskId, n: u32) -> Task {
        Task {
            id,
            project_id: 1,
            payload: serde_json::json!({ "raw": id }),
            n_assignments: n,
            published_at: 0,
            status: TaskStatus::Open,
        }
    }

    fn shard(n_workers: u64) -> Shard {
        let workers =
            (1..=n_workers).map(|id| WorkerProfile::with_ability(id, 1.0)).collect();
        Shard::new(workers, 7)
    }

    #[test]
    fn completion_tombstones_instead_of_shifting() {
        let mut s = shard(3);
        for id in 1..=3 {
            s.insert_task(task(id, 1));
        }
        assert_eq!(s.open_live, 3);
        while s.step().unwrap() {}
        assert_eq!(s.open_live, 0);
        // The queue itself never shrank — completion is O(1).
        assert_eq!(s.open.len(), 3);
        assert!(s.open.iter().all(Option::is_none));
        assert!(s.tasks.values().all(|t| t.status == TaskStatus::Completed));
    }

    #[test]
    fn cursors_never_rewind() {
        let mut s = shard(2);
        for id in 1..=6 {
            s.insert_task(task(id, 2));
        }
        let mut last: HashMap<WorkerId, usize> = HashMap::new();
        while s.step().unwrap() {
            for (&w, &c) in &s.cursor {
                assert!(c >= last.get(&w).copied().unwrap_or(0), "cursor rewound");
                last.insert(w, c);
            }
        }
        assert_eq!(s.open_live, 0);
    }

    #[test]
    fn empty_shard_makes_no_progress() {
        let mut s = shard(0);
        assert!(!s.step().unwrap());
        s.insert_task(task(1, 1));
        // A task but no workers: the shard stalls rather than panics.
        assert!(!s.step().unwrap());
        assert_eq!(s.events, 0);
    }
}
