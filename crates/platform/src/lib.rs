//! # reprowd-platform
//!
//! A crowdsourcing platform, in-process.
//!
//! The original Reprowd drives **PyBossa** — an external server through
//! which human workers receive tasks and submit answers. No crowdsourcing
//! ecosystem exists in this environment, so this crate substitutes the
//! platform with a faithful in-process implementation of the same object
//! model (projects → tasks → task runs, n-assignment redundancy, at most
//! one run per worker per task), plus a **deterministic discrete-event
//! worker simulator** standing in for the human crowd:
//!
//! * [`types`] — [`Project`], [`Task`], [`TaskRun`]: the
//!   PyBossa-equivalent records, including
//!   the lineage fields (who answered, when published/assigned/submitted)
//!   the paper's *examinable* requirement needs.
//! * [`platform`] — the [`CrowdPlatform`] trait the client library codes
//!   against. API-call counting is built in because the paper's headline
//!   property ("rerunning issues no new crowd work") is measured in calls.
//! * [`sim`] — the simulator: worker pools with per-worker ability, bias,
//!   latency and abandonment ([`sim::worker`]), ground-truth-driven answer
//!   models ([`sim::answer`]), and a seeded event loop ([`sim::engine`]).
//! * [`mock`] — a scriptable platform for unit tests.
//! * [`failing`] — a fault-injection wrapper that fails after a budget of
//!   calls, used by the crash-recovery experiments (E4).
//! * [`gate`] — the ordered-issue sequencer behind the pipelined execution
//!   engine: overlapped round-trips, effects in deterministic slot order.
//! * [`latency`] — a wire-latency wrapper ([`LatencyPlatform`]) restoring
//!   the round-trip cost a real crowd backend has, so pipelining depth is
//!   measurable (E15).
//!
//! The simulation is *fully deterministic* given a seed — which is stronger
//! than a human crowd and deliberately so: it lets the reproducibility
//! experiments distinguish "same answers because cached" (Reprowd's
//! guarantee) from "same answers by luck".

#![warn(missing_docs)]

pub mod error;
pub mod failing;
pub mod gate;
pub mod latency;
pub mod mock;
pub mod platform;
pub mod sim;
pub mod types;

pub use error::{Error, Result};
pub use failing::FailingPlatform;
pub use gate::{IssueGate, IssueTurn};
pub use latency::LatencyPlatform;
pub use mock::MockPlatform;
pub use platform::CrowdPlatform;
pub use sim::answer::AnswerModel;
pub use sim::engine::{SimConfig, SimPlatform};
pub use sim::worker::{WorkerPool, WorkerProfile};
pub use types::{Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec, WorkerId};
