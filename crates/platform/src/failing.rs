//! Fault injection: a platform wrapper that fails after a call budget.
//!
//! The paper's sharable requirement is about surviving crashes *mid-
//! experiment*. [`FailingPlatform`] wraps any [`CrowdPlatform`] and makes
//! every API call after the first `budget` return [`Error::Injected`] —
//! emulating the process dying between "published task 57" and "published
//! task 58". The crash-recovery experiment (E4) reruns the experiment over
//! the same store afterwards and verifies only the remaining work happens.

use crate::error::{Error, Result};
use crate::platform::CrowdPlatform;
use crate::types::{Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps a platform; API calls beyond `budget` fail with
/// [`Error::Injected`]. `step` and reads of the clock never fail — the
/// crash is the *client's* crash, not the crowd's.
pub struct FailingPlatform<P> {
    inner: Arc<P>,
    budget: AtomicU64,
}

impl<P: CrowdPlatform> FailingPlatform<P> {
    /// Allows `budget` API calls before failing.
    pub fn new(inner: Arc<P>, budget: u64) -> Self {
        FailingPlatform { inner, budget: AtomicU64::new(budget) }
    }

    /// Replenishes the budget (e.g. "the process restarted").
    pub fn reset_budget(&self, budget: u64) {
        self.budget.store(budget, Ordering::SeqCst);
    }

    /// Remaining allowed calls.
    pub fn remaining(&self) -> u64 {
        self.budget.load(Ordering::SeqCst)
    }

    /// The wrapped platform.
    pub fn inner(&self) -> &Arc<P> {
        &self.inner
    }

    fn charge(&self) -> Result<()> {
        // Decrement-if-positive without underflow.
        loop {
            let cur = self.budget.load(Ordering::SeqCst);
            if cur == 0 {
                return Err(Error::Injected("API-call budget exhausted".into()));
            }
            if self
                .budget
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(());
            }
        }
    }
}

impl<P: CrowdPlatform> CrowdPlatform for FailingPlatform<P> {
    fn name(&self) -> &str {
        "failing"
    }

    fn create_project(&self, name: &str) -> Result<ProjectId> {
        self.charge()?;
        self.inner.create_project(name)
    }

    fn project(&self, id: ProjectId) -> Result<Project> {
        self.inner.project(id)
    }

    fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task> {
        self.charge()?;
        self.inner.publish_task(project, spec)
    }

    fn task(&self, id: TaskId) -> Result<Task> {
        self.charge()?;
        self.inner.task(id)
    }

    fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>> {
        self.charge()?;
        self.inner.fetch_runs(task)
    }

    fn is_complete(&self, task: TaskId) -> Result<bool> {
        self.inner.is_complete(task)
    }

    fn step(&self) -> Result<bool> {
        self.inner.step()
    }

    fn api_calls(&self) -> u64 {
        self.inner.api_calls()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockPlatform;

    #[test]
    fn fails_after_budget() {
        let p = FailingPlatform::new(Arc::new(MockPlatform::echo()), 3);
        let proj = p.create_project("x").unwrap(); // 1
        let spec = || TaskSpec { payload: serde_json::json!(1), n_assignments: 1 };
        p.publish_task(proj, spec()).unwrap(); // 2
        p.publish_task(proj, spec()).unwrap(); // 3
        let err = p.publish_task(proj, spec()).unwrap_err();
        assert!(matches!(err, Error::Injected(_)));
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn partial_publish_leaves_prefix_on_platform() {
        // Publishing 5 tasks with budget 1+3: the project plus three tasks
        // land; the rest fail. Exactly the crash-mid-step-3 scenario.
        let inner = Arc::new(MockPlatform::echo());
        let p = FailingPlatform::new(Arc::clone(&inner), 4);
        let proj = p.create_project("x").unwrap();
        let specs: Vec<TaskSpec> = (0..5)
            .map(|i| TaskSpec { payload: serde_json::json!(i), n_assignments: 1 })
            .collect();
        let err = p.publish_tasks(proj, specs).unwrap_err();
        assert!(matches!(err, Error::Injected(_)));
        // Three tasks made it to the real platform before the "crash".
        assert_eq!(inner.api_calls(), 4); // create + 3 publishes
    }

    #[test]
    fn reset_budget_resumes() {
        let p = FailingPlatform::new(Arc::new(MockPlatform::echo()), 1);
        let proj = p.create_project("x").unwrap();
        assert!(p
            .publish_task(proj, TaskSpec { payload: serde_json::json!(1), n_assignments: 1 })
            .is_err());
        p.reset_budget(10);
        assert!(p
            .publish_task(proj, TaskSpec { payload: serde_json::json!(1), n_assignments: 1 })
            .is_ok());
    }

    #[test]
    fn step_and_clock_never_charged() {
        let p = FailingPlatform::new(Arc::new(MockPlatform::echo()), 0);
        assert!(!p.step().unwrap());
        let _ = p.now();
        assert_eq!(p.remaining(), 0);
    }
}
