//! Fault injection: a platform wrapper that fails after a call budget.
//!
//! The paper's sharable requirement is about surviving crashes *mid-
//! experiment*. [`FailingPlatform`] wraps any [`CrowdPlatform`] and makes
//! every API call after the first `budget` return [`Error::Injected`] —
//! emulating the process dying between "published task 57" and "published
//! task 58". The crash-recovery experiment (E4) reruns the experiment over
//! the same store afterwards and verifies only the remaining work happens.

use crate::error::{Error, Result};
use crate::platform::CrowdPlatform;
use crate::types::{Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps a platform; API calls beyond `budget` fail with
/// [`Error::Injected`]. `step` and reads of the clock never fail — the
/// crash is the *client's* crash, not the crowd's.
///
/// The budget is one atomic counter, decremented with a single
/// compare-and-swap per charged call, so concurrent in-flight batches (the
/// pipelined execution engine keeps several outstanding at once) can
/// neither double-spend a unit nor race past zero: with budget `b`,
/// exactly `b` calls succeed no matter how many threads are charging.
/// *Which* batch the crash lands on is pinned separately: the pipelined
/// bulk variants charge inside their [`IssueGate`](crate::gate::IssueGate)
/// turn (via the trait defaults), so the budget runs out at the same batch
/// index at every in-flight depth.
pub struct FailingPlatform<P> {
    inner: Arc<P>,
    budget: AtomicU64,
}

impl<P: CrowdPlatform> FailingPlatform<P> {
    /// Allows `budget` API calls before failing.
    pub fn new(inner: Arc<P>, budget: u64) -> Self {
        FailingPlatform { inner, budget: AtomicU64::new(budget) }
    }

    /// Replenishes the budget (e.g. "the process restarted").
    pub fn reset_budget(&self, budget: u64) {
        self.budget.store(budget, Ordering::SeqCst);
    }

    /// Remaining allowed calls.
    pub fn remaining(&self) -> u64 {
        self.budget.load(Ordering::SeqCst)
    }

    /// The wrapped platform.
    pub fn inner(&self) -> &Arc<P> {
        &self.inner
    }

    /// Atomically spends one budget unit: a lone `fetch_update` that
    /// decrements only while positive, so exhaustion cannot be overshot
    /// by concurrent chargers (no load-then-store window).
    fn charge(&self) -> Result<()> {
        self.budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| cur.checked_sub(1))
            .map(|_| ())
            .map_err(|_| Error::Injected("API-call budget exhausted".into()))
    }
}

impl<P: CrowdPlatform> CrowdPlatform for FailingPlatform<P> {
    fn name(&self) -> &str {
        "failing"
    }

    fn create_project(&self, name: &str) -> Result<ProjectId> {
        self.charge()?;
        self.inner.create_project(name)
    }

    fn project(&self, id: ProjectId) -> Result<Project> {
        self.inner.project(id)
    }

    fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task> {
        self.charge()?;
        self.inner.publish_task(project, spec)
    }

    /// One budget unit per bulk request (a batch is one round-trip), then
    /// forwards to the wrapped platform's bulk publish. A crash therefore
    /// lands *between* batches — the granularity the batched pipeline's
    /// recovery story is built on.
    fn publish_tasks(&self, project: ProjectId, specs: Vec<TaskSpec>) -> Result<Vec<Task>> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        self.charge()?;
        self.inner.publish_tasks(project, specs)
    }

    fn task(&self, id: TaskId) -> Result<Task> {
        self.charge()?;
        self.inner.task(id)
    }

    fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>> {
        self.charge()?;
        self.inner.fetch_runs(task)
    }

    /// One budget unit per bulk request, then forwards to the wrapped
    /// platform's bulk fetch.
    fn fetch_runs_bulk(&self, tasks: &[TaskId]) -> Result<Vec<Vec<TaskRun>>> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        self.charge()?;
        self.inner.fetch_runs_bulk(tasks)
    }

    fn is_complete(&self, task: TaskId) -> Result<bool> {
        self.inner.is_complete(task)
    }

    /// Status probes are never charged, like [`is_complete`]
    /// (the budget models the calls the experiments count).
    ///
    /// [`is_complete`]: CrowdPlatform::is_complete
    fn are_complete(&self, tasks: &[TaskId]) -> Result<Vec<Option<bool>>> {
        self.inner.are_complete(tasks)
    }

    fn step(&self) -> Result<bool> {
        self.inner.step()
    }

    fn api_calls(&self) -> u64 {
        self.inner.api_calls()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockPlatform;

    #[test]
    fn fails_after_budget() {
        let p = FailingPlatform::new(Arc::new(MockPlatform::echo()), 3);
        let proj = p.create_project("x").unwrap(); // 1
        let spec = || TaskSpec { payload: serde_json::json!(1), n_assignments: 1 };
        p.publish_task(proj, spec()).unwrap(); // 2
        p.publish_task(proj, spec()).unwrap(); // 3
        let err = p.publish_task(proj, spec()).unwrap_err();
        assert!(matches!(err, Error::Injected(_)));
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn partial_publish_leaves_prefix_on_platform() {
        // Publishing 6 tasks in batches of 2 with budget 1+2: the project
        // plus two whole batches land; the third batch fails. Exactly the
        // crash-between-batches scenario the batched pipeline recovers from.
        let inner = Arc::new(MockPlatform::echo());
        let p = FailingPlatform::new(Arc::clone(&inner), 3);
        let proj = p.create_project("x").unwrap();
        let spec = |i: i32| TaskSpec { payload: serde_json::json!(i), n_assignments: 1 };
        assert_eq!(p.publish_tasks(proj, vec![spec(0), spec(1)]).unwrap().len(), 2);
        assert_eq!(p.publish_tasks(proj, vec![spec(2), spec(3)]).unwrap().len(), 2);
        let err = p.publish_tasks(proj, vec![spec(4), spec(5)]).unwrap_err();
        assert!(matches!(err, Error::Injected(_)));
        // Four tasks (two atomic batches) made it to the real platform
        // before the "crash"; the failed batch left nothing behind.
        assert_eq!(inner.api_calls(), 3); // create + 2 bulk publishes
    }

    #[test]
    fn bulk_ops_cost_one_budget_unit_each() {
        let inner = Arc::new(MockPlatform::echo());
        let p = FailingPlatform::new(Arc::clone(&inner), 2);
        let proj = p.create_project("x").unwrap(); // 1 unit
        let specs: Vec<TaskSpec> = (0..10)
            .map(|i| TaskSpec { payload: serde_json::json!(i), n_assignments: 1 })
            .collect();
        // 10 specs, 1 unit: a batch is one round-trip.
        let tasks = p.publish_tasks(proj, specs).unwrap();
        assert_eq!(tasks.len(), 10);
        assert_eq!(p.remaining(), 0);
        // Empty bulk requests are free even with an exhausted budget.
        assert!(p.publish_tasks(proj, Vec::new()).unwrap().is_empty());
        assert!(p.fetch_runs_bulk(&[]).unwrap().is_empty());
        // A non-empty bulk fetch now fails: the budget is spent.
        let ids: Vec<_> = tasks.iter().map(|t| t.id).collect();
        assert!(matches!(p.fetch_runs_bulk(&ids).unwrap_err(), Error::Injected(_)));
    }

    #[test]
    fn reset_budget_resumes() {
        let p = FailingPlatform::new(Arc::new(MockPlatform::echo()), 1);
        let proj = p.create_project("x").unwrap();
        assert!(p
            .publish_task(proj, TaskSpec { payload: serde_json::json!(1), n_assignments: 1 })
            .is_err());
        p.reset_budget(10);
        assert!(p
            .publish_task(proj, TaskSpec { payload: serde_json::json!(1), n_assignments: 1 })
            .is_ok());
    }

    #[test]
    fn concurrent_bulk_calls_never_overspend_the_budget() {
        // 32 threads race 4 bulk publishes each against a budget of 9
        // (after create): exactly 9 must succeed, the rest must all see
        // the injected fault, and the counter must end exactly at zero.
        use std::sync::atomic::AtomicUsize;
        let inner = Arc::new(MockPlatform::echo());
        let p = FailingPlatform::new(Arc::clone(&inner), 10);
        let proj = p.create_project("x").unwrap(); // spends 1
        let ok = AtomicUsize::new(0);
        let failed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..32 {
                let p = &p;
                let ok = &ok;
                let failed = &failed;
                scope.spawn(move || {
                    for i in 0..4 {
                        let spec = TaskSpec {
                            payload: serde_json::json!([t, i]),
                            n_assignments: 1,
                        };
                        match p.publish_tasks(proj, vec![spec]) {
                            Ok(_) => ok.fetch_add(1, Ordering::SeqCst),
                            Err(Error::Injected(_)) => failed.fetch_add(1, Ordering::SeqCst),
                            Err(e) => panic!("unexpected error: {e}"),
                        };
                    }
                });
            }
        });
        assert_eq!(ok.load(Ordering::SeqCst), 9, "exactly the budget succeeds");
        assert_eq!(failed.load(Ordering::SeqCst), 32 * 4 - 9);
        assert_eq!(p.remaining(), 0, "no underflow, no leftover");
        // Every accepted batch reached the real platform (create + 9).
        assert_eq!(inner.api_calls(), 10);
    }

    #[test]
    fn pipelined_charges_land_in_slot_order() {
        // Budget for create + 3 batches, 6 batches in flight: the gate
        // (via the trait's default pipelined publish) must make the budget
        // run out at batch 3 — and cancel 4 and 5 before they charge — at
        // every thread interleaving.
        use crate::gate::IssueGate;
        for _round in 0..8 {
            let inner = Arc::new(MockPlatform::echo());
            let p = FailingPlatform::new(Arc::clone(&inner), 4);
            let proj = p.create_project("x").unwrap();
            let gate = IssueGate::new();
            let outcomes: Vec<Result<Vec<crate::types::Task>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..6u64)
                        .map(|slot| {
                            let p = &p;
                            let gate = &gate;
                            scope.spawn(move || {
                                let spec = TaskSpec {
                                    payload: serde_json::json!(slot),
                                    n_assignments: 1,
                                };
                                p.publish_tasks_pipelined(proj, vec![spec], gate, slot)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
            for (slot, out) in outcomes.iter().enumerate() {
                match slot {
                    0..=2 => assert!(out.is_ok(), "batch {slot} fits the budget"),
                    3 => assert!(
                        matches!(out, Err(Error::Injected(_))),
                        "batch 3 must be the crash point, got {out:?}"
                    ),
                    _ => assert!(
                        matches!(out, Err(Error::Cancelled(_))),
                        "batch {slot} must be cancelled, got {out:?}"
                    ),
                }
            }
            // Cancelled batches never reached the platform or the budget.
            assert_eq!(inner.api_calls(), 4, "create + exactly 3 accepted batches");
            assert_eq!(p.remaining(), 0);
        }
    }

    #[test]
    fn step_and_clock_never_charged() {
        let p = FailingPlatform::new(Arc::new(MockPlatform::echo()), 0);
        assert!(!p.step().unwrap());
        let _ = p.now();
        assert_eq!(p.remaining(), 0);
    }
}
