//! Platform error type.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by a crowdsourcing platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Referenced project does not exist.
    UnknownProject(u64),
    /// Referenced task does not exist.
    UnknownTask(u64),
    /// The simulation cannot make progress (e.g. every worker already did
    /// every open task and redundancy is still unmet).
    Starved(String),
    /// A malformed request (e.g. zero assignments requested).
    InvalidRequest(String),
    /// Injected by [`FailingPlatform`](crate::failing::FailingPlatform) to
    /// emulate a crash mid-experiment.
    Injected(String),
    /// A pipelined call was cancelled before issuing because an earlier
    /// call in the same ordered stream failed (see
    /// [`IssueGate`](crate::gate::IssueGate)). The platform never saw it.
    Cancelled(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownProject(id) => write!(f, "unknown project {id}"),
            Error::UnknownTask(id) => write!(f, "unknown task {id}"),
            Error::Starved(msg) => write!(f, "simulation starved: {msg}"),
            Error::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            Error::Injected(msg) => write!(f, "injected fault: {msg}"),
            Error::Cancelled(msg) => write!(f, "cancelled: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::UnknownProject(3).to_string().contains('3'));
        assert!(Error::UnknownTask(9).to_string().contains('9'));
        assert!(Error::Starved("x".into()).to_string().contains("starved"));
        assert!(Error::InvalidRequest("y".into()).to_string().contains("invalid"));
        assert!(Error::Injected("z".into()).to_string().contains("fault"));
        assert!(Error::Cancelled("w".into()).to_string().contains("cancelled"));
    }
}
