//! [`LatencyPlatform`] — wire latency for any [`CrowdPlatform`].
//!
//! The in-process platforms answer in microseconds, which hides the cost
//! structure of a real crowd backend: there, every round-trip pays tens to
//! hundreds of milliseconds of network latency, and that latency — not the
//! server work — dominates end-to-end publish/collect time. This wrapper
//! restores that cost so the pipelined execution engine's overlap can be
//! measured (experiment E15): each client-visible round-trip sleeps a
//! configurable wall-clock duration, split into a request half before the
//! inner call and a response half after it.
//!
//! The pipelined bulk variants are overridden to model a pipelined
//! connection faithfully: the sleeps happen *outside* the
//! [`IssueGate`] turn while the inner call — the
//! server-side effect — happens inside it. Concurrent in-flight batches
//! therefore overlap their wire time but apply their effects in slot
//! order, which keeps results bit-identical to sequential execution at
//! every in-flight depth.
//!
//! (Not to be confused with [`crate::sim::latency`], the worker
//! *think-time* distributions inside the simulated crowd. This module
//! models the client ↔ platform wire.)

use crate::error::Result;
use crate::gate::IssueGate;
use crate::platform::CrowdPlatform;
use crate::types::{Project, ProjectId, SimTime, Task, TaskId, TaskRun, TaskSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wraps a platform so every round-trip costs `rtt` of wall-clock time.
///
/// Empty bulk requests stay free (no request is sent), matching the bulk
/// endpoints' accounting. `step`, `now`, and `project` lookups are treated
/// as local (the simulator's event loop is not a network peer).
pub struct LatencyPlatform<P> {
    inner: Arc<P>,
    rtt: Duration,
    round_trips: AtomicU64,
}

impl<P: CrowdPlatform> LatencyPlatform<P> {
    /// Adds `rtt` of round-trip latency in front of `inner`.
    pub fn new(inner: Arc<P>, rtt: Duration) -> Self {
        LatencyPlatform { inner, rtt, round_trips: AtomicU64::new(0) }
    }

    /// The wrapped platform.
    pub fn inner(&self) -> &Arc<P> {
        &self.inner
    }

    /// Wall-clock round-trips served (latency-charged calls).
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// One half of the configured round-trip (request or response leg).
    fn half(&self) -> Duration {
        self.rtt / 2
    }

    /// Sleeps a full round-trip and counts it.
    fn pay_full(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.rtt);
    }

    /// Request leg: counts the round-trip, sleeps the first half.
    fn pay_request(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.half());
    }

    /// Response leg: sleeps the remaining half.
    fn pay_response(&self) {
        std::thread::sleep(self.rtt - self.half());
    }
}

impl<P: CrowdPlatform> CrowdPlatform for LatencyPlatform<P> {
    fn name(&self) -> &str {
        "latency"
    }

    fn create_project(&self, name: &str) -> Result<ProjectId> {
        self.pay_full();
        self.inner.create_project(name)
    }

    fn project(&self, id: ProjectId) -> Result<Project> {
        self.inner.project(id)
    }

    fn publish_task(&self, project: ProjectId, spec: TaskSpec) -> Result<Task> {
        self.pay_full();
        self.inner.publish_task(project, spec)
    }

    fn publish_tasks(&self, project: ProjectId, specs: Vec<TaskSpec>) -> Result<Vec<Task>> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        self.pay_full();
        self.inner.publish_tasks(project, specs)
    }

    /// Request leg on the wire, inner effect inside the turn, response leg
    /// on the wire: in-flight batches overlap their latency while the
    /// platform applies them in slot order.
    fn publish_tasks_pipelined(
        &self,
        project: ProjectId,
        specs: Vec<TaskSpec>,
        order: &IssueGate,
        slot: u64,
    ) -> Result<Vec<Task>> {
        if specs.is_empty() {
            // No request on the wire; still advance the slot order.
            order.turn(slot)?.complete();
            return Ok(Vec::new());
        }
        self.pay_request();
        let turn = order.turn(slot)?;
        let out = self.inner.publish_tasks(project, specs)?;
        turn.complete();
        self.pay_response();
        Ok(out)
    }

    fn task(&self, id: TaskId) -> Result<Task> {
        self.pay_full();
        self.inner.task(id)
    }

    fn fetch_runs(&self, task: TaskId) -> Result<Vec<TaskRun>> {
        self.pay_full();
        self.inner.fetch_runs(task)
    }

    fn fetch_runs_bulk(&self, tasks: &[TaskId]) -> Result<Vec<Vec<TaskRun>>> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        self.pay_full();
        self.inner.fetch_runs_bulk(tasks)
    }

    /// See [`publish_tasks_pipelined`](Self::publish_tasks_pipelined).
    fn fetch_runs_bulk_pipelined(
        &self,
        tasks: &[TaskId],
        order: &IssueGate,
        slot: u64,
    ) -> Result<Vec<Vec<TaskRun>>> {
        if tasks.is_empty() {
            order.turn(slot)?.complete();
            return Ok(Vec::new());
        }
        self.pay_request();
        let turn = order.turn(slot)?;
        let out = self.inner.fetch_runs_bulk(tasks)?;
        turn.complete();
        self.pay_response();
        Ok(out)
    }

    fn is_complete(&self, task: TaskId) -> Result<bool> {
        self.pay_full();
        self.inner.is_complete(task)
    }

    /// A status probe is free on the API-call meter but still a wall-clock
    /// round-trip — the asymmetry the client-side probe ledger exists for.
    fn are_complete(&self, tasks: &[TaskId]) -> Result<Vec<Option<bool>>> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        self.pay_full();
        self.inner.are_complete(tasks)
    }

    /// See [`publish_tasks_pipelined`](Self::publish_tasks_pipelined).
    fn are_complete_pipelined(
        &self,
        tasks: &[TaskId],
        order: &IssueGate,
        slot: u64,
    ) -> Result<Vec<Option<bool>>> {
        if tasks.is_empty() {
            order.turn(slot)?.complete();
            return Ok(Vec::new());
        }
        self.pay_request();
        let turn = order.turn(slot)?;
        let out = self.inner.are_complete(tasks)?;
        turn.complete();
        self.pay_response();
        Ok(out)
    }

    fn step(&self) -> Result<bool> {
        self.inner.step()
    }

    /// One poll cycle's worth of latency, then the inner platform's own
    /// (fast, possibly parallel) completion driver.
    fn run_until_complete(&self, tasks: &[TaskId]) -> Result<()> {
        if tasks.is_empty() {
            return Ok(());
        }
        self.pay_full();
        self.inner.run_until_complete(tasks)
    }

    /// See [`publish_tasks_pipelined`](Self::publish_tasks_pipelined).
    fn run_until_complete_pipelined(
        &self,
        tasks: &[TaskId],
        order: &IssueGate,
        slot: u64,
    ) -> Result<()> {
        if tasks.is_empty() {
            order.turn(slot)?.complete();
            return Ok(());
        }
        self.pay_request();
        let turn = order.turn(slot)?;
        self.inner.run_until_complete(tasks)?;
        turn.complete();
        self.pay_response();
        Ok(())
    }

    fn api_calls(&self) -> u64 {
        self.inner.api_calls()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockPlatform;
    use std::time::Instant;

    fn specs(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec { payload: serde_json::json!({ "i": i }), n_assignments: 1 })
            .collect()
    }

    #[test]
    fn results_identical_to_inner_and_calls_delegate() {
        let rtt = Duration::from_millis(1);
        let lat = LatencyPlatform::new(Arc::new(MockPlatform::echo()), rtt);
        let bare = MockPlatform::echo();
        let (pl, pb) = (lat.create_project("t").unwrap(), bare.create_project("t").unwrap());
        let tl = lat.publish_tasks(pl, specs(3)).unwrap();
        let tb = bare.publish_tasks(pb, specs(3)).unwrap();
        assert_eq!(tl, tb, "latency must not change what the platform returns");
        let ids: Vec<TaskId> = tl.iter().map(|t| t.id).collect();
        lat.run_until_complete(&ids).unwrap();
        bare.run_until_complete(&ids).unwrap();
        assert_eq!(lat.fetch_runs_bulk(&ids).unwrap(), bare.fetch_runs_bulk(&ids).unwrap());
        assert_eq!(lat.api_calls(), bare.api_calls());
        assert!(lat.round_trips() >= 3, "create + publish + rc + fetch were on the wire");
    }

    #[test]
    fn pipelined_batches_overlap_but_apply_in_slot_order() {
        // 4 batches of 25ms RTT in flight at once: sequential wire time
        // would be ≥ 100ms; overlapped it is ~25ms + scheduling. The ids
        // must still come out in slot order (batch 0 gets the lowest ids).
        let rtt = Duration::from_millis(25);
        let lat = LatencyPlatform::new(Arc::new(MockPlatform::echo()), rtt);
        let proj = lat.create_project("t").unwrap();
        let gate = IssueGate::new();
        let start = Instant::now();
        let batches: Vec<Vec<Task>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|slot| {
                    let lat = &lat;
                    let gate = &gate;
                    scope.spawn(move || {
                        lat.publish_tasks_pipelined(proj, specs(2), gate, slot).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = start.elapsed();
        for (slot, batch) in batches.iter().enumerate() {
            assert_eq!(batch[0].id, 1 + 2 * slot as u64, "slot {slot} got wrong ids");
        }
        assert!(
            wall < Duration::from_millis(80),
            "4 pipelined 25ms round-trips took {wall:?} — no overlap happened"
        );
    }

    #[test]
    fn empty_bulk_requests_are_free_but_advance_the_slot() {
        let lat = LatencyPlatform::new(Arc::new(MockPlatform::echo()), Duration::from_secs(5));
        let gate = IssueGate::new();
        let start = Instant::now();
        assert!(lat.fetch_runs_bulk(&[]).unwrap().is_empty());
        assert!(lat.are_complete(&[]).unwrap().is_empty());
        lat.run_until_complete(&[]).unwrap();
        assert!(lat.are_complete_pipelined(&[], &gate, 0).unwrap().is_empty());
        assert!(lat
            .publish_tasks_pipelined(1, Vec::new(), &gate, 1)
            .unwrap()
            .is_empty());
        assert!(lat.fetch_runs_bulk_pipelined(&[], &gate, 2).unwrap().is_empty());
        lat.run_until_complete_pipelined(&[], &gate, 3).unwrap();
        assert_eq!(gate.admitted(), 4, "empty calls must still advance the order");
        assert_eq!(lat.round_trips(), 0);
        assert!(start.elapsed() < Duration::from_secs(1), "empty calls must not sleep");
    }
}
