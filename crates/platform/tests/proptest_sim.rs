//! Property tests of the platform simulator's invariants: determinism,
//! redundancy exactness, worker-distinctness, and timestamp sanity — for
//! arbitrary pool sizes, task counts, and seeds.

use proptest::prelude::*;
use reprowd_platform::{AnswerModel, CrowdPlatform, SimPlatform, TaskSpec};

fn spec(truth: usize, n: u32) -> TaskSpec {
    let model = AnswerModel::Label {
        truth,
        labels: vec!["Yes".into(), "No".into()],
        difficulty: 0.2,
    };
    TaskSpec { payload: model.embed(serde_json::json!({"i": truth})), n_assignments: n }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn simulation_invariants_hold(
        n_workers in 2usize..8,
        n_tasks in 1usize..20,
        redundancy in 1u32..4,
        seed in 0u64..10_000,
    ) {
        prop_assume!(redundancy as usize <= n_workers);
        let p = SimPlatform::quick(n_workers, 0.85, seed);
        let proj = p.create_project("prop").unwrap();
        let mut ids = Vec::new();
        for t in 0..n_tasks {
            ids.push(p.publish_task(proj, spec(t % 2, redundancy)).unwrap());
        }
        let task_ids: Vec<u64> = ids.iter().map(|t| t.id).collect();
        p.run_until_complete(&task_ids).unwrap();

        for task in &ids {
            let runs = p.fetch_runs(task.id).unwrap();
            // Exact redundancy.
            prop_assert_eq!(runs.len() as u32, redundancy);
            // Distinct workers.
            let workers: std::collections::HashSet<u64> =
                runs.iter().map(|r| r.worker_id).collect();
            prop_assert_eq!(workers.len(), runs.len());
            // Timestamp sanity.
            for r in &runs {
                prop_assert!(r.assigned_at >= task.published_at);
                prop_assert!(r.submitted_at > r.assigned_at);
            }
        }
    }

    #[test]
    fn same_seed_same_world(
        n_tasks in 1usize..15,
        seed in 0u64..10_000,
    ) {
        let world = |seed: u64| {
            let p = SimPlatform::quick(5, 0.8, seed);
            let proj = p.create_project("w").unwrap();
            let mut out = Vec::new();
            let mut ids = Vec::new();
            for t in 0..n_tasks {
                ids.push(p.publish_task(proj, spec(t % 2, 3)).unwrap().id);
            }
            p.run_until_complete(&ids).unwrap();
            for id in ids {
                out.push(p.fetch_runs(id).unwrap());
            }
            out
        };
        prop_assert_eq!(world(seed), world(seed));
    }

    #[test]
    fn per_worker_runs_never_overlap(
        n_tasks in 2usize..15,
        seed in 0u64..10_000,
    ) {
        let p = SimPlatform::quick(3, 0.9, seed);
        let proj = p.create_project("ser").unwrap();
        let mut ids = Vec::new();
        for t in 0..n_tasks {
            ids.push(p.publish_task(proj, spec(t % 2, 2)).unwrap().id);
        }
        p.run_until_complete(&ids).unwrap();
        // Collect all runs per worker, check intervals don't overlap.
        let mut by_worker: std::collections::HashMap<u64, Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for &id in &ids {
            for r in p.fetch_runs(id).unwrap() {
                by_worker.entry(r.worker_id).or_default().push((r.assigned_at, r.submitted_at));
            }
        }
        for (worker, mut intervals) in by_worker {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].1,
                    "worker {} overlaps: {:?} then {:?}",
                    worker,
                    w[0],
                    w[1]
                );
            }
        }
    }
}
