//! Property tests of the platform simulator's invariants: determinism,
//! redundancy exactness, worker-distinctness, and timestamp sanity — for
//! arbitrary pool sizes, task counts, seeds, and shard counts.

use proptest::prelude::*;
use reprowd_platform::{
    AnswerModel, CrowdPlatform, SimConfig, SimPlatform, TaskSpec, WorkerPool,
};

fn spec(truth: usize, n: u32) -> TaskSpec {
    let model = AnswerModel::Label {
        truth,
        labels: vec!["Yes".into(), "No".into()],
        difficulty: 0.2,
    };
    TaskSpec { payload: model.embed(serde_json::json!({"i": truth})), n_assignments: n }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn simulation_invariants_hold(
        n_workers in 2usize..8,
        n_tasks in 1usize..20,
        redundancy in 1u32..4,
        seed in 0u64..10_000,
    ) {
        prop_assume!(redundancy as usize <= n_workers);
        let p = SimPlatform::quick(n_workers, 0.85, seed);
        let proj = p.create_project("prop").unwrap();
        let mut ids = Vec::new();
        for t in 0..n_tasks {
            ids.push(p.publish_task(proj, spec(t % 2, redundancy)).unwrap());
        }
        let task_ids: Vec<u64> = ids.iter().map(|t| t.id).collect();
        p.run_until_complete(&task_ids).unwrap();

        for task in &ids {
            let runs = p.fetch_runs(task.id).unwrap();
            // Exact redundancy.
            prop_assert_eq!(runs.len() as u32, redundancy);
            // Distinct workers.
            let workers: std::collections::HashSet<u64> =
                runs.iter().map(|r| r.worker_id).collect();
            prop_assert_eq!(workers.len(), runs.len());
            // Timestamp sanity.
            for r in &runs {
                prop_assert!(r.assigned_at >= task.published_at);
                prop_assert!(r.submitted_at > r.assigned_at);
            }
        }
    }

    #[test]
    fn same_seed_same_world(
        n_tasks in 1usize..15,
        seed in 0u64..10_000,
    ) {
        let world = |seed: u64| {
            let p = SimPlatform::quick(5, 0.8, seed);
            let proj = p.create_project("w").unwrap();
            let mut out = Vec::new();
            let mut ids = Vec::new();
            for t in 0..n_tasks {
                ids.push(p.publish_task(proj, spec(t % 2, 3)).unwrap().id);
            }
            p.run_until_complete(&ids).unwrap();
            for id in ids {
                out.push(p.fetch_runs(id).unwrap());
            }
            out
        };
        prop_assert_eq!(world(seed), world(seed));
    }

    #[test]
    fn per_worker_runs_never_overlap(
        n_tasks in 2usize..15,
        seed in 0u64..10_000,
    ) {
        let p = SimPlatform::quick(3, 0.9, seed);
        let proj = p.create_project("ser").unwrap();
        let mut ids = Vec::new();
        for t in 0..n_tasks {
            ids.push(p.publish_task(proj, spec(t % 2, 2)).unwrap().id);
        }
        p.run_until_complete(&ids).unwrap();
        // Collect all runs per worker, check intervals don't overlap.
        let mut by_worker: std::collections::HashMap<u64, Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for &id in &ids {
            for r in p.fetch_runs(id).unwrap() {
                by_worker.entry(r.worker_id).or_default().push((r.assigned_at, r.submitted_at));
            }
        }
        for (worker, mut intervals) in by_worker {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].1,
                    "worker {} overlaps: {:?} then {:?}",
                    worker,
                    w[0],
                    w[1]
                );
            }
        }
    }

    /// The sharded determinism contract: a random publish/step/fetch
    /// sequence replayed on the same `(seed, shard_count)` produces a
    /// bit-identical world — whether shards are driven one event at a time
    /// from this thread (`step`'s round-robin) or drained to quiescence on
    /// one thread per shard (`run_until_complete`), and however the OS
    /// schedules those threads across repetitions.
    #[test]
    fn sharded_replay_is_bit_identical(
        n_workers in 4usize..24,
        n_first in 1usize..12,
        n_second in 0usize..12,
        mid_steps in 0usize..30,
        redundancy in 1u32..3,
        shards in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let build = || {
            SimPlatform::new(
                SimConfig::new(WorkerPool::uniform(n_workers, 0.85), seed)
                    .with_shards(shards),
            )
        };
        // Skip placements the partitioning legitimately rejects (a spec's
        // redundancy exceeding its home shard's roster).
        prop_assume!(
            build().shard_worker_counts().iter().all(|&c| c >= redundancy as usize)
        );
        let world = |parallel_drain: bool| {
            let p = build();
            let proj = p.create_project("replay").unwrap();
            // Wave 1 in bulk, a burst of manual single steps mid-flight,
            // then wave 2 one task at a time onto the warm world.
            let mut ids: Vec<u64> = p
                .publish_tasks(
                    proj,
                    (0..n_first).map(|t| spec(t % 2, redundancy)).collect(),
                )
                .unwrap()
                .iter()
                .map(|t| t.id)
                .collect();
            for _ in 0..mid_steps {
                p.step().unwrap();
            }
            for t in 0..n_second {
                ids.push(p.publish_task(proj, spec(t % 2, redundancy)).unwrap().id);
            }
            if parallel_drain {
                p.run_until_complete(&ids).unwrap();
            } else {
                while p.step().unwrap() {}
            }
            let tasks: Vec<_> = ids.iter().map(|&id| p.task(id).unwrap()).collect();
            (tasks, p.fetch_runs_bulk(&ids).unwrap(), p.now(), p.events())
        };
        let parallel = world(true);
        // Repeated parallel runs agree (fresh threads, fresh schedules)…
        prop_assert_eq!(&parallel, &world(true));
        // …and agree with the purely sequential single-step driver.
        prop_assert_eq!(&parallel, &world(false));
    }
}
