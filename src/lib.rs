//! # Reprowd — crowdsourced data processing made reproducible
//!
//! Facade crate re-exporting the whole Reprowd workspace behind one
//! dependency. See the crate-level docs of each member for details:
//!
//! * [`core`] — the CrowdData abstraction, CrowdContext, lineage, presenters
//!   (the paper's contribution).
//! * [`operators`] — crowdsourced data processing operators (label, filter,
//!   CrowdER join, transitive join, sort, max, count).
//! * [`platform`] — the simulated crowdsourcing platform and worker models.
//! * [`quality`] — quality control (majority vote, Dawid–Skene EM, …).
//! * [`storage`] — the embedded crash-safe store behind fault recovery.
//! * [`simjoin`] — string similarity joins (CrowdER's machine pass).
//! * [`datagen`] — seeded synthetic workloads for the experiment suite.
//!
//! ## Quickstart (paper Figure 2)
//!
//! ```
//! use reprowd::prelude::*;
//!
//! // Bob labels three images with 3-worker redundancy and majority vote.
//! let cc = CrowdContext::in_memory_sim(42);
//! let result = cc
//!     .crowddata("image-label")
//!     .unwrap()
//!     .data(vec![val!("img1.jpg"), val!("img2.jpg"), val!("img3.jpg")])
//!     .unwrap()
//!     .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
//!     .unwrap()
//!     .publish(3)
//!     .unwrap()
//!     .collect()
//!     .unwrap()
//!     .majority_vote()
//!     .unwrap();
//! assert_eq!(result.column("mv").unwrap().len(), 3);
//! ```

// Compile and run the README / ARCHITECTURE code snippets as doctests so
// the documented quickstart and batching examples can never drift from
// the real API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
mod readme_doctests {}

#[doc = include_str!("../ARCHITECTURE.md")]
#[cfg(doctest)]
mod architecture_doctests {}

pub use reprowd_core as core;
pub use reprowd_datagen as datagen;
pub use reprowd_operators as operators;
pub use reprowd_platform as platform;
pub use reprowd_quality as quality;
pub use reprowd_simjoin as simjoin;
pub use reprowd_storage as storage;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use reprowd_core::context::CrowdContext;
    pub use reprowd_core::crowddata::CrowdData;
    pub use reprowd_core::exec::{BatchMetricsSnapshot, ExecutionConfig};
    pub use reprowd_core::presenter::Presenter;
    pub use reprowd_core::value::Value;
    pub use reprowd_core::val;
    pub use reprowd_operators::prelude::*;
    pub use reprowd_platform::CrowdPlatform;
    pub use reprowd_storage::{Backend, DiskStore, MemoryStore, SegmentPolicy, SyncPolicy};
}
