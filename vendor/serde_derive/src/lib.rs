//! Vendored minimal `#[derive(Serialize, Deserialize)]` for the simplified
//! serde traits in `vendor/serde`.
//!
//! Implemented without `syn`/`quote` (the build container has no crates.io
//! access): the item's token stream is parsed by hand into a small shape
//! model, and the impls are emitted as source text. Supported shapes — the
//! ones the workspace actually derives on:
//!
//! * structs with named fields
//! * enums with unit, named-field, and tuple variants
//! * container attributes `#[serde(tag = "...")]` (internal tagging) and
//!   `#[serde(rename_all = "snake_case")]`
//!
//! Generics, tuple structs, and field-level serde attributes are rejected
//! with a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Container {
    name: String,
    tag: Option<String>,
    snake_case: bool,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    /// Named-field struct.
    Struct(Vec<String>),
    /// Enum of variants.
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c).parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c).parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Container {
    let mut tokens = input.into_iter().peekable();
    let mut tag = None;
    let mut snake_case = false;

    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    parse_serde_attr(g.stream(), &mut tag, &mut snake_case);
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                // Skip a `(crate)` / `(super)` visibility scope if present.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "struct" || i.to_string() == "enum" => {
                break;
            }
            Some(_) => {
                tokens.next();
            }
            None => panic!("serde_derive: no struct or enum found"),
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum keyword, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type {name})");
        }
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple structs are not supported (type {name})")
            }
            Some(_) => continue,
            None => panic!("serde_derive: missing body for type {name}"),
        }
    };

    let shape = if kind == "struct" {
        Shape::Struct(parse_named_fields(body))
    } else {
        Shape::Enum(parse_variants(body))
    };
    Container { name, tag, snake_case, shape }
}

/// Parses the inside of a `#[...]` attribute; records serde metadata.
fn parse_serde_attr(stream: TokenStream, tag: &mut Option<String>, snake_case: &mut bool) {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return, // doc comment or other attribute — ignore
    }
    let Some(TokenTree::Group(args)) = it.next() else { return };
    let mut args = args.stream().into_iter().peekable();
    while let Some(tt) = args.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let key = key.to_string();
        // Expect `= "literal"`.
        let Some(TokenTree::Punct(eq)) = args.next() else { continue };
        if eq.as_char() != '=' {
            continue;
        }
        let Some(TokenTree::Literal(lit)) = args.next() else { continue };
        let value = unquote(&lit.to_string());
        match key.as_str() {
            "tag" => *tag = Some(value),
            "rename_all" => {
                if value == "snake_case" {
                    *snake_case = true;
                } else {
                    panic!("serde_derive: unsupported rename_all = {value:?}");
                }
            }
            other => panic!("serde_derive: unsupported serde attribute {other:?}"),
        }
        // Consume a trailing comma if present.
        if let Some(TokenTree::Punct(p)) = args.peek() {
            if p.as_char() == ',' {
                args.next();
            }
        }
    }
}

/// Parses `field: Type, ...` (named fields), returning field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
                continue;
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
                continue;
            }
            Some(TokenTree::Ident(_)) => {}
            Some(other) => panic!("serde_derive: unexpected token in fields: {other:?}"),
            None => break,
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else { unreachable!() };
        let mut name = name.to_string();
        if let Some(stripped) = name.strip_prefix("r#") {
            name = stripped.to_string();
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field {name}, got {other:?}"),
        }
        fields.push(name);
        // Skip the type: consume until a top-level comma (angle depth 0).
        let mut depth: i32 = 0;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
                None => break,
            }
        }
    }
    fields
}

/// Parses enum variants.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            Some(TokenTree::Ident(_)) => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                tokens.next();
                continue;
            }
            Some(other) => panic!("serde_derive: unexpected token in variants: {other:?}"),
            None => break,
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else { unreachable!() };
        let name = name.to_string();
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                VariantFields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                tokens.next();
                VariantFields::Tuple(count_tuple_fields(inner))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    variants
}

/// Counts top-level comma-separated entries of a tuple variant's field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut count = 0;
    let mut saw_any = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn rename(name: &str, snake_case: bool) -> String {
    if !snake_case {
        return name.to_string();
    }
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::Struct(fields) => {
            let mut s = String::from(
                "let mut __m = ::serde::json::Map::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::json::Value::Object(__m)");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let tag_name = rename(vname, c.snake_case);
                match (&v.fields, &c.tag) {
                    (VariantFields::Unit, None) => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::json::Value::String(::std::string::String::from(\"{tag_name}\")),\n"
                    )),
                    (VariantFields::Unit, Some(tag)) => arms.push_str(&format!(
                        "{name}::{vname} => {{\n\
                         let mut __m = ::serde::json::Map::new();\n\
                         __m.insert(::std::string::String::from(\"{tag}\"), ::serde::json::Value::String(::std::string::String::from(\"{tag_name}\")));\n\
                         ::serde::json::Value::Object(__m)\n}}\n"
                    )),
                    (VariantFields::Named(fields), tag) => {
                        let bindings = fields.join(", ");
                        let mut inner = String::from(
                            "let mut __m = ::serde::json::Map::new();\n",
                        );
                        if let Some(tag) = tag {
                            inner.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{tag}\"), ::serde::json::Value::String(::std::string::String::from(\"{tag_name}\")));\n"
                            ));
                        }
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_json_value({f}));\n"
                            ));
                        }
                        if tag.is_some() {
                            inner.push_str("::serde::json::Value::Object(__m)");
                        } else {
                            inner.push_str(&format!(
                                "let mut __outer = ::serde::json::Map::new();\n\
                                 __outer.insert(::std::string::String::from(\"{tag_name}\"), ::serde::json::Value::Object(__m));\n\
                                 ::serde::json::Value::Object(__outer)"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n{inner}\n}}\n"
                        ));
                    }
                    (VariantFields::Tuple(n), None) => {
                        let bindings: Vec<String> =
                            (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = bindings.join(", ");
                        let content = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({pat}) => {{\n\
                             let mut __outer = ::serde::json::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{tag_name}\"), {content});\n\
                             ::serde::json::Value::Object(__outer)\n}}\n"
                        ));
                    }
                    (VariantFields::Tuple(_), Some(_)) => panic!(
                        "serde_derive: tuple variants cannot be internally tagged ({name}::{vname})"
                    ),
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::Struct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::json::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_json_value(__obj.get(\"{f}\").unwrap_or(&::serde::json::Value::Null))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Enum(variants) => match &c.tag {
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    let tag_name = rename(vname, c.snake_case);
                    match &v.fields {
                        VariantFields::Unit => arms.push_str(&format!(
                            "\"{tag_name}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        )),
                        VariantFields::Named(fields) => {
                            let mut inner = String::new();
                            for f in fields {
                                inner.push_str(&format!(
                                    "{f}: ::serde::Deserialize::from_json_value(__obj.get(\"{f}\").unwrap_or(&::serde::json::Value::Null))?,\n"
                                ));
                            }
                            arms.push_str(&format!(
                                "\"{tag_name}\" => ::std::result::Result::Ok({name}::{vname} {{\n{inner}}}),\n"
                            ));
                        }
                        VariantFields::Tuple(_) => panic!(
                            "serde_derive: tuple variants cannot be internally tagged ({name}::{vname})"
                        ),
                    }
                }
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| ::serde::json::Error::custom(\"expected object for {name}\"))?;\n\
                     let __tag = __obj.get(\"{tag}\").and_then(|t| t.as_str()).ok_or_else(|| ::serde::json::Error::custom(\"missing tag \\\"{tag}\\\" for {name}\"))?;\n\
                     match __tag {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::json::Error::custom(format!(\"unknown {name} variant {{__other:?}}\"))),\n}}"
                )
            }
            None => {
                let mut unit_arms = String::new();
                let mut keyed_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    let tag_name = rename(vname, c.snake_case);
                    match &v.fields {
                        VariantFields::Unit => {
                            unit_arms.push_str(&format!(
                                "\"{tag_name}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                            ));
                        }
                        VariantFields::Named(fields) => {
                            let mut inner = String::new();
                            for f in fields {
                                inner.push_str(&format!(
                                    "{f}: ::serde::Deserialize::from_json_value(__inner.get(\"{f}\").unwrap_or(&::serde::json::Value::Null))?,\n"
                                ));
                            }
                            keyed_arms.push_str(&format!(
                                "\"{tag_name}\" => {{\n\
                                 let __inner = __content.as_object().ok_or_else(|| ::serde::json::Error::custom(\"expected object content for {name}::{vname}\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{vname} {{\n{inner}}});\n}}\n"
                            ));
                        }
                        VariantFields::Tuple(n) => {
                            if *n == 1 {
                                keyed_arms.push_str(&format!(
                                    "\"{tag_name}\" => return ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_json_value(__content)?)),\n"
                                ));
                            } else {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!(
                                        "::serde::Deserialize::from_json_value(__arr.get({i}).unwrap_or(&::serde::json::Value::Null))?"
                                    ))
                                    .collect();
                                keyed_arms.push_str(&format!(
                                    "\"{tag_name}\" => {{\n\
                                     let __arr = __content.as_array().ok_or_else(|| ::serde::json::Error::custom(\"expected array content for {name}::{vname}\"))?;\n\
                                     return ::std::result::Result::Ok({name}::{vname}({}));\n}}\n",
                                    items.join(", ")
                                ));
                            }
                        }
                    }
                }
                format!(
                    "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                     if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                     if __obj.len() == 1 {{\n\
                     let (__key, __content) = __obj.iter().next().unwrap();\n\
                     match __key.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n}}\n}}\n\
                     ::std::result::Result::Err(::serde::json::Error::custom(\"unrecognized {name} value\"))"
                )
            }
        },
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(__v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{\n{body}\n}}\n}}\n"
    )
}
