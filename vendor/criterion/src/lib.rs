//! Vendored minimal replacement for `criterion` (no crates.io access in the
//! build container). Supports the surface the micro-benchmarks use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter` / `iter_batched`, and
//! `BatchSize`.
//!
//! Measurement model: per sample, the routine runs enough iterations to
//! cover ~5 ms, and the reported figure is the best sample's mean — a
//! simple but serviceable latency estimate. When the binary is invoked by
//! `cargo test` (`--test` flag) every routine runs exactly once so test
//! runs stay fast.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted, not tuned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup re-runs every sample).
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Opaque identity preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

impl Criterion {
    /// Builds the driver from CLI arguments (`--test` = run-once mode;
    /// a bare positional argument filters benchmark names).
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let (test_mode, skip) = (self.test_mode, self.skips(id));
        if !skip {
            run_one(id, test_mode, f);
        }
        self
    }

    fn skips(&self, id: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !id.contains(f))
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.c.skips(&full) {
            run_one(&full, self.c.test_mode, f);
        }
        self
    }

    /// Ends the group (no-op; prints nothing extra).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, test_mode: bool, mut f: F) {
    let mut b = Bencher { test_mode, best_ns: f64::INFINITY, measured: false };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok");
    } else if b.measured {
        println!("{id:<40} time: {}", format_ns(b.best_ns));
    } else {
        println!("{id:<40} (no measurement)");
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    test_mode: bool,
    best_ns: f64,
    measured: bool,
}

/// Per-sample time budget in bench mode.
const SAMPLE_BUDGET: Duration = Duration::from_millis(5);
/// Total per-benchmark budget in bench mode.
const TOTAL_BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations fit the sample budget?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let bench_start = Instant::now();
        while bench_start.elapsed() < TOTAL_BUDGET {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / per_sample as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
        self.measured = true;
    }

    /// Times `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let bench_start = Instant::now();
        let mut samples = 0u32;
        while samples == 0 || (bench_start.elapsed() < TOTAL_BUDGET && samples < 10_000) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let ns = t.elapsed().as_nanos() as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
            samples += 1;
        }
        self.measured = true;
    }
}

/// Declares a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut b = Bencher { test_mode: true, best_ns: f64::INFINITY, measured: false };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        b.iter_batched(|| 5, |x| x * 2, BatchSize::LargeInput);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(10.0).ends_with("ns"));
        assert!(format_ns(10_000.0).ends_with("µs"));
        assert!(format_ns(10_000_000.0).ends_with("ms"));
    }
}
