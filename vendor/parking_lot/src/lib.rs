//! Vendored minimal replacement for `parking_lot` (no crates.io access in
//! the build container): thin wrappers over `std::sync` primitives with
//! parking_lot's no-poisoning API (`lock()` returns the guard directly).

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// Mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking; `None` if it is held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
