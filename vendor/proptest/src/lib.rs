//! Vendored minimal replacement for `proptest` (no crates.io access in the
//! build container). Provides the strategy surface and `proptest!` runner
//! the workspace's property tests use:
//!
//! * range strategies (`0usize..8`, `0.05f64..=1.0`)
//! * regex-subset string strategies (`"[a-c]{0,8}"`, `".{0,40}"`)
//! * `prop::collection::vec`, `prop::sample::select`, `prop::num::u8::ANY`
//! * tuples of strategies, `.prop_map`, `prop_oneof!`, `any::<T>()`
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!` and
//!   `#![proptest_config(ProptestConfig { cases, .. })]`
//!
//! Differences from real proptest: cases are generated from a seed derived
//! from the test name (fully deterministic), there is **no shrinking** (the
//! failure report prints the exact inputs instead), and regex strategies
//! support the literal/class/dot/quantifier subset actually used.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG driving test-case generation.
pub type TestRng = StdRng;

/// Builds the deterministic per-test RNG (FNV-1a of the test name).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test errors.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! strat_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strat_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Regex-subset strategy: any `&str` is treated as a generation pattern.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

macro_rules! strat_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
strat_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types with a canonical "anything" strategy (subset of `Arbitrary`).
pub trait ArbitraryValue {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`ArbitraryValue`] types; see [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// A type-erased generator, as stored inside [`Union`].
pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Union of boxed same-valued strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedGen<T>>,
}

impl<T> Union<T> {
    /// Builds the union; used by the `prop_oneof!` expansion.
    pub fn new(options: Vec<BoxedGen<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Boxes one strategy for storage in a union.
    pub fn boxed<S>(s: S) -> BoxedGen<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        (self.options[i])(rng)
    }
}

/// Mirror of the `proptest::prop` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        /// `vec(element_strategy, len_range)`.
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// `select(items)` — uniform choice of one item (cloned).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select() needs a non-empty list");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.gen_range(0..self.items.len())].clone()
            }
        }
    }

    /// Numeric strategies.
    pub mod num {
        /// `u8` strategies.
        pub mod u8 {
            use super::super::super::{Strategy, TestRng};
            use rand::Rng;

            /// The full-range `u8` strategy.
            pub struct U8Any;

            /// Any `u8`.
            pub const ANY: U8Any = U8Any;

            impl Strategy for U8Any {
                type Value = ::core::primitive::u8;

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    rng.gen::<::core::primitive::u8>()
                }
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, ArbitraryValue, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Regex-subset string generation
// ---------------------------------------------------------------------------

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    AnyChar,
}

/// Generates a string matching the supported regex subset:
/// literals, `[a-z0-9_]` classes, `.`, and `{m}` / `{m,n}` / `*` / `+` / `?`
/// quantifiers.
fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // past ']'
                Atom::Class(ranges)
            }
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse::<usize>().expect("quantifier lower bound"),
                            b.trim().parse::<usize>().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        let n = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..n {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::AnyChar => {
                    // Printable ASCII except newline, like proptest's `.`
                    // restricted to a deterministic simple alphabet.
                    out.push(char::from(rng.gen_range(0x20u8..0x7F)));
                }
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    let span = hi as u32 - lo as u32 + 1;
                    out.push(char::from_u32(lo as u32 + rng.gen_range(0..span)).unwrap());
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Rejects the current case (not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), __a, __b
            )));
        }
    }};
}

/// Fails the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::boxed($strategy)),+])
    };
}

/// Defines `#[test]` functions over generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                let mut __done: u32 = 0;
                let mut __rejected: u32 = 0;
                while __done < __config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(concat!($(stringify!($arg), " = {:?}\n"),+), $(&$arg),+);
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => __done += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            __rejected += 1;
                            assert!(
                                __rejected <= __config.max_global_rejects,
                                "proptest {}: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed after {} passing case(s): {}\ninputs:\n{}",
                                stringify!($name), __done, __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generation_matches_subset() {
        let mut rng = super::test_rng("pattern");
        for _ in 0..200 {
            let s = super::generate_from_pattern("img[a-f]{1,3}", &mut rng);
            assert!(s.starts_with("img"));
            assert!((4..=6).contains(&s.len()));
            assert!(s[3..].chars().all(|c| ('a'..='f').contains(&c)));
        }
        for _ in 0..200 {
            let s = super::generate_from_pattern("[a-c]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(
            n in 1usize..10,
            pair in (0u64..5, 0.0f64..=1.0),
            v in prop::collection::vec(any::<u8>(), 0..4),
            s in "[xy]{2}",
            pick in prop::sample::select(vec![10, 20, 30]),
            mixed in prop_oneof![(0usize..3).prop_map(|x| x * 2), 100usize..103],
        ) {
            prop_assume!(n != 9);
            prop_assert!((1..9).contains(&n));
            let (a, b) = pair;
            prop_assert!(a < 5, "a = {}", a);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(v.len() < 4);
            prop_assert_eq!(s.len(), 2);
            prop_assert!(pick % 10 == 0);
            prop_assert!(mixed == 0 || mixed == 2 || mixed == 4 || (100..103).contains(&mixed));
            prop_assert_ne!(n, 0);
        }
    }
}
