//! Vendored minimal replacement for `serde_json` (the build container has
//! no crates.io access). Re-exports the JSON data model from the vendored
//! `serde` crate and provides the function surface the workspace uses:
//! `to_string` / `to_vec` / `from_str` / `from_slice` / `to_value` /
//! `from_value` and the `json!` literal macro.
//!
//! Encoding is always compact and canonical (object keys sorted), which is
//! what Reprowd's content-derived cache keys hash.

pub use serde::json::{Error, Map, Number, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_string())
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    fn pretty(v: &Value, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match v {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, item) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    pretty(item, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, val)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    out.push_str(&Value::String(k.clone()).to_string());
                    out.push_str(": ");
                    pretty(val, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    let mut out = String::new();
    pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` to JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Parses a `T` out of JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let v = Value::parse(s)?;
    T::from_json_value(&v)
}

/// Parses a `T` out of JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from a JSON literal with interpolated expressions,
/// mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json!(@arr __arr $($tt)*);
        $crate::Value::Array(__arr)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::json!(@obj __map $($tt)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };

    // ---- array elements ----
    (@arr $v:ident) => {};
    (@arr $v:ident null $(, $($rest:tt)*)?) => {
        $v.push($crate::Value::Null);
        $crate::json!(@arr $v $($($rest)*)?);
    };
    (@arr $v:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $v.push($crate::json!([ $($inner)* ]));
        $crate::json!(@arr $v $($($rest)*)?);
    };
    (@arr $v:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $v.push($crate::json!({ $($inner)* }));
        $crate::json!(@arr $v $($($rest)*)?);
    };
    (@arr $v:ident $e:expr , $($rest:tt)*) => {
        $v.push($crate::json!($e));
        $crate::json!(@arr $v $($rest)*);
    };
    (@arr $v:ident $e:expr) => {
        $v.push($crate::json!($e));
    };

    // ---- object entries (string-literal keys) ----
    (@obj $m:ident) => {};
    (@obj $m:ident $k:literal : null $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($k), $crate::Value::Null);
        $crate::json!(@obj $m $($($rest)*)?);
    };
    (@obj $m:ident $k:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($k), $crate::json!([ $($inner)* ]));
        $crate::json!(@obj $m $($($rest)*)?);
    };
    (@obj $m:ident $k:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert(::std::string::String::from($k), $crate::json!({ $($inner)* }));
        $crate::json!(@obj $m $($($rest)*)?);
    };
    (@obj $m:ident $k:literal : $e:expr , $($rest:tt)*) => {
        $m.insert(::std::string::String::from($k), $crate::json!($e));
        $crate::json!(@obj $m $($rest)*);
    };
    (@obj $m:ident $k:literal : $e:expr) => {
        $m.insert(::std::string::String::from($k), $crate::json!($e));
    };
}

#[cfg(test)]
// The json! array arms expand to init-then-push; clippy only sees that
// inside this crate (external-macro expansions are exempt downstream).
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "bob";
        let v = json!({
            "s": "x",
            "n": 3,
            "f": 1.5,
            "b": true,
            "null": null,
            "arr": [1, "two", null, [3], {"four": 4}],
            "nested": {"k": name, "deep": {"i": 1 + 1}},
        });
        assert_eq!(v["s"], "x");
        assert_eq!(v["n"], 3);
        assert_eq!(v["f"], 1.5);
        assert_eq!(v["b"], true);
        assert!(v["null"].is_null());
        assert_eq!(v["arr"][4]["four"], 4);
        assert_eq!(v["nested"]["k"], "bob");
        assert_eq!(v["nested"]["deep"]["i"], 2);
        assert_eq!(json!("bare"), "bare");
        assert_eq!(json!(7), 7);
        assert!(json!([]).as_array().unwrap().is_empty());
        assert!(json!({}).as_object().unwrap().is_empty());
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({"a": [1, 2.0, "x"], "b": {"c": true}});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"a": [1, 2], "b": {"c": true}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
