//! Vendored minimal replacement for the `serde` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the exact API surface it consumes. Real serde is a
//! format-agnostic visitor framework; Reprowd only ever serializes to and
//! from JSON, so this stand-in collapses the data model to a single
//! [`json::Value`] tree:
//!
//! * [`Serialize`] — convert `self` into a [`json::Value`].
//! * [`Deserialize`] — reconstruct `Self` from a [`json::Value`].
//! * `#[derive(Serialize, Deserialize)]` — provided by the vendored
//!   `serde_derive` proc-macro, supporting named structs, unit/struct/tuple
//!   enum variants, and the `#[serde(tag = "...", rename_all =
//!   "snake_case")]` container attributes the workspace uses.
//!
//! Swap this crate for real serde (and delete `vendor/`) when building with
//! network access; the trait names and call sites line up.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Types that can turn themselves into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de` — just enough for `DeserializeOwned` bounds.
pub mod de {
    /// Owned deserialization marker; blanket-implemented for every
    /// [`Deserialize`](crate::Deserialize) type.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(json::Number::from_i64(*self as i64))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(json::Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::from_f64(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::from_f64(*self as f64)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(t) => t.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut m = json::Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut m = json::Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_json_value());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_json_value(v)? as f32)
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::from_json_value(v)?))
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_json_value(v)?))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        arr.iter().map(T::from_json_value).collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                if arr.len() != $len {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($t::from_json_value(&arr[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?))).collect()
    }
}
