//! The JSON data model shared by the vendored `serde` and `serde_json`
//! crates: [`Value`], [`Number`], [`Map`], [`Error`], plus a compact
//! serializer and a recursive-descent parser.
//!
//! Object maps are `BTreeMap`s, so the compact encoding is *canonical*:
//! equal values print identically regardless of insertion order. Reprowd's
//! content-derived cache keys hash that canonical form.

use std::collections::BTreeMap;
use std::fmt;

/// JSON object map with sorted (canonical) keys.
pub type Map = BTreeMap<String, Value>;

/// Error raised by JSON (de)serialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integer (signed or unsigned) or double.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating point (always finite).
    F64(f64),
}

impl Number {
    /// Signed integer constructor (canonicalizes to `I64`).
    pub fn from_i64(n: i64) -> Self {
        Number::I64(n)
    }

    /// Unsigned integer constructor; stays `I64` when it fits.
    pub fn from_u64(n: u64) -> Self {
        match i64::try_from(n) {
            Ok(i) => Number::I64(i),
            Err(_) => Number::U64(n),
        }
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(n) => Some(n),
            Number::U64(n) => i64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }

    /// The value as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(n) => u64::try_from(n).ok(),
            Number::U64(n) => Some(n),
            Number::F64(_) => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I64(n) => Some(n as f64),
            Number::U64(n) => Some(n as f64),
            Number::F64(n) => Some(n),
        }
    }

    /// True for the integer variants.
    pub fn is_i64(&self) -> bool {
        matches!(self, Number::I64(_))
    }

    /// True for the float variant.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F64(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::F64(a), Number::F64(b)) => a == b,
            (Number::F64(_), _) | (_, Number::F64(_)) => false,
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                _ => a.as_u64() == b.as_u64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(n) => write!(f, "{n}"),
            Number::U64(n) => write!(f, "{n}"),
            Number::F64(n) => {
                // Keep a decimal point (or exponent) in the output so the
                // value re-parses as a float, whatever its magnitude.
                let s = n.to_string();
                if s.contains(['.', 'e', 'E']) {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// A JSON value tree (mirror of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with canonically sorted keys.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Builds a number value from `f`; non-finite floats become `Null`,
    /// matching `serde_json`.
    pub fn from_f64(f: f64) -> Value {
        if f.is_finite() {
            Value::Number(Number::F64(f))
        } else {
            Value::Null
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64`, if an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64`, if an in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The array, mutably.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The object map, mutably.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for booleans.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True for numbers.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Indexes by object key or array position, returning `None` on any
    /// mismatch (wrong shape, missing key, out of range).
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Mutable [`get`](Value::get).
    pub fn get_mut<I: Index>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }

    /// Replaces `self` with `Null`, returning the previous value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }

    /// Parses compact or pretty JSON text.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

// ---------------------------------------------------------------------------
// Indexing
// ---------------------------------------------------------------------------

/// Types usable as an index into a [`Value`] (string keys, array positions).
pub trait Index {
    /// Shared lookup.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
    /// Mutable lookup.
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value>;
    /// Lookup for `IndexMut`, creating object entries on demand.
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value;
}

impl Index for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_object_mut().and_then(|m| m.get_mut(self))
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        match v {
            Value::Object(m) => m.entry(self.to_string()).or_insert(Value::Null),
            other => panic!("cannot index non-object value {other} with string {self:?}"),
        }
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        self.as_str().index_into_mut(v)
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        self.as_str().index_or_insert(v)
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_array_mut().and_then(|a| a.get_mut(*self))
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        match v {
            Value::Array(a) => {
                let len = a.len();
                a.get_mut(*self)
                    .unwrap_or_else(|| panic!("index {self} out of bounds (len {len})"))
            }
            other => panic!("cannot index non-array value {other} with {self}"),
        }
    }
}

impl<T: Index + ?Sized> Index for &T {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        (**self).index_into_mut(v)
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        (**self).index_or_insert(v)
    }
}

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: Index> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_or_insert(self)
    }
}

// ---------------------------------------------------------------------------
// Conversions & comparisons
// ---------------------------------------------------------------------------

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::from_f64(f)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

macro_rules! from_int {
    ($($t:ty => $ctor:ident),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(Number::$ctor(n as _))
            }
        }
    )*};
}
from_int! {
    i8 => from_i64, i16 => from_i64, i32 => from_i64, i64 => from_i64, isize => from_i64,
    u8 => from_u64, u16 => from_u64, u32 => from_u64, u64 => from_u64, usize => from_u64
}

macro_rules! eq_prim {
    ($($t:ty => |$v:ident, $o:ident| $cmp:expr),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                let ($v, $o) = (self, other);
                $cmp
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_prim! {
    bool => |v, o| v.as_bool() == Some(*o),
    i32 => |v, o| v.as_i64() == Some(*o as i64),
    i64 => |v, o| v.as_i64() == Some(*o),
    u32 => |v, o| v.as_u64() == Some(*o as u64),
    u64 => |v, o| v.as_u64() == Some(*o),
    usize => |v, o| v.as_u64() == Some(*o as u64),
    f64 => |v, o| matches!(v, Value::Number(Number::F64(f)) if f == o),
    String => |v, o| v.as_str() == Some(o.as_str()),
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting; matches serde_json's recursion limit so a
/// corrupt or adversarial input returns `Err` instead of blowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected {kw:?} at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::custom(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        self.enter()?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        self.enter()?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last digit
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                self.pos -= 1; // unicode_escape expects pos on 'u'
                                let lo = self.unicode_escape()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape; `pos` is on the `u` and
    /// ends on the last digit.
    fn unicode_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
        }
        let f: f64 = text.parse().map_err(|_| Error::custom("invalid number"))?;
        Ok(Value::from_f64(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let src = r#"{"a":[1,2.5,"x\n",true,null],"b":{"c":-3}}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn canonical_key_order() {
        let a = Value::parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(a.to_string(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::parse(r#"{"a":1}"#).unwrap();
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }

    #[test]
    fn index_mut_autovivifies() {
        let mut v = Value::parse("{}").unwrap();
        v["x"] = Value::Bool(true);
        assert_eq!(v["x"], true);
    }

    #[test]
    fn float_keeps_decimal_point() {
        let v = Value::from_f64(1.0);
        assert_eq!(v.to_string(), "1.0");
        let back = Value::parse("1.0").unwrap();
        assert!(matches!(back, Value::Number(Number::F64(_))));
    }

    #[test]
    fn huge_whole_floats_stay_floats_across_roundtrip() {
        for f in [1e16, 1e18, 1.5e20, 1e300, -4e17] {
            let v = Value::from_f64(f);
            let text = v.to_string();
            let back = Value::parse(&text).unwrap();
            assert_eq!(back, v, "{f} reserialized as {text}");
            assert!(matches!(back, Value::Number(Number::F64(_))), "{text} lost floatness");
        }
    }

    #[test]
    fn nesting_depth_is_limited_not_fatal() {
        let deep: String = "[".repeat(100_000);
        assert!(Value::parse(&deep).is_err());
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(Value::parse(&deep_obj).is_err());
        // 100 levels is comfortably inside the limit.
        let ok = format!("{}null{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }
}
