//! Vendored minimal replacement for the `rand` crate (no crates.io access
//! in the build container), exposing the rand-0.8-style surface the
//! workspace uses: `rand::rngs::StdRng`, the [`Rng`] extension methods
//! `gen` / `gen_range` / `gen_bool`, and [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic for
//! a given seed on every platform, which is all the simulator needs. It is
//! NOT the same stream as real rand's StdRng (ChaCha12); simulation seeds
//! produce different (but equally reproducible) worlds.

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Distribution of the `gen()` method, one impl per result type.
pub trait Standard {
    /// Samples one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples uniformly from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

/// Named RNG types (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
        }
        // Inclusive top is reachable-ish: just check bound holds.
        let d = rng.gen_range(0.0f64..=1.0);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
