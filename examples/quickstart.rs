//! Paper Figure 2 — Bob's experiment, verbatim.
//!
//! Label three images ("Yes"/"No"), each answered by three workers, with
//! majority vote for quality control. Run it twice to see the sharable
//! property: the second run prints the same labels without publishing a
//! single new task.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use reprowd::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated crowd stands in for PyBossa + human workers: five
    // workers of 95% accuracy, fully deterministic under the seed.
    let platform = Arc::new(reprowd::platform::SimPlatform::quick(5, 0.95, 42));
    let db_path = std::env::temp_dir().join("reprowd-quickstart.rwlog");
    let cc = reprowd::core::CrowdContext::on_disk(
        platform.clone(),
        &db_path,
        SyncPolicy::Never,
    )?;

    // Bob's three images. The `_sim` field carries what a human would see
    // by looking at the image (its true label) — the simulation seam.
    let images = vec![
        val!({"url": "img1.jpg", "_sim": {"kind": "label", "truth": 0, "labels": ["Yes", "No"], "difficulty": 0.1}}),
        val!({"url": "img2.jpg", "_sim": {"kind": "label", "truth": 1, "labels": ["Yes", "No"], "difficulty": 0.1}}),
        val!({"url": "img3.jpg", "_sim": {"kind": "label", "truth": 0, "labels": ["Yes", "No"], "difficulty": 0.1}}),
    ];

    // The paper's five steps.
    let cd = cc
        .crowddata("bob-image-label")? // experiment name = cache namespace
        .data(images)? //                         1. prepare input data
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))? // 2. choose UI
        .publish(3)? //                           3. publish tasks
        .collect()? //                            4. get results
        .majority_vote()?; //                     5. quality control

    println!("object                         -> mv");
    for (obj, mv) in cd.column("object")?.iter().zip(cd.column("mv")?) {
        println!("{:<30} -> {}", obj["url"].as_str().unwrap_or("?"), mv);
    }
    let stats = cd.run_stats();
    println!(
        "\ntasks published: {}, reused from db: {} (platform api calls so far: {})",
        stats.tasks_published,
        stats.tasks_reused,
        cc.platform().api_calls()
    );
    println!("database file: {} (share this alongside the code)", db_path.display());
    println!("\nRun the example again: it will reuse every cell and publish nothing.");
    Ok(())
}
