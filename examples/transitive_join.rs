//! Transitivity-aware joins (Wang et al., SIGMOD 2013): answer deduction
//! cuts crowd cost versus asking every candidate pair.
//!
//! Compares three processing orders on the same corpus and reports how many
//! questions each saves relative to CrowdER (which asks all candidates).
//!
//! ```text
//! cargo run --example transitive_join
//! ```

use reprowd::datagen::{ErConfig, ErCorpus};
use reprowd::operators::join::transitive::PairOrdering;
use reprowd::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fewer entities with more duplicates: big clusters = more transitivity.
    let corpus = ErCorpus::generate(&ErConfig {
        n_entities: 25,
        min_dups: 3,
        max_dups: 5,
        seed: 7,
        ..ErConfig::default()
    });
    let records = corpus.texts();
    let entities = corpus.truth_clusters();
    println!("corpus: {} records in {} entities", records.len(), corpus.n_entities);

    let run = |ordering: PairOrdering, name: &str| -> Result<(usize, usize, f64), Box<dyn std::error::Error>> {
        let cc = reprowd::core::CrowdContext::new(
            Arc::new(reprowd::platform::SimPlatform::quick(7, 0.97, 11)),
            Arc::new(reprowd::storage::MemoryStore::new()),
        )?;
        let ents = entities.clone();
        let decorate = move |i: usize, j: usize, obj: &mut Value| {
            obj["_sim"] = val!({
                "kind": "match",
                "is_match": ents[i] == ents[j],
                "ambiguity": 0.1,
            });
        };
        let mut cfg = TransitiveConfig::new(name);
        cfg.threshold = 0.4;
        cfg.ordering = ordering;
        let out = transitive_join(&cc, &records, &cfg, decorate)?;
        let (_, _, f1) = pairwise_prf(&out.matched, &corpus.true_pairs());
        Ok((out.asked.len(), out.candidates.len(), f1))
    };

    println!("\nordering            asked  candidates  saved   F1");
    for (ordering, name) in [
        (PairOrdering::SimilarityDesc, "similarity-desc"),
        (PairOrdering::SimilarityAsc, "similarity-asc"),
        (PairOrdering::Random(3), "random"),
    ] {
        let (asked, candidates, f1) = run(ordering, name)?;
        println!(
            "{name:<18} {asked:>6} {candidates:>11} {:>5.1}% {f1:>6.3}",
            100.0 * (1.0 - asked as f64 / candidates.max(1) as f64)
        );
    }
    println!("\n(CrowdER would ask all candidate pairs; transitivity deduces the rest.)");
    Ok(())
}
