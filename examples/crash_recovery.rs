//! The sharable property under fire: crash an experiment mid-publish,
//! rerun it, and watch it finish exactly where it left off.
//!
//! A fault-injecting platform wrapper kills the client after a budget of
//! API calls (the platform itself — like PyBossa — keeps running). The
//! rerun consults the database and only performs the remaining work.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use reprowd::core::ExecutionConfig;
use reprowd::platform::{CrowdPlatform, FailingPlatform, SimPlatform};
use reprowd::prelude::*;
use std::sync::Arc;

fn images(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            val!({
                "url": format!("img{i}.jpg"),
                "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.1}
            })
        })
        .collect()
}

fn run(cc: &reprowd::core::CrowdContext) -> reprowd::core::Result<reprowd::core::CrowdData> {
    cc.crowddata("crashy")?
        .data(images(20))?
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))?
        .publish(3)?
        .collect()?
        .majority_vote()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inner = Arc::new(SimPlatform::quick(5, 0.95, 99));
    // Publish in batches of 4 rows (each batch = one platform round-trip
    // + one atomic db write). Allow 1 project + 2 publish batches (8
    // rows), then "crash" on the third batch's round-trip.
    let failing = Arc::new(FailingPlatform::new(Arc::clone(&inner), 3));
    let db: Arc<dyn Backend> = Arc::new(MemoryStore::new());
    let cc = reprowd::core::CrowdContext::with_config(
        Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
        Arc::clone(&db),
        ExecutionConfig::with_batch_size(4),
    )?;

    println!("first run (will crash mid-publish)...");
    match run(&cc) {
        Err(e) if e.is_injected_fault() => println!("  crashed as planned: {e}"),
        Err(e) => panic!("expected injected crash, got unexpected error: {e}"),
        Ok(_) => panic!("expected injected crash, but the run succeeded"),
    }

    // The "process restarts": same database, same (recovered) platform.
    failing.reset_budget(u64::MAX);
    println!("rerun after the crash...");
    let cd = run(&cc)?;
    let stats = cd.run_stats();
    println!(
        "  finished: {} rows labeled; reused {} published tasks from the db, published {} new",
        cd.len(),
        stats.tasks_reused,
        stats.tasks_published
    );
    assert_eq!(stats.tasks_reused + stats.tasks_published, 20);
    assert!(stats.tasks_reused >= 8, "the pre-crash work must be reused");
    println!("  labels: {:?}", cd.column("mv")?);
    println!("\nThe rerun behaved as if the crash never happened (paper §CrowdData).");
    Ok(())
}
