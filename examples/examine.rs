//! Paper Figure 3 — Ally examines (and extends) Bob's experiment.
//!
//! Ally received Bob's code and database file. She (1) reruns it for free,
//! (2) extends it by labeling two more images — only the delta is
//! crowdsourced — and (3) checks the lineage of every crowdsourced answer:
//! when were the tasks published, which workers did them.
//!
//! ```text
//! cargo run --example examine
//! ```

use reprowd::prelude::*;
use std::sync::Arc;

fn image(i: usize, truth: usize) -> Value {
    val!({
        "url": format!("img{i}.jpg"),
        "_sim": {"kind": "label", "truth": truth, "labels": ["Yes", "No"], "difficulty": 0.1}
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Arc::new(reprowd::platform::SimPlatform::quick(5, 0.95, 7));
    let cc = reprowd::core::CrowdContext::new(
        platform.clone(),
        Arc::new(reprowd::storage::MemoryStore::new()),
    )?;
    let presenter = Presenter::image_label("Is this a cat?", &["Yes", "No"]);

    // ---- Bob's original experiment (three images).
    let bob_images: Vec<Value> = vec![image(1, 0), image(2, 1), image(3, 0)];
    let _bob = cc
        .crowddata("label-experiment")?
        .data(bob_images.clone())?
        .presenter(presenter.clone())?
        .publish(3)?
        .collect()?
        .majority_vote()?;
    let calls_after_bob = cc.platform().api_calls();
    println!("Bob's run done. Platform API calls: {calls_after_bob}");

    // ---- Ally, step 1: reproduce Bob's result (costs nothing).
    let ally = cc
        .crowddata("label-experiment")?
        .data(bob_images)?
        .presenter(presenter.clone())?
        .publish(3)?
        .collect()?
        .majority_vote()?;
    assert_eq!(cc.platform().api_calls(), calls_after_bob);
    println!(
        "Ally reproduced {} labels with ZERO new platform calls.",
        ally.len()
    );

    // ---- Ally, step 2: extend the experiment with two more images
    // (Figure 3 line 5: "label more images based on Bob's").
    let extended = ally
        .extend_data(vec![image(4, 1), image(5, 0)])?
        .publish(3)?
        .collect()?
        .majority_vote()?;
    let s = extended.run_stats();
    println!(
        "Extended to {} rows: published {} new tasks, reused {} cached ones.",
        extended.len(),
        s.tasks_published,
        s.tasks_reused
    );

    // ---- Ally, step 3: lineage (Figure 3 lines 11-16).
    println!("\nLineage of every answer:");
    for lin in extended.column_lineage("task")? {
        println!(
            "  row {}: task published at t={}ms",
            lin.row,
            lin.published_at().unwrap_or_default()
        );
    }
    for lin in extended.column_lineage("mv")? {
        println!(
            "  row {}: mv={} from workers {:?}",
            lin.row,
            match &lin.derivation {
                reprowd::core::Derivation::Aggregated { output, .. } => output.to_string(),
                _ => "?".into(),
            },
            lin.workers()
        );
    }
    println!("\nFull report for row 0, column 'mv':");
    println!("{}", extended.lineage(0, "mv")?.describe());
    Ok(())
}
