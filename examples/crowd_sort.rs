//! Crowdsourced sort and max over items with latent quality scores.
//!
//! Demonstrates the sort/max operators: full pairwise sort recovers the
//! latent ranking; the tournament max finds the best item in `n - 1`
//! comparisons instead of `n(n-1)/2`.
//!
//! ```text
//! cargo run --example crowd_sort
//! ```

use reprowd::datagen::{comparison_probability, RankingConfig, RankingDataset};
use reprowd::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = RankingDataset::generate(&RankingConfig { n_items: 12, score_range: 10.0, seed: 5 });
    let items = data.items.clone();
    println!("ranking {} photos by latent quality score", items.len());

    let cc = reprowd::core::CrowdContext::new(
        Arc::new(reprowd::platform::SimPlatform::quick(7, 0.92, 13)),
        Arc::new(reprowd::storage::MemoryStore::new()),
    )?;

    let scores = data.scores.clone();
    let decorate = move |i: usize, j: usize, obj: &mut Value| {
        obj["_sim"] = val!({
            "kind": "compare",
            "p_first": comparison_probability(scores[i], scores[j], 1.0),
        });
    };

    // Full pairwise sort.
    let sort_out = crowd_sort(
        &cc,
        &items,
        &CrowdSortConfig::new("photo-sort", "Which photo is better?"),
        &decorate,
    )?;
    let true_rank = data.true_ranking();
    println!("\ncrowd order : {:?}", sort_out.order);
    println!("true order  : {true_rank:?}");
    let agree = sort_out.order.iter().zip(&true_rank).filter(|(a, b)| a == b).count();
    println!(
        "positions agreeing: {agree}/{} using {} comparisons",
        items.len(),
        sort_out.compared.len()
    );

    // Tournament max.
    let max_out = crowd_max(
        &cc,
        &items,
        &CrowdMaxConfig::new("photo-max", "Which photo is better?"),
        &decorate,
    )?;
    println!(
        "\ntournament max: item {:?} in {} comparisons (true max: {:?})",
        max_out.max,
        max_out.comparisons,
        data.true_max()
    );
    Ok(())
}
