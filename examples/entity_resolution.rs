//! Entity resolution with CrowdER — the paper's flagship operator
//! (Wang et al., PVLDB 2012), on a synthetic restaurant corpus.
//!
//! A machine similarity join prunes the pair space; the simulated crowd
//! verifies the grey-zone pairs; union-find turns matches into entities.
//!
//! ```text
//! cargo run --example entity_resolution
//! ```

use reprowd::datagen::{ErConfig, ErCorpus};
use reprowd::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 60 entities, 1-3 noisy duplicates each.
    let corpus = ErCorpus::generate(&ErConfig {
        n_entities: 60,
        min_dups: 1,
        max_dups: 3,
        seed: 2024,
        ..ErConfig::default()
    });
    let records = corpus.texts();
    let truth_pairs = corpus.true_pairs();
    println!(
        "corpus: {} records, {} entities, {} true duplicate pairs",
        records.len(),
        corpus.n_entities,
        truth_pairs.len()
    );

    let platform = Arc::new(reprowd::platform::SimPlatform::new(
        reprowd::platform::SimConfig::new(
            reprowd::platform::WorkerPool::mixture(3, 5, 1, 9),
            9,
        ),
    ));
    let cc = reprowd::core::CrowdContext::new(
        platform,
        Arc::new(reprowd::storage::MemoryStore::new()),
    )?;

    // The simulation seam: the crowd "looks at" a pair and judges identity
    // with ambiguity proportional to how dissimilar the duplicates look.
    let entities: Vec<usize> = corpus.truth_clusters();
    let decorate = move |i: usize, j: usize, obj: &mut Value| {
        obj["_sim"] = val!({
            "kind": "match",
            "is_match": entities[i] == entities[j],
            "ambiguity": 0.15,
        });
    };

    let mut cfg = CrowdErConfig::new("restaurant-er");
    cfg.threshold = 0.4;
    cfg.n_assignments = 3;
    let out = crowder_join(&cc, &records, &cfg, decorate)?;

    let all_pairs = records.len() * (records.len() - 1) / 2;
    println!(
        "machine pass: {} candidates of {} possible pairs ({:.1}% pruned)",
        out.n_candidates,
        all_pairs,
        100.0 * (1.0 - out.n_candidates as f64 / all_pairs as f64)
    );
    println!(
        "crowd pass: {} pairs reviewed ({} tasks published), {} matched",
        out.n_crowd_reviewed,
        out.stats.tasks_published,
        out.matched.len()
    );

    let (p, r, f1) = pairwise_prf(&out.matched, &truth_pairs);
    println!("quality vs ground truth: precision={p:.3} recall={r:.3} F1={f1:.3}");

    // Show one resolved entity.
    let example_cluster = out.clusters[0];
    let members: Vec<&str> = out
        .clusters
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == example_cluster)
        .map(|(i, _)| records[i].as_str())
        .collect();
    println!("\nexample resolved entity ({} records):", members.len());
    for m in members {
        println!("  - {m}");
    }
    Ok(())
}
