//! The batched publish/collect pipeline, visible from user code.
//!
//! Publishes and collects 200 image-label tasks twice — once per-row
//! (batch size 1, the historical pipeline) and once in batches of 50 —
//! and prints the platform round-trips each pipeline issued. Results are
//! bit-identical; only the traffic differs.
//!
//! ```text
//! cargo run --example batching
//! ```

use reprowd::core::{CrowdContext, ExecutionConfig};
use reprowd::platform::SimPlatform;
use reprowd::prelude::*;
use std::sync::Arc;

fn labels(cc: &CrowdContext, n: usize) -> reprowd::core::Result<Vec<Value>> {
    let images: Vec<Value> = (0..n)
        .map(|i| {
            val!({
                "url": format!("img{i}.jpg"),
                "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.1}
            })
        })
        .collect();
    cc.crowddata("batching-demo")?
        .data(images)?
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))?
        .publish(3)?
        .collect()?
        .majority_vote()?
        .column("mv")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200;
    let mut columns = Vec::new();
    for batch_size in [1usize, 50] {
        // Same seed each round: the simulated crowd answers identically.
        let platform = Arc::new(SimPlatform::quick(7, 0.9, 42));
        let cc = CrowdContext::with_config(
            platform.clone(),
            Arc::new(MemoryStore::new()),
            ExecutionConfig::with_batch_size(batch_size),
        )?;
        let mv = labels(&cc, n)?;
        let m = cc.batch_metrics();
        println!(
            "batch size {batch_size:>3}: {} platform api calls \
             ({} publish round-trips, {} fetch round-trips, {:.0} rows/call)",
            platform.api_calls(),
            m.publish_calls,
            m.fetch_calls,
            m.rows_per_publish_call(),
        );
        columns.push(mv);
    }
    assert_eq!(columns[0], columns[1], "batch size never changes the answers");
    println!("\nidentical labels from both pipelines — batching is a pure performance knob");
    Ok(())
}
