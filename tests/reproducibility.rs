//! Cross-crate integration tests of the paper's headline claims: the
//! sharable (fault-recovery) property over a real on-disk database, the
//! share-the-file workflow, and work conservation under crashes at
//! arbitrary points.

use reprowd::platform::{CrowdPlatform, FailingPlatform, SimPlatform};
use reprowd::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reprowd-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

fn images(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            val!({
                "url": format!("img{i}.jpg"),
                "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.1}
            })
        })
        .collect()
}

fn run_fig2(
    cc: &reprowd::core::CrowdContext,
    n: usize,
) -> reprowd::core::Result<reprowd::core::CrowdData> {
    cc.crowddata("fig2")?
        .data(images(n))?
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))?
        .publish(3)?
        .collect()?
        .majority_vote()
}

#[test]
fn disk_backed_rerun_is_identical_and_free() {
    let path = tmp("rerun.rwlog");
    let platform = Arc::new(SimPlatform::quick(5, 0.9, 1));

    let first_mv;
    {
        let cc = reprowd::core::CrowdContext::on_disk(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            &path,
            SyncPolicy::Always,
        )
        .unwrap();
        first_mv = run_fig2(&cc, 10).unwrap().column("mv").unwrap();
    }
    // "Process restart": a brand-new context over the same file.
    let calls_before = platform.api_calls();
    let cc = reprowd::core::CrowdContext::on_disk(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        &path,
        SyncPolicy::Always,
    )
    .unwrap();
    let cd = run_fig2(&cc, 10).unwrap();
    assert_eq!(cd.column("mv").unwrap(), first_mv);
    assert_eq!(platform.api_calls(), calls_before, "rerun must be platform-free");
    assert_eq!(cd.run_stats().tasks_reused, 10);
    assert_eq!(cd.run_stats().results_reused, 10);
}

#[test]
fn shared_snapshot_reproduces_on_allys_machine() {
    let bob_path = tmp("bob.rwlog");
    let shared_path = tmp("shared.rwlog");

    // Bob runs and snapshots his database for sharing.
    let bob_platform = Arc::new(SimPlatform::quick(5, 0.9, 2));
    let bob_mv;
    {
        let cc = reprowd::core::CrowdContext::on_disk(
            bob_platform as Arc<dyn CrowdPlatform>,
            &bob_path,
            SyncPolicy::Never,
        )
        .unwrap();
        bob_mv = run_fig2(&cc, 8).unwrap().column("mv").unwrap();
        let disk = DiskStore::open(&bob_path, SyncPolicy::Never).unwrap();
        // (Bob's context holds the file too; the snapshot reads the shared
        // state through a second handle — both see the same live map only
        // if writes are visible, so snapshot from the context's backend.)
        drop(disk);
        cc.backend().flush().unwrap();
    }
    std::fs::copy(&bob_path, &shared_path).unwrap();

    // Ally has a DIFFERENT platform (her own account/seed) but Bob's file.
    let ally_platform = Arc::new(SimPlatform::quick(5, 0.9, 999));
    let cc = reprowd::core::CrowdContext::on_disk(
        Arc::clone(&ally_platform) as Arc<dyn CrowdPlatform>,
        &shared_path,
        SyncPolicy::Never,
    )
    .unwrap();
    let cd = run_fig2(&cc, 8).unwrap();
    assert_eq!(cd.column("mv").unwrap(), bob_mv, "Ally reproduces Bob exactly");
    assert_eq!(ally_platform.api_calls(), 0, "reproduction costs Ally nothing");

    // Extending beyond Bob's rows hits *Ally's* platform only for the delta.
    let cd = cc
        .crowddata("fig2")
        .unwrap()
        .data(images(10))
        .unwrap()
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(cd.run_stats().tasks_published, 2);
    assert_eq!(cd.run_stats().tasks_reused, 8);
}

#[test]
fn crash_at_any_budget_conserves_work() {
    // Crash the client after k platform round-trips for a sweep of k, then
    // finish the run. Invariant: across crash+rerun, each row is published
    // exactly once (no lost work, no duplicate work). With 12 rows in
    // batches of 3, an uninterrupted run is 1 create + 4 bulk publishes +
    // 4 bulk fetches = 9 round-trips; every budget below that crashes
    // between batches.
    for budget in [1u64, 2, 3, 5, 8] {
        let inner = Arc::new(SimPlatform::quick(5, 0.9, budget));
        let failing = Arc::new(FailingPlatform::new(Arc::clone(&inner), budget));
        let db: Arc<dyn Backend> = Arc::new(MemoryStore::new());
        let cc = reprowd::core::CrowdContext::with_config(
            Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
            Arc::clone(&db),
            ExecutionConfig::with_batch_size(3),
        )
        .unwrap();
        let crashed = run_fig2(&cc, 12);
        match crashed {
            Err(e) => assert!(e.is_injected_fault(), "budget {budget}: {e}"),
            Ok(_) => panic!("budget {budget} should not complete 12 rows"),
        }
        failing.reset_budget(u64::MAX);
        let cd = run_fig2(&cc, 12).unwrap();
        let s = cd.run_stats();
        assert_eq!(
            s.tasks_reused + s.tasks_published,
            12,
            "budget {budget}: row accounting broken"
        );
        assert_eq!(cd.column("mv").unwrap().len(), 12);
        // Work conservation: crashes land between batches and persisted
        // batches are never repaid, so across crash+rerun the platform
        // still sees exactly one create, 12/3 bulk publishes, and 12/3
        // bulk fetches — 9 round-trips, same as a crash-free run.
        assert_eq!(inner.api_calls(), 9, "budget {budget}: duplicate platform work");
    }
}

#[test]
fn storage_crash_torn_tail_then_resume() {
    // Corrupt the tail of the database file (torn write) and verify the
    // experiment still resumes from the intact prefix.
    let path = tmp("torn.rwlog");
    let platform = Arc::new(SimPlatform::quick(5, 0.9, 77));
    {
        let cc = reprowd::core::CrowdContext::on_disk(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            &path,
            SyncPolicy::Never,
        )
        .unwrap();
        let _ = run_fig2(&cc, 6).unwrap();
    }
    // Tear off the last few bytes.
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let cc = reprowd::core::CrowdContext::on_disk(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        &path,
        SyncPolicy::Never,
    )
    .unwrap();
    let cd = run_fig2(&cc, 6).unwrap();
    assert_eq!(cd.column("mv").unwrap().len(), 6);
    let s = cd.run_stats();
    // At most one row's cells were torn off; everything else is reused.
    assert!(s.tasks_reused >= 5, "stats: {s:?}");
}

#[test]
fn turkit_baseline_breaks_where_crowddata_does_not() {
    // The paper's TurKit critique, end to end. Bob's script labels two
    // images via TurKit-style `once` calls; Ally swaps the steps.
    let db: Arc<dyn Backend> = Arc::new(MemoryStore::new());
    let tk = reprowd::core::CrashAndRerun::new(Arc::clone(&db), "bob-script").unwrap();
    tk.once(|| Ok(val!("answer-img1"))).unwrap();
    tk.once(|| Ok(val!("answer-img2"))).unwrap();

    // Ally's swapped rerun silently gets crossed answers.
    let tk = reprowd::core::CrashAndRerun::new(Arc::clone(&db), "bob-script").unwrap();
    let img2 = tk.once(|| Ok(val!("would-recollect-img2"))).unwrap();
    assert_eq!(img2, val!("answer-img1"), "TurKit hands img2 the img1 memo");

    // CrowdData under the same swap: content keys, correct reuse.
    let platform = Arc::new(SimPlatform::quick(5, 1.0, 5));
    let cc = reprowd::core::CrowdContext::new(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
    )
    .unwrap();
    let p = Presenter::image_label("Q?", &["Yes", "No"]);
    let img = |i: usize, truth: usize| {
        val!({"url": format!("img{i}.jpg"), "_sim": {"kind": "label", "truth": truth, "labels": ["Yes", "No"], "difficulty": 0.0}})
    };
    let first = cc
        .crowddata("cd")
        .unwrap()
        .data(vec![img(1, 0), img(2, 1)])
        .unwrap()
        .presenter(p.clone())
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap();
    let calls = platform.api_calls();
    let swapped = cc
        .crowddata("cd")
        .unwrap()
        .data(vec![img(2, 1), img(1, 0)]) // swapped order
        .unwrap()
        .presenter(p)
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap();
    assert_eq!(platform.api_calls(), calls, "swap must not cost anything");
    // Row 0 of the swapped run == row 1 of the original run.
    assert_eq!(
        swapped.column("mv").unwrap()[0],
        first.column("mv").unwrap()[1],
        "answers follow their objects, not their positions"
    );
}
