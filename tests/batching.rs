//! Integration tests of the batched publish/collect pipeline: batch size
//! is a pure performance knob (bit-identical results at every size, batch
//! size 1 = the historical per-row pipeline, API-call counts included),
//! and batching collapses platform round-trips by ~batch_size×.

use reprowd::core::{BatchMetricsSnapshot, CrowdContext, ExecutionConfig};
use reprowd::platform::{CrowdPlatform, SimPlatform};
use reprowd::prelude::*;
use std::sync::Arc;

fn objects(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            val!({
                "url": format!("img{i}.jpg"),
                "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.1}
            })
        })
        .collect()
}

/// A fresh in-memory context with the given batch size over a sim crowd
/// seeded identically across calls, so runs are comparable byte-for-byte.
fn ctx(batch_size: usize, seed: u64) -> (CrowdContext, Arc<SimPlatform>) {
    let platform = Arc::new(SimPlatform::quick(7, 0.9, seed));
    let cc = CrowdContext::with_config(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
        ExecutionConfig::with_batch_size(batch_size),
    )
    .unwrap();
    (cc, platform)
}

fn pipeline(cc: &CrowdContext, n: usize) -> CrowdData {
    cc.crowddata("batching")
        .unwrap()
        .data(objects(n))
        .unwrap()
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap()
}

/// A batch larger than the task count degenerates to one bulk publish and
/// one bulk fetch: three platform round-trips total, project included.
#[test]
fn batch_larger_than_task_count_is_one_round_trip_each_way() {
    let (cc, platform) = ctx(1000, 5);
    let cd = pipeline(&cc, 10);
    assert_eq!(cd.run_stats().tasks_published, 10);
    assert_eq!(cd.run_stats().results_collected, 10);
    assert_eq!(platform.api_calls(), 3, "create + 1 bulk publish + 1 bulk fetch");
    let m = cc.batch_metrics();
    assert_eq!(
        m,
        BatchMetricsSnapshot {
            publish_calls: 1,
            publish_rows: 10,
            fetch_calls: 1,
            fetch_rows: 10,
            // The collect status pass probes completion once per batch;
            // probes are free platform-side but metered here.
            probe_calls: 1,
            probe_rows: 10
        }
    );
    assert_eq!(m.rows_per_publish_call(), 10.0);
}

/// Batch size 1 must reproduce the historical per-row pipeline exactly:
/// one platform call per row each way, and byte-identical cells to what
/// any other batch size produces.
#[test]
fn batch_size_one_reproduces_per_row_pipeline_bit_identically() {
    let n = 24;
    let (cc1, p1) = ctx(1, 9);
    let (cc100, p100) = ctx(100, 9);
    let per_row = pipeline(&cc1, n);
    let batched = pipeline(&cc100, n);
    // Per-row accounting: 1 create + n publishes + n fetches.
    assert_eq!(p1.api_calls(), 1 + 2 * n as u64);
    assert_eq!(p100.api_calls(), 3);
    let m1 = cc1.batch_metrics();
    assert_eq!(m1.publish_calls, n as u64);
    assert_eq!(m1.rows_per_publish_call(), 1.0);
    // Same crowd seed, same publish order: every persisted cell matches.
    for col in ["task", "result", "mv"] {
        assert_eq!(
            per_row.column(col).unwrap(),
            batched.column(col).unwrap(),
            "column {col} must not depend on batch size"
        );
    }
}

/// The ISSUE's acceptance criterion: publishing + collecting n=1000 tasks
/// with batch size 100 issues ≤ 5% of the platform calls the per-row path
/// issues, with bit-identical collected columns.
#[test]
fn n1000_batch100_issues_under_5_percent_of_per_row_calls() {
    let n = 1000;
    let (cc_row, p_row) = ctx(1, 1234);
    let (cc_bat, p_bat) = ctx(100, 1234);
    let per_row = pipeline(&cc_row, n);
    let batched = pipeline(&cc_bat, n);

    let row_calls = p_row.api_calls(); // 1 + 1000 + 1000
    let bat_calls = p_bat.api_calls(); // 1 + 10 + 10
    assert_eq!(row_calls, 2001);
    assert_eq!(bat_calls, 21);
    assert!(
        (bat_calls as f64) <= 0.05 * row_calls as f64,
        "batched path must issue ≤5% of per-row calls ({bat_calls} vs {row_calls})"
    );

    // Round-trip accounting through the ExecutionContext metrics.
    let m = cc_bat.batch_metrics();
    assert_eq!(m.publish_calls, 10);
    assert_eq!(m.fetch_calls, 10);
    assert_eq!(m.rows_per_publish_call(), 100.0);
    assert_eq!(m.rows_per_fetch_call(), 100.0);

    // Bit-identical collected columns (and therefore identical aggregates).
    assert_eq!(per_row.column("result").unwrap(), batched.column("result").unwrap());
    assert_eq!(per_row.column("mv").unwrap(), batched.column("mv").unwrap());
}

/// An uneven split (n not divisible by batch size) publishes a short tail
/// batch and still accounts every row exactly once.
#[test]
fn uneven_tail_batch_accounts_every_row() {
    let (cc, platform) = ctx(4, 6);
    let cd = pipeline(&cc, 10); // 4 + 4 + 2
    assert_eq!(cd.run_stats().tasks_published, 10);
    let m = cc.batch_metrics();
    assert_eq!(m.publish_calls, 3);
    assert_eq!(m.publish_rows, 10);
    assert_eq!(m.fetch_calls, 3);
    assert_eq!(platform.api_calls(), 7, "create + 3 bulk publishes + 3 bulk fetches");
}

/// Reruns stay free under batching: the cache pass never issues a
/// round-trip for cached rows, so the metrics do not move either.
#[test]
fn cached_rerun_issues_zero_round_trips() {
    let (cc, platform) = ctx(50, 8);
    let first = pipeline(&cc, 120);
    let calls = platform.api_calls();
    let metrics = cc.batch_metrics();
    let second = pipeline(&cc, 120);
    assert_eq!(platform.api_calls(), calls, "rerun must be platform-free");
    assert_eq!(cc.batch_metrics(), metrics, "rerun must issue zero batched round-trips");
    assert_eq!(first.column("mv").unwrap(), second.column("mv").unwrap());
    assert_eq!(second.run_stats().tasks_reused, 120);
}

/// `with_batch_size` re-tunes a context without losing shared state, and
/// rejects a zero batch size.
#[test]
fn with_batch_size_retunes_and_validates() {
    let (cc, _) = ctx(100, 3);
    assert_eq!(cc.batch_size(), 100);
    let tuned = cc.with_batch_size(7).unwrap();
    assert_eq!(tuned.batch_size(), 7);
    assert_eq!(cc.batch_size(), 100, "original context keeps its size");
    assert!(cc.with_batch_size(0).is_err());
    // The tuned context sees the same database: a run through `cc` is a
    // free rerun through `tuned`, and they share one metrics ledger.
    let _ = pipeline(&cc, 8);
    let before = tuned.batch_metrics();
    assert_eq!(before, cc.batch_metrics());
    let cd = pipeline(&tuned, 8);
    assert_eq!(cd.run_stats().tasks_reused, 8);
    assert_eq!(tuned.batch_metrics(), before);
}
