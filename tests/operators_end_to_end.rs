//! Integration tests: operators over generated workloads and simulated
//! crowds — the full stack (datagen → simjoin → platform → core →
//! operators → quality) in one breath.

use reprowd::datagen::{comparison_probability, ErConfig, ErCorpus, RankingConfig, RankingDataset};
use reprowd::operators::join::transitive::PairOrdering;
use reprowd::platform::{CrowdPlatform, SimConfig, SimPlatform, WorkerPool};
use reprowd::prelude::*;
use std::sync::Arc;

fn ctx(platform: SimPlatform) -> reprowd::core::CrowdContext {
    reprowd::core::CrowdContext::new(
        Arc::new(platform) as Arc<dyn CrowdPlatform>,
        Arc::new(MemoryStore::new()),
    )
    .unwrap()
}

fn er_corpus(seed: u64) -> (ErCorpus, Vec<String>, Vec<usize>) {
    let corpus = ErCorpus::generate(&ErConfig {
        n_entities: 30,
        min_dups: 2,
        max_dups: 3,
        typo_p: 0.1,
        abbr_p: 0.05,
        drop_p: 0.02,
        shuffle_p: 0.1,
        seed,
    });
    let texts = corpus.texts();
    let clusters = corpus.truth_clusters();
    (corpus, texts, clusters)
}

fn match_oracle(entities: Vec<usize>, ambiguity: f64) -> impl Fn(usize, usize, &mut Value) {
    move |i, j, obj: &mut Value| {
        obj["_sim"] = val!({
            "kind": "match",
            "is_match": entities[i] == entities[j],
            "ambiguity": ambiguity,
        });
    }
}

#[test]
fn crowder_hits_high_f1_on_generated_corpus() {
    let (corpus, texts, clusters) = er_corpus(101);
    let cc = ctx(SimPlatform::quick(7, 0.95, 101));
    let mut cfg = CrowdErConfig::new("er-int");
    cfg.threshold = 0.35;
    let out = crowder_join(&cc, &texts, &cfg, match_oracle(clusters, 0.1)).unwrap();
    let (p, r, f1) = pairwise_prf(&out.matched, &corpus.true_pairs());
    assert!(p > 0.9, "precision {p}");
    assert!(r > 0.6, "recall {r} (bounded by machine-pass pruning)");
    assert!(f1 > 0.75, "f1 {f1}");
}

#[test]
fn lower_threshold_buys_recall_with_more_crowd_cost() {
    let (corpus, texts, clusters) = er_corpus(102);
    let mut results = Vec::new();
    for (i, threshold) in [0.25, 0.45, 0.65].into_iter().enumerate() {
        let cc = ctx(SimPlatform::quick(7, 0.95, 102));
        let mut cfg = CrowdErConfig::new(&format!("er-th-{i}"));
        cfg.threshold = threshold;
        let out = crowder_join(&cc, &texts, &cfg, match_oracle(clusters.clone(), 0.05)).unwrap();
        let (_, recall, _) = pairwise_prf(&out.matched, &corpus.true_pairs());
        results.push((out.n_crowd_reviewed, recall));
    }
    // Cost decreases with threshold; recall does not increase.
    assert!(results[0].0 >= results[1].0 && results[1].0 >= results[2].0, "{results:?}");
    assert!(results[0].1 >= results[2].1 - 1e-9, "{results:?}");
}

#[test]
fn transitive_join_saves_questions_and_matches_crowder_quality() {
    let (corpus, texts, clusters) = er_corpus(103);
    let cc1 = ctx(SimPlatform::quick(7, 0.98, 103));
    let mut tcfg = TransitiveConfig::new("tj-int");
    tcfg.threshold = 0.35;
    let t = transitive_join(&cc1, &texts, &tcfg, match_oracle(clusters.clone(), 0.05)).unwrap();

    let cc2 = ctx(SimPlatform::quick(7, 0.98, 103));
    let mut ccfg = CrowdErConfig::new("er-int2");
    ccfg.threshold = 0.35;
    let c = crowder_join(&cc2, &texts, &ccfg, match_oracle(clusters, 0.05)).unwrap();

    assert!(
        t.asked.len() < c.n_crowd_reviewed,
        "transitivity saved nothing: {} vs {}",
        t.asked.len(),
        c.n_crowd_reviewed
    );
    let (_, _, f1_t) = pairwise_prf(&t.matched, &corpus.true_pairs());
    let (_, _, f1_c) = pairwise_prf(&c.matched, &corpus.true_pairs());
    assert!(
        (f1_t - f1_c).abs() < 0.1,
        "transitive join quality drifted: {f1_t} vs {f1_c}"
    );
}

#[test]
fn similarity_ordering_beats_adversarial_ordering() {
    let (_, texts, clusters) = er_corpus(104);
    let asked = |ordering: PairOrdering, name: &str| {
        let cc = ctx(SimPlatform::quick(7, 0.98, 104));
        let mut cfg = TransitiveConfig::new(name);
        cfg.threshold = 0.35;
        cfg.ordering = ordering;
        transitive_join(&cc, &texts, &cfg, match_oracle(clusters.clone(), 0.05))
            .unwrap()
            .asked
            .len()
    };
    let desc = asked(PairOrdering::SimilarityDesc, "tj-d");
    let asc = asked(PairOrdering::SimilarityAsc, "tj-a");
    assert!(desc <= asc, "desc {desc} > asc {asc}");
}

#[test]
fn crowd_sort_recovers_ranking_with_strong_crowd() {
    let data = RankingDataset::generate(&RankingConfig { n_items: 10, score_range: 10.0, seed: 9 });
    let cc = ctx(SimPlatform::quick(7, 0.98, 105));
    let scores = data.scores.clone();
    let out = crowd_sort(
        &cc,
        &data.items,
        &CrowdSortConfig::new("sort-int", "Better?"),
        move |i, j, obj| {
            obj["_sim"] = val!({
                "kind": "compare",
                "p_first": comparison_probability(scores[i], scores[j], 0.3),
            });
        },
    )
    .unwrap();
    // Spearman-ish check: the top-3 of the crowd order are the true top-3.
    let true_rank = data.true_ranking();
    let top: std::collections::HashSet<usize> = out.order[..3].iter().copied().collect();
    let true_top: std::collections::HashSet<usize> = true_rank[..3].iter().copied().collect();
    assert_eq!(top, true_top, "crowd {:?} vs truth {:?}", out.order, true_rank);
}

#[test]
fn ds_beats_mv_on_biased_worker_pool_end_to_end() {
    // Pool: 2 good workers + 3 yes-biased workers; DS should learn the bias
    // from raw task runs collected through the full pipeline.
    let pool = WorkerPool::uniform(2, 0.92).with_biased(3, 0, 0.8, 0.75);
    let platform = SimPlatform::new(SimConfig::new(pool, 106));
    let cc = ctx(platform);

    let n = 120;
    let items: Vec<Value> = (0..n)
        .map(|i| {
            val!({
                "id": i,
                "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.15}
            })
        })
        .collect();
    let truth: Vec<usize> = (0..n).map(|i| i % 2).collect();

    let cd = cc
        .crowddata("ds-vs-mv")
        .unwrap()
        .data(items)
        .unwrap()
        .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
        .unwrap()
        .publish(5)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap()
        .dawid_skene(&reprowd::quality::DsConfig::default())
        .unwrap();

    let score = |col: &str| {
        let vals = cd.column(col).unwrap();
        vals.iter()
            .zip(&truth)
            .filter(|(v, &t)| v.as_str() == Some(if t == 0 { "Yes" } else { "No" }))
            .count() as f64
            / n as f64
    };
    let mv = score("mv");
    let ds = score("ds");
    assert!(ds >= mv, "DS ({ds}) lost to MV ({mv})");
    // Ceiling: two 86%-effective good workers + weakly-informative biased
    // majority caps fused accuracy around 0.86; 0.8 is the robust floor.
    assert!(ds > 0.8, "DS accuracy {ds}");
}

#[test]
fn crowd_label_with_gold_calibration_weights() {
    // Calibrate workers on gold items, then weighted-vote the rest.
    let pool = WorkerPool::uniform(2, 0.95).with_biased(2, 0, 0.9, 0.6);
    let cc = ctx(SimPlatform::new(SimConfig::new(pool, 107)));
    let n = 60;
    let items: Vec<Value> = (0..n)
        .map(|i| {
            val!({
                "id": i,
                "_sim": {"kind": "label", "truth": (i % 2), "labels": ["Yes", "No"], "difficulty": 0.1}
            })
        })
        .collect();
    let truth: Vec<usize> = (0..n).map(|i| i % 2).collect();

    let cd = cc
        .crowddata("gold-cal")
        .unwrap()
        .data(items)
        .unwrap()
        .presenter(Presenter::image_label("Q?", &["Yes", "No"]))
        .unwrap()
        .publish(4)
        .unwrap()
        .collect()
        .unwrap();

    // First 20 items serve as gold.
    let (matrix, _) = cd.vote_matrix().unwrap();
    let gold: std::collections::HashMap<usize, usize> =
        (0..20).map(|i| (i, truth[i])).collect();
    let cal = reprowd::quality::GoldCalibration::from_gold(&matrix, &gold, 1.0);
    let weights = cal.log_odds_weights();

    let cd = cd.weighted_vote(&weights, 0.0).unwrap().majority_vote().unwrap();
    let score = |col: &str| {
        cd.column(col)
            .unwrap()
            .iter()
            .zip(&truth)
            .filter(|(v, &t)| v.as_str() == Some(if t == 0 { "Yes" } else { "No" }))
            .count() as f64
            / n as f64
    };
    assert!(
        score("wmv") >= score("mv"),
        "calibrated weights should not hurt: wmv {} vs mv {}",
        score("wmv"),
        score("mv")
    );
}
