//! The paper's *sharable* guarantee as a dedicated integration test: after
//! a crash (the context is dropped, the process "restarts"), reopening the
//! same database and re-running the identical pipeline replays everything
//! from disk and issues **zero** new platform calls.
//!
//! This is the property that makes a Reprowd experiment reproducible: the
//! database file alone carries the full crowdsourced state.

use reprowd::core::ExecutionConfig;
use reprowd::platform::{CrowdPlatform, FailingPlatform, SimPlatform};
use reprowd::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reprowd-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    // A segmented database is a file *family* (base + manifest +
    // segments); destroy clears them all so reruns start fresh.
    DiskStore::destroy(&p).unwrap();
    p
}

fn objects(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            val!({
                "url": format!("img{i}.jpg"),
                "_sim": {"kind": "label", "truth": (i % 3).min(1), "labels": ["Yes", "No"], "difficulty": 0.05}
            })
        })
        .collect()
}

fn pipeline(cc: &reprowd::core::CrowdContext, n: usize) -> reprowd::core::CrowdData {
    cc.crowddata("recovery")
        .unwrap()
        .data(objects(n))
        .unwrap()
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap()
}

/// The ISSUE's scenario verbatim: publish + collect, drop the context,
/// reopen the same store, re-run the pipeline — zero new platform calls.
#[test]
fn reopened_store_reruns_with_zero_platform_calls() {
    let path = tmp("zero-calls.rwlog");
    let platform = Arc::new(SimPlatform::quick(6, 0.9, 4242));

    let (first_mv, first_result) = {
        let cc = reprowd::core::CrowdContext::on_disk(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            &path,
            SyncPolicy::Always,
        )
        .unwrap();
        let cd = pipeline(&cc, 20);
        (cd.column("mv").unwrap(), cd.column("result").unwrap())
        // `cc` (and with it the DiskStore handle) drops here: the "crash".
    };

    let calls_before_rerun = platform.api_calls();
    assert!(calls_before_rerun > 0, "the fresh run must have hit the platform");

    // A brand-new context over the same file.
    let cc = reprowd::core::CrowdContext::on_disk(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        &path,
        SyncPolicy::Always,
    )
    .unwrap();
    let cd = pipeline(&cc, 20);

    assert_eq!(
        platform.api_calls(),
        calls_before_rerun,
        "rerun after crash+reopen must issue zero new platform calls"
    );
    let s = cd.run_stats();
    assert_eq!(s.tasks_published, 0);
    assert_eq!(s.results_collected, 0);
    assert_eq!(s.tasks_reused, 20);
    assert_eq!(s.results_reused, 20);
    // And the answers are bit-identical, not merely free.
    assert_eq!(cd.column("mv").unwrap(), first_mv);
    assert_eq!(cd.column("result").unwrap(), first_result);
}

/// Crash *between* publish and collect: the rerun must not republish a
/// single task — it only pays the result fetches the crash swallowed.
#[test]
fn crash_between_publish_and_collect_republishes_nothing() {
    let path = tmp("mid-crash.rwlog");
    let platform = Arc::new(SimPlatform::quick(6, 0.9, 7));

    {
        let cc = reprowd::core::CrowdContext::on_disk(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            &path,
            SyncPolicy::Always,
        )
        .unwrap();
        let _published = cc
            .crowddata("recovery")
            .unwrap()
            .data(objects(12))
            .unwrap()
            .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
            .unwrap()
            .publish(3)
            .unwrap();
        // Crash before collect().
    }

    let cc = reprowd::core::CrowdContext::on_disk(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        &path,
        SyncPolicy::Always,
    )
    .unwrap();
    let cd = pipeline(&cc, 12);
    let s = cd.run_stats();
    assert_eq!(s.tasks_published, 0, "publish must be fully recovered from the store");
    assert_eq!(s.tasks_reused, 12);
    assert_eq!(s.results_collected, 12, "only the lost collect step is re-done");
    assert_eq!(cd.column("mv").unwrap().len(), 12);

    // A third run is now entirely free.
    let calls = platform.api_calls();
    let _ = pipeline(&cc, 12);
    assert_eq!(platform.api_calls(), calls, "fully-cached rerun must be free");
}

/// Crash *between* publish batches: each batch is one platform round-trip
/// followed by one atomic database write, so the rerun reuses every batch
/// that landed and repays only the rows the crash swallowed.
#[test]
fn crash_between_publish_batches_repays_only_the_missing_batches() {
    let path = tmp("batch-crash.rwlog");
    let inner = Arc::new(SimPlatform::quick(6, 0.9, 55));
    // Budget 3 = create + two bulk publishes of 4 rows each: the third
    // batch of 10 rows in batches of 4 dies on the wire.
    let failing = Arc::new(FailingPlatform::new(Arc::clone(&inner), 3));

    {
        let cc = reprowd::core::CrowdContext::with_config(
            Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
            Arc::new(DiskStore::open(&path, SyncPolicy::Always).unwrap()),
            ExecutionConfig::with_batch_size(4),
        )
        .unwrap();
        match cc
            .crowddata("recovery")
            .unwrap()
            .data(objects(10))
            .unwrap()
            .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
            .unwrap()
            .publish(3)
        {
            Err(e) => assert!(e.is_injected_fault(), "the third batch must crash: {e}"),
            Ok(_) => panic!("publish must crash on the third batch"),
        }
        // Context drops here: the client process "dies" mid-publish.
    }

    // The process restarts: same database file, replenished platform.
    failing.reset_budget(u64::MAX);
    let cc = reprowd::core::CrowdContext::with_config(
        Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
        Arc::new(DiskStore::open(&path, SyncPolicy::Always).unwrap()),
        ExecutionConfig::with_batch_size(4),
    )
    .unwrap();
    let cd = cc
        .crowddata("recovery")
        .unwrap()
        .data(objects(10))
        .unwrap()
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap();
    let s = cd.run_stats();
    assert_eq!(s.tasks_reused, 8, "both persisted batches must be reused");
    assert_eq!(s.tasks_published, 2, "only the crashed batch is repaid");
    assert_eq!(s.results_collected, 10);
    assert_eq!(cd.column("mv").unwrap().len(), 10);
    // The crashed batch died on the wire *before* reaching the platform,
    // so the crowd saw each of the 10 tasks exactly once — no duplicate
    // work — and a further rerun is entirely free.
    let calls = inner.api_calls();
    let cd2 = cc
        .crowddata("recovery")
        .unwrap()
        .data(objects(10))
        .unwrap()
        .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
        .unwrap()
        .publish(3)
        .unwrap()
        .collect()
        .unwrap()
        .majority_vote()
        .unwrap();
    assert_eq!(inner.api_calls(), calls, "post-recovery rerun must be free");
    assert_eq!(cd2.column("mv").unwrap(), cd.column("mv").unwrap());
}

/// Crash with batches *in flight*: under a pipelined depth of 4, the
/// budget runs out at a deterministic batch (the issue gate charges in
/// batch order), the database keeps exactly the committed batch prefix,
/// and the rerun repays only the uncommitted chunks — at every depth, the
/// same chunks.
#[test]
fn crash_mid_pipeline_reruns_only_uncommitted_chunks() {
    for depth in [1usize, 4, 8] {
        let path = tmp(&format!("pipeline-crash-{depth}.rwlog"));
        let inner = Arc::new(SimPlatform::quick(6, 0.9, 321));
        // Budget 4 = create + three bulk publishes of 4 rows each; the
        // fourth and fifth batches die in flight, whatever the depth.
        let failing = Arc::new(FailingPlatform::new(Arc::clone(&inner), 4));
        let config = || {
            ExecutionConfig::with_batch_size(4).with_inflight_batches(depth)
        };
        {
            let cc = reprowd::core::CrowdContext::with_config(
                Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
                Arc::new(DiskStore::open(&path, SyncPolicy::Always).unwrap()),
                config(),
            )
            .unwrap();
            match cc
                .crowddata("recovery")
                .unwrap()
                .data(objects(20))
                .unwrap()
                .presenter(Presenter::image_label("Is this a cat?", &["Yes", "No"]))
                .unwrap()
                .publish(3)
            {
                Err(e) => assert!(e.is_injected_fault(), "depth {depth}: {e}"),
                Ok(_) => panic!("depth {depth}: publish must crash on the fourth batch"),
            }
            // Client dies with up to `depth` batches in flight.
        }

        failing.reset_budget(u64::MAX);
        let cc = reprowd::core::CrowdContext::with_config(
            Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
            Arc::new(DiskStore::open(&path, SyncPolicy::Always).unwrap()),
            config(),
        )
        .unwrap();
        let cd = pipeline(&cc, 20);
        let s = cd.run_stats();
        // Deterministic prefix: exactly the three batches the budget
        // covered were committed, at every depth.
        assert_eq!(s.tasks_reused, 12, "depth {depth}: committed prefix must be reused");
        assert_eq!(s.tasks_published, 8, "depth {depth}: only uncommitted chunks repaid");
        assert_eq!(s.results_collected, 20);
        assert_eq!(cd.column("mv").unwrap().len(), 20);
    }
}

/// A crash mid-*stream* behaves the same way: the streamed chunks commit
/// in order, so a budget crash leaves a clean chunk prefix and the
/// streamed rerun pays only the tail.
#[test]
fn crash_mid_stream_resumes_from_the_committed_prefix() {
    use reprowd_core::pipeline::{run_stream, StreamSpec};
    let inner = Arc::new(SimPlatform::quick(6, 0.9, 77));
    // Budget 7 = create + three streamed chunks (publish + fetch each,
    // the wait and the probes are free on the sim); chunk 4 of 5 dies.
    let failing = Arc::new(FailingPlatform::new(Arc::clone(&inner), 7));
    let db: Arc<dyn Backend> = Arc::new(MemoryStore::new());
    let cc = reprowd::core::CrowdContext::with_config(
        Arc::clone(&failing) as Arc<dyn CrowdPlatform>,
        Arc::clone(&db),
        ExecutionConfig::with_batch_size(4).with_inflight_batches(4),
    )
    .unwrap();
    let spec = StreamSpec {
        experiment: "stream-crash".into(),
        presenter: Presenter::image_label("Is this a cat?", &["Yes", "No"]),
        n_assignments: 3,
    };
    let mut delivered = 0u64;
    let err = run_stream(&cc, &spec, objects(20).into_iter(), |_row| {
        delivered += 1;
        Ok(())
    })
    .unwrap_err();
    assert!(err.is_injected_fault(), "unexpected: {err}");
    assert_eq!(delivered, 12, "exactly the three committed chunks reached the sink");

    failing.reset_budget(u64::MAX);
    let mut rerun_rows = Vec::new();
    let report = run_stream(&cc, &spec, objects(20).into_iter(), |row| {
        rerun_rows.push(row.index);
        Ok(())
    })
    .unwrap();
    assert_eq!(rerun_rows, (0..20).collect::<Vec<_>>());
    assert_eq!(report.stats.results_reused, 12, "committed chunks replay from the store");
    assert_eq!(report.stats.tasks_published, 8, "only the crashed tail is repaid");
}

/// The sharable guarantee survives the segmented storage layout: with the
/// log forced to rotate every few hundred bytes (plus a compaction between
/// the runs), a crash + reopen still reruns with zero platform calls and
/// bit-identical answers.
#[test]
fn segmented_database_reruns_with_zero_platform_calls() {
    let path = tmp("segmented.rwlog");
    let platform = Arc::new(SimPlatform::quick(6, 0.9, 2025));
    let config = || {
        ExecutionConfig::with_batch_size(5)
            .with_segment_policy(SegmentPolicy::new(512, 1.0))
    };

    let first_mv = {
        let cc = reprowd::core::CrowdContext::on_disk_with(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            &path,
            SyncPolicy::Always,
            config(),
        )
        .unwrap();
        let cd = pipeline(&cc, 20);
        // The tiny policy really sharded the database into many segments.
        assert!(cc.backend().stats().segments > 2, "stats: {:?}", cc.backend().stats());
        cd.column("mv").unwrap()
        // "Crash".
    };

    // Compact between the crash and the rerun — recovery must read the
    // rewritten segments, not the original log.
    {
        let store =
            DiskStore::open_with(&path, SyncPolicy::Always, config().segment_policy).unwrap();
        assert!(store.recovery_report().segments > 2);
        store.compact().unwrap();
    }

    let calls_before_rerun = platform.api_calls();
    let cc = reprowd::core::CrowdContext::on_disk_with(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        &path,
        SyncPolicy::Always,
        config(),
    )
    .unwrap();
    let cd = pipeline(&cc, 20);
    assert_eq!(
        platform.api_calls(),
        calls_before_rerun,
        "rerun over the compacted segmented database must be free"
    );
    assert_eq!(cd.run_stats().tasks_reused, 20);
    assert_eq!(cd.run_stats().results_reused, 20);
    assert_eq!(cd.column("mv").unwrap(), first_mv);
}

/// A database written by the pre-segmentation engine (one plain log file)
/// keeps working: it opens as-is, reruns for free, and the first
/// compaction migrates it to the segmented layout without losing a cell.
#[test]
fn legacy_single_file_database_still_shares_after_migration() {
    let path = tmp("legacy-migrate.rwlog");
    let platform = Arc::new(SimPlatform::quick(6, 0.9, 909));

    // The default policy never rotates at this size: this file is
    // byte-compatible with what the old engine wrote.
    let first_mv = {
        let cc = reprowd::core::CrowdContext::on_disk(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            &path,
            SyncPolicy::Always,
        )
        .unwrap();
        pipeline(&cc, 10).column("mv").unwrap()
    };

    // Migrate: open with a tiny segment policy and compact.
    {
        let store =
            DiskStore::open_with(&path, SyncPolicy::Always, SegmentPolicy::new(512, 1.0))
                .unwrap();
        store.compact().unwrap();
        assert!(store.stats().segments > 1, "migration must have split the log");
    }

    let calls = platform.api_calls();
    let cc = reprowd::core::CrowdContext::on_disk_with(
        Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
        &path,
        SyncPolicy::Always,
        ExecutionConfig::default().with_segment_policy(SegmentPolicy::new(512, 1.0)),
    )
    .unwrap();
    let cd = pipeline(&cc, 10);
    assert_eq!(platform.api_calls(), calls, "migrated database must rerun for free");
    assert_eq!(cd.column("mv").unwrap(), first_mv);
}

/// Recovery also survives many crash/reopen cycles with a growing dataset:
/// every cycle pays only for its delta, never for history.
#[test]
fn repeated_crashes_pay_only_deltas() {
    let path = tmp("cycles.rwlog");
    let platform = Arc::new(SimPlatform::quick(6, 0.9, 99));

    let mut published_total = 0u64;
    for n in [3usize, 6, 9, 12] {
        let cc = reprowd::core::CrowdContext::on_disk(
            Arc::clone(&platform) as Arc<dyn CrowdPlatform>,
            &path,
            SyncPolicy::Always,
        )
        .unwrap();
        let cd = pipeline(&cc, n);
        let s = cd.run_stats();
        assert_eq!(s.tasks_reused as usize, n - 3, "cycle n={n} must reuse its prefix");
        assert_eq!(s.tasks_published, 3, "cycle n={n} must pay exactly its delta");
        published_total += s.tasks_published;
        // Context dropped: next loop iteration is a fresh "process".
    }
    assert_eq!(published_total, 12);
}
